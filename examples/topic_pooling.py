"""Sparsity and pooling: why topic models need pseudo-documents.

Tweets are too short for word co-occurrence statistics (Challenge C1).
The paper's remedy is pooling: train the topic model on user-pooled (UP)
or hashtag-pooled (HP) pseudo-documents instead of raw tweets (NP).
This example trains the same LDA under all three schemes, plus BTM --
whose corpus-level biterms sidestep sparsity by design -- and compares
recommendation MAP.

Expected outcome: UP (and usually HP) beat NP for LDA, while BTM is the
least pooling-sensitive topic model.

Run:  python examples/topic_pooling.py
"""

from __future__ import annotations

from repro import (
    BitermTopicModel,
    DatasetConfig,
    ExperimentPipeline,
    LdaModel,
    RepresentationSource,
    UserType,
    generate_dataset,
    select_user_groups,
)
from repro.text.pooling import PoolingScheme


def main() -> None:
    dataset = generate_dataset(DatasetConfig(n_users=40, n_ticks=150, seed=3))
    groups = select_user_groups(dataset, group_size=8, min_retweets=8)
    pipeline = ExperimentPipeline(dataset, seed=3, max_train_docs_per_user=100)
    users = pipeline.eligible_users(groups[UserType.ALL])
    print(f"{dataset}; {len(users)} users; source R\n")

    print(f"{'model':>6}  {'pooling':>8}  {'MAP':>6}")
    lda_by_pooling: dict[str, float] = {}
    for pooling in PoolingScheme:
        model = LdaModel(
            n_topics=15, iterations=30, infer_iterations=6, seed=3, pooling=pooling
        )
        result = pipeline.evaluate(model, RepresentationSource.R, users)
        lda_by_pooling[pooling.value] = result.map_score
        print(f"{'LDA':>6}  {pooling.value:>8}  {result.map_score:>6.3f}")

    for pooling in PoolingScheme:
        model = BitermTopicModel(
            n_topics=15, iterations=25, infer_iterations=6, seed=3,
            pooling=pooling, max_biterms=20_000,
        )
        result = pipeline.evaluate(model, RepresentationSource.R, users)
        print(f"{'BTM':>6}  {pooling.value:>8}  {result.map_score:>6.3f}")

    print()
    if max(lda_by_pooling["UP"], lda_by_pooling["HP"]) > lda_by_pooling["NP"]:
        print("Pooling lifts LDA, confirming the paper's sparsity analysis:")
        print("unpooled tweets are too short to expose co-occurrence patterns.")
    else:
        print("At this scale pooling did not help LDA -- rerun with more")
        print("ticks (longer user histories make pooled documents richer).")


if __name__ == "__main__":
    main()
