"""Compare the nine representation models on one corpus.

Reproduces the paper's central comparison at example scale: every model
family (bag, graph, topic) builds user models from the same training
data and ranks the same test sets; the script reports MAP, training time
and testing time per model, grouped by taxonomy category.

Run:  python examples/compare_models.py
"""

from __future__ import annotations

from repro import (
    BitermTopicModel,
    CharacterNGramGraphModel,
    CharacterNGramModel,
    DatasetConfig,
    ExperimentPipeline,
    HdpModel,
    HldaModel,
    LabeledLdaModel,
    LdaModel,
    RepresentationSource,
    TokenNGramGraphModel,
    TokenNGramModel,
    UserType,
    generate_dataset,
    select_user_groups,
)
from repro.eval.metrics import mean_average_precision
from repro.models.taxonomy import facts_for


def build_models():
    """One sensible configuration per model (Table 7's frequent winners,
    with topic counts scaled to the example corpus)."""
    topic_kwargs = dict(iterations=30, infer_iterations=6, seed=0, pooling="UP")
    return [
        TokenNGramModel(n=1, weighting="TF-IDF"),
        CharacterNGramModel(n=4, weighting="TF"),
        TokenNGramGraphModel(n=1, similarity="VS"),
        CharacterNGramGraphModel(n=4, similarity="CoS"),
        LdaModel(n_topics=15, **topic_kwargs),
        LabeledLdaModel(n_latent_topics=15, **topic_kwargs),
        BitermTopicModel(n_topics=15, max_biterms=20_000, **topic_kwargs),
        HdpModel(initial_topics=10, **topic_kwargs),
        HldaModel(levels=3, **topic_kwargs),
    ]


def main() -> None:
    dataset = generate_dataset(DatasetConfig(n_users=40, n_ticks=150, seed=7))
    groups = select_user_groups(dataset, group_size=8, min_retweets=8)
    pipeline = ExperimentPipeline(dataset, seed=7, max_train_docs_per_user=100)
    users = pipeline.eligible_users(groups[UserType.ALL])
    print(f"{dataset}; evaluating {len(users)} users on source R\n")

    print(f"{'model':>6}  {'category':<22} {'MAP':>6}  {'TTime':>8}  {'ETime':>8}")
    rows = []
    for model in build_models():
        result = pipeline.evaluate(model, RepresentationSource.R, users)
        facts = facts_for(model.name)
        rows.append((model.name, result))
        print(
            f"{model.name:>6}  {facts.category.value:<22} "
            f"{result.map_score:>6.3f}  {result.training_seconds:>7.2f}s "
            f"{result.testing_seconds:>8.3f}s"
        )

    ran = mean_average_precision(
        list(pipeline.evaluate_random(users, iterations=200).values())
    )
    chrono = mean_average_precision(
        list(pipeline.evaluate_chronological(users).values())
    )
    print(f"\n{'RAN':>6}  {'baseline':<22} {ran:>6.3f}")
    print(f"{'CHR':>6}  {'baseline':<22} {chrono:>6.3f}")

    best_name, best = max(rows, key=lambda r: r[1].map_score)
    print(f"\nBest model: {best_name} (MAP {best.map_score:.3f}, "
          f"{best.map_score / ran:.1f}x random).")


if __name__ == "__main__":
    main()
