"""Which representation source best captures a user's interests?

Reproduces the paper's Table 6 question at example scale: build the same
model (TN) from each of the five atomic sources R / T / E / F / C and
the TR union, and compare MAP per user group.

Expected outcome (paper Section 5, "Representation Sources"): the user's
own retweets (R) are the most effective source under every user type;
follower tweets (F) are the noisiest; combining R with T helps T but not
R.

Run:  python examples/source_study.py
"""

from __future__ import annotations

from repro import (
    DatasetConfig,
    ExperimentPipeline,
    RepresentationSource,
    TokenNGramModel,
    UserType,
    generate_dataset,
    select_user_groups,
)
from repro.eval.metrics import mean_average_precision

SOURCES = [
    RepresentationSource.R,
    RepresentationSource.T,
    RepresentationSource.E,
    RepresentationSource.F,
    RepresentationSource.C,
    RepresentationSource.TR,
]


def main() -> None:
    dataset = generate_dataset(DatasetConfig(n_users=40, n_ticks=200, seed=21))
    groups = select_user_groups(dataset, group_size=8, min_retweets=10)
    pipeline = ExperimentPipeline(dataset, seed=21, max_train_docs_per_user=120)

    group_order = [
        g for g in (UserType.ALL, UserType.INFORMATION_SEEKER,
                    UserType.BALANCED_USER, UserType.INFORMATION_PRODUCER)
        if groups.get(g)
    ]

    print("MAP of TN (TF-IDF / centroid / cosine) per source and user group\n")
    header = f"{'group':>10}  " + "  ".join(f"{s.value:>6}" for s in SOURCES)
    print(header)

    score_by_group: dict[UserType, dict[str, float]] = {}
    for group in group_order:
        users = pipeline.eligible_users(groups[group])
        if not users:
            continue
        row: dict[str, float] = {}
        for source in SOURCES:
            model = TokenNGramModel(n=1, weighting="TF-IDF")
            result = pipeline.evaluate(model, source, users)
            row[source.value] = result.map_score
        score_by_group[group] = row
        cells = "  ".join(f"{row[s.value]:>6.3f}" for s in SOURCES)
        print(f"{group.value:>10}  {cells}")

    all_row = score_by_group[UserType.ALL]
    ran = mean_average_precision(
        list(pipeline.evaluate_random(
            pipeline.eligible_users(groups[UserType.ALL]), iterations=200
        ).values())
    )
    print(f"\nRAN baseline (All Users): {ran:.3f}")
    best = max(all_row, key=all_row.get)
    print(f"Best source for All Users: {best} (MAP {all_row[best]:.3f})")
    if best == "R" or all_row["R"] >= max(v for k, v in all_row.items() if k != "R"):
        print("Retweets are the strongest signal of user interests -- the")
        print("paper's conclusion (v): build user models from R.")


if __name__ == "__main__":
    main()
