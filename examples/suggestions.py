"""Followee and hashtag suggestions (the paper's future-work tasks).

The same user models that rank tweets also power the other two
recommendation tasks the paper names in its conclusions: suggesting
accounts to follow (content-based Twittomender) and suggesting hashtags
for a draft tweet.

Run:  python examples/suggestions.py
"""

from __future__ import annotations

import numpy as np

from repro import DatasetConfig, TokenNGramModel, generate_dataset
from repro.core.extensions import FolloweeRecommender, HashtagRecommender


def main() -> None:
    dataset = generate_dataset(DatasetConfig(n_users=30, n_ticks=120, seed=11))
    print(f"{dataset}\n")

    # Pick an active user to recommend for.
    user_id = max(
        (u.user_id for u in dataset.users),
        key=lambda uid: len(dataset.outgoing(uid)),
    )
    profile = dataset.user(user_id)
    top_topics = np.argsort(profile.interests)[::-1][:3]
    print(f"target: user {user_id} (language={profile.language}, "
          f"top topics {list(map(int, top_topics))})\n")

    print("-- accounts to follow (content similarity, follows excluded) --")
    followees = FolloweeRecommender(dataset, TokenNGramModel(n=1, weighting="TF")).fit()
    for item in followees.recommend(user_id, k=5):
        other = dataset.user(item.candidate)
        shared = float(np.dot(profile.interests, other.interests))
        print(f"  @user{item.candidate:<3}  score={item.score:.3f}  "
              f"(true interest overlap {shared:.2f})")

    print("\n-- hashtags for this user's own content --")
    hashtags = HashtagRecommender(
        dataset, TokenNGramModel(n=1, weighting="TF"), min_tag_count=3
    ).fit()
    for item in hashtags.recommend_for_user(user_id, k=5):
        print(f"  {item.candidate}  score={item.score:.3f}")

    draft = dataset.tweets_of(user_id)[-1].text
    print(f"\n-- hashtags for a draft tweet --\n  draft: {draft!r}")
    for item in hashtags.recommend_for_text(draft, k=3):
        print(f"  {item.candidate}  score={item.score:.3f}")


if __name__ == "__main__":
    main()
