"""Quickstart: evaluate one recommender on a synthetic microblog corpus.

This walks the full pipeline of the paper in ~30 seconds:

1. simulate a small Twitter-like network (users, follows, tweets,
   retweets);
2. classify users into the paper's IS / BU / IP groups by posting ratio;
3. build per-user content models from their retweets (source R) with the
   token n-gram vector space model (TN);
4. rank every user's held-out incoming tweets and report MAP against the
   chronological and random baselines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DatasetConfig,
    ExperimentPipeline,
    RepresentationSource,
    TokenNGramModel,
    UserType,
    generate_dataset,
    select_user_groups,
)
from repro.eval.metrics import mean_average_precision


def main() -> None:
    print("1. simulating the microblog network ...")
    dataset = generate_dataset(DatasetConfig(n_users=30, n_ticks=150, seed=42))
    print(f"   {dataset}")

    print("2. selecting user groups by posting ratio ...")
    groups = select_user_groups(dataset, group_size=6, min_retweets=8)
    for group in (UserType.INFORMATION_SEEKER, UserType.BALANCED_USER,
                  UserType.INFORMATION_PRODUCER):
        ids = groups[group]
        if not ids:
            print(f"   {group.value}: (none at this scale)")
            continue
        ratios = sorted(dataset.posting_ratio(u) for u in ids)
        print(f"   {group.value}: {len(ids)} users, "
              f"posting ratios {ratios[0]:.2f} .. {ratios[-1]:.2f}")

    print("3. building user models from retweets (source R) with TN ...")
    pipeline = ExperimentPipeline(dataset, seed=42)
    users = pipeline.eligible_users(groups[UserType.ALL])
    model = TokenNGramModel(n=1, weighting="TF-IDF", aggregation="centroid",
                            similarity="CS")
    result = pipeline.evaluate(model, RepresentationSource.R, users)

    print("4. ranking held-out incoming tweets ...")
    chr_map = mean_average_precision(
        list(pipeline.evaluate_chronological(users).values())
    )
    ran_map = mean_average_precision(
        list(pipeline.evaluate_random(users, iterations=200).values())
    )

    print()
    print(f"   TN (TF-IDF, centroid, cosine)  MAP = {result.map_score:.3f}")
    print(f"   Chronological baseline (CHR)   MAP = {chr_map:.3f}")
    print(f"   Random baseline (RAN)          MAP = {ran_map:.3f}")
    print()
    better = (result.map_score / ran_map - 1.0) * 100 if ran_map else float("inf")
    print(f"   The content-based model beats random ordering by {better:.0f}%.")
    print("   Recency alone is an inadequate criterion for recommending")
    print("   microblog content -- the paper's core premise.")


if __name__ == "__main__":
    main()
