"""Ablation: surface-noise rates and the token/character trade-off.

DESIGN.md calls out the noise channels (misspelling, lengthening,
abbreviation -- Challenges C2/C4) as the driver of the CN/CNG vs TN/TNG
comparison: character n-grams survive word corruption that breaks exact
token matches.

Expected shape: as noise increases, the token model's MAP degrades
faster than the character model's (the CN/TN ratio grows).
"""

from __future__ import annotations

from benchmarks._common import write_result
from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.models.bag import CharacterNGramModel, TokenNGramModel
from repro.twitter.dataset import DatasetConfig, generate_dataset, select_user_groups
from repro.twitter.entities import UserType
from repro.twitter.generator import NoiseChannel

NOISE_LEVELS = {
    "clean": NoiseChannel(0.0, 0.0, 0.0),
    "paper": NoiseChannel(),  # the default rates
    "heavy": NoiseChannel(misspell_rate=0.25, lengthen_rate=0.15, abbreviate_rate=0.15),
}


def _maps_for(noise: NoiseChannel) -> tuple[float, float]:
    config = DatasetConfig(n_users=30, n_ticks=120, seed=17, noise=noise)
    dataset = generate_dataset(config)
    groups = select_user_groups(dataset, group_size=6, min_retweets=8)
    pipeline = ExperimentPipeline(dataset, seed=17, max_train_docs_per_user=80)
    users = pipeline.eligible_users(groups[UserType.ALL])
    tn = pipeline.evaluate(
        TokenNGramModel(n=1, weighting="TF-IDF"), RepresentationSource.R, users
    ).map_score
    cn = pipeline.evaluate(
        CharacterNGramModel(n=4, weighting="TF"), RepresentationSource.R, users
    ).map_score
    return tn, cn


def test_ablation_noise_channels(benchmark):
    rows = benchmark.pedantic(
        lambda: {name: _maps_for(noise) for name, noise in NOISE_LEVELS.items()},
        rounds=1, iterations=1,
    )
    lines = ["Ablation: noise rate vs token/character robustness",
             f"{'noise':>8}  {'TN MAP':>8}  {'CN MAP':>8}  {'CN/TN':>8}"]
    for name, (tn, cn) in rows.items():
        ratio = cn / tn if tn else float("nan")
        lines.append(f"{name:>8}  {tn:>8.3f}  {cn:>8.3f}  {ratio:>8.3f}")
    write_result("ablation_noise", "\n".join(lines))

    clean_tn, clean_cn = rows["clean"]
    heavy_tn, heavy_cn = rows["heavy"]
    # Character models must weather heavy noise better than token models.
    assert (heavy_cn / heavy_tn) > (clean_cn / clean_tn) - 0.05
