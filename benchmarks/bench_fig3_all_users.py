"""EXP-F3: regenerate Figure 3 -- model x source MAP over All Users.

Paper Figure 3: Mean/Min/Max MAP of the 9 representation models over 8
representation sources for the All-Users group, with the RAN baseline as
the red line. Expected shape: the token context-based models (TNG/TN)
lead; the topic models cluster lower with BTM the best of them; every
content model beats CHR and the best ones clearly beat RAN.
"""

from benchmarks._figure_bench import run_figure_bench
from repro.twitter.entities import UserType


def test_fig3_map_all_users(benchmark):
    run_figure_bench(
        benchmark, UserType.ALL, "fig3_all_users",
        "Figure 3: Mean (Min-Max) MAP per model and source, All Users",
    )
