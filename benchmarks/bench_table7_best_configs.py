"""EXP-T7: regenerate Table 7 -- best configuration per model and source.

Paper Table 7 lists, for every model and representation source, the
configuration with the highest Mean MAP. Expected shape: graph models
pick one dominant (n, similarity) setting almost everywhere (high
robustness); bag models are stable in weighting/similarity; topic models
flip parameters per source (low robustness); Rocchio wins on the sources
that carry negative examples.

Derived from the shared figure sweep, i.e. over the 8 figure sources
(documented truncation of the paper's 13; run REPRO_BENCH_SCALE=full and
extend the source list for the complete table).
"""

from __future__ import annotations

from benchmarks._common import (
    FIGURE_SOURCE_LIST,
    bench_environment,
    figure_sweep,
    write_result,
)
from repro.experiments.report import format_table7
from repro.core.sources import RepresentationSource


def test_table7_best_configurations(benchmark):
    bench_environment()
    result = benchmark.pedantic(figure_sweep, rounds=1, iterations=1)
    text = format_table7(result, FIGURE_SOURCE_LIST)
    write_result("table7_best_configs", text)

    for model in result.models():
        best = result.best_configuration(model, RepresentationSource.R)
        assert best.model == model
        assert best.params
