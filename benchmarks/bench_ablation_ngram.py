"""Ablation: n-gram size across the four context-based models.

Table 7's robustness claim: the best configurations are dominated by one
n per model family. This bench sweeps n for TN/CN/TNG/CNG on the shared
corpus and reports the MAP curve, exposing where the optimum falls on
synthetic data (the paper found n=3 tokens / n=4 characters on its much
larger real corpus).
"""

from __future__ import annotations

from benchmarks._common import bench_environment, write_result
from repro.core.sources import RepresentationSource
from repro.models.bag import CharacterNGramModel, TokenNGramModel
from repro.models.graph import CharacterNGramGraphModel, TokenNGramGraphModel
from repro.twitter.entities import UserType

SWEEP = {
    "TN": (TokenNGramModel, {"weighting": "TF", "aggregation": "centroid"}, (1, 2, 3)),
    "CN": (CharacterNGramModel, {"weighting": "TF", "aggregation": "centroid"}, (2, 3, 4)),
    "TNG": (TokenNGramGraphModel, {"similarity": "VS"}, (1, 2, 3)),
    "CNG": (CharacterNGramGraphModel, {"similarity": "VS"}, (2, 3, 4)),
}


def _curve() -> dict[str, dict[int, float]]:
    _, groups, pipeline, _ = bench_environment()
    users = groups[UserType.ALL]
    curves: dict[str, dict[int, float]] = {}
    for name, (cls, kwargs, ns) in SWEEP.items():
        curves[name] = {
            n: pipeline.evaluate(cls(n=n, **kwargs), RepresentationSource.R, users).map_score
            for n in ns
        }
    return curves


def test_ablation_ngram_size(benchmark):
    curves = benchmark.pedantic(_curve, rounds=1, iterations=1)
    lines = ["Ablation: n-gram size per context-based model (source R)"]
    for name, curve in curves.items():
        cells = "  ".join(f"n={n}: {v:.3f}" for n, v in curve.items())
        lines.append(f"{name:>4}  {cells}")
    write_result("ablation_ngram", "\n".join(lines))

    for name, curve in curves.items():
        assert all(0.0 <= v <= 1.0 for v in curve.values())
