"""EXP-F6: regenerate Figure 6 -- model x source MAP over IS users.

Expected shape: same relative model ordering as Figure 3 with the lowest
absolute MAP of the three user types -- taciturn users are the hardest
to model.
"""

from benchmarks._figure_bench import run_figure_bench
from repro.twitter.entities import UserType


def test_fig6_map_is_users(benchmark):
    run_figure_bench(
        benchmark, UserType.INFORMATION_SEEKER, "fig6_is_users",
        "Figure 6: Mean (Min-Max) MAP per model and source, IS users",
    )
