"""Pairwise model significance on the shared sweep (paper Section 5).

The paper reports statistical significance for its model comparisons
("the dominance of TNG over TN is statistically significant (p<0.05)").
This bench regenerates the pairwise Wilcoxon matrix for source R over
the All-Users group from the shared figure sweep.
"""

from __future__ import annotations

from benchmarks._common import bench_environment, figure_sweep, write_result
from repro.core.sources import RepresentationSource
from repro.experiments.significance import (
    format_significance_matrix,
    significance_matrix,
)
from repro.twitter.entities import UserType


def test_pairwise_significance(benchmark):
    bench_environment()
    result = figure_sweep()
    matrix = benchmark.pedantic(
        lambda: significance_matrix(result, RepresentationSource.R, UserType.ALL),
        rounds=1, iterations=1,
    )
    text = format_significance_matrix(matrix)
    write_result("significance_matrix", text)

    assert matrix, "matrix must not be empty"
    for test in matrix.values():
        assert 0.0 <= test.p_value <= 1.0
