"""EXP-T2: regenerate Table 2 -- per-group dataset statistics.

Paper Table 2 reports, for IS / BU / IP / All Users: the user count and
the total / min / mean / max per-user volumes of outgoing tweets (TR),
retweets (R), incoming tweets (E) and followers' tweets (F).

Expected shape: IS users have by far the largest incoming streams, IP
users the largest outgoing-per-user volumes, BU users sit in between.
"""

from __future__ import annotations

from benchmarks._common import bench_environment, write_result
from repro.experiments.report import format_table2
from repro.twitter.entities import UserType
from repro.twitter.stats import group_statistics


def test_table2_dataset_stats(benchmark):
    dataset, groups, _, _ = bench_environment()

    stats = benchmark.pedantic(
        lambda: group_statistics(dataset, groups), rounds=1, iterations=1
    )
    text = format_table2(stats)
    write_result("table2_dataset_stats", text)

    is_stats = stats[UserType.INFORMATION_SEEKER]
    ip_stats = stats[UserType.INFORMATION_PRODUCER]
    # The defining shape of Table 2: seekers receive far more than they
    # post; producers post far more than they receive.
    assert is_stats.incoming.mean > is_stats.outgoing.mean
    if ip_stats.n_users:
        assert ip_stats.outgoing.mean > ip_stats.incoming.mean
