"""EXP-T6: regenerate Table 6 -- source performance per user type.

Paper Table 6: Min/Mean/Max MAP of all 13 representation sources over
the 4 user groups, pooled across all models' configurations. Expected
shape: R is the best individual source under every user type; F is the
noisiest; IP rows dominate IS rows in absolute MAP.

At quick scale the sweep behind this table uses one representative
configuration per model (documented truncation; set
REPRO_BENCH_SCALE=full for wider grids).
"""

from __future__ import annotations

from benchmarks._common import (
    ALL_SOURCE_LIST,
    GROUP_ORDER,
    bench_environment,
    source_sweep,
    write_result,
)
from repro.experiments.report import format_table6
from repro.core.sources import RepresentationSource
from repro.twitter.entities import UserType


def test_table6_source_performance(benchmark):
    bench_environment()
    result = benchmark.pedantic(source_sweep, rounds=1, iterations=1)
    groups = [g for g in GROUP_ORDER if result.filtered(group=g)]
    text = format_table6(result, ALL_SOURCE_LIST, groups)
    write_result("table6_sources", text)

    # The defining shape of Table 6: R beats F for the All-Users group.
    r_mean = result.source_summary(RepresentationSource.R, UserType.ALL).mean
    f_mean = result.source_summary(RepresentationSource.F, UserType.ALL).mean
    assert r_mean > f_mean
