"""Shared machinery for the benchmark harness.

Every paper table and figure has one bench module. They share one
synthetic corpus, one pipeline and one configuration sweep, all cached
for the pytest session, so the expensive work happens once.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``quick`` (default) -- a reduced sweep that finishes in minutes: the
  full 75 bag/graph configurations plus a stratified subset of topic-model
  configurations, on a 60-user corpus;
* ``full``  -- the full 223-configuration grid and a larger corpus;
  expect hours (the paper's own sweep ran for days on a 32-core server).

``REPRO_BENCH_JOBS=N`` fans the sweep cells out to N worker processes
through the same :class:`~repro.experiments.executors.ProcessCellExecutor`
the CLI's ``--jobs`` uses; rows are identical to a serial run, so the
cache files it writes are interchangeable. Leave it unset (serial) when
timing results matter -- Figure 7's TTime/ETime are only meaningful
without process contention.

Reproduced tables are printed and also written to ``results/<name>.txt``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import ALL_SOURCES, RepresentationSource
from repro.experiments.configs import ConfigGrid, ModelConfig
from repro.experiments.executors import (
    GridSpec,
    PipelineSpec,
    ProcessCellExecutor,
    SweepSpec,
)
from repro.experiments.runner import SweepResult, SweepRunner
from repro.experiments.standard import FIGURE_SOURCES
from repro.twitter.dataset import DatasetConfig, generate_dataset, select_user_groups
from repro.twitter.entities import UserType

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@dataclass(frozen=True)
class BenchScale:
    """All scale knobs in one place."""

    n_users: int
    n_ticks: int
    group_size: int
    min_retweets: int
    max_train_docs: int
    topic_scale: float
    iteration_scale: float
    infer_iterations: int
    btm_max_biterms: int
    topic_configs_per_model: int  # 0 means "all of them"
    random_iterations: int
    seed: int = 7


SCALES: dict[str, BenchScale] = {
    "quick": BenchScale(
        n_users=60, n_ticks=150, group_size=10, min_retweets=10,
        max_train_docs=100, topic_scale=0.1, iteration_scale=0.015,
        infer_iterations=6, btm_max_biterms=15_000,
        topic_configs_per_model=2, random_iterations=200,
    ),
    "full": BenchScale(
        n_users=60, n_ticks=400, group_size=20, min_retweets=20,
        max_train_docs=400, topic_scale=1.0, iteration_scale=1.0,
        infer_iterations=20, btm_max_biterms=0,
        topic_configs_per_model=0, random_iterations=1000,
    ),
}


def current_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"unknown REPRO_BENCH_SCALE={name!r}; pick from {sorted(SCALES)}")
    return SCALES[name]


def bench_jobs() -> int:
    """Worker-process count from ``REPRO_BENCH_JOBS`` (default serial)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def bench_trials() -> int:
    """Pedantic rounds for the figure benches.

    Honours the same ``REPRO_BENCH_TRIALS`` knob as ``repro bench run``
    but defaults to 1: the figure sweeps are cached per session, so
    extra rounds only re-time the (cheap) cache path unless the cache
    is cleared between rounds.
    """
    from repro.experiments.bench import default_trials

    return default_trials(fallback=1)


def _bench_executor(grid: ConfigGrid) -> ProcessCellExecutor | None:
    """A process-pool executor for the bench pipeline, or None for serial.

    ``grid`` must be the grid that enumerated the configurations being
    swept -- the figure sweeps use this module's scale-derived grid while
    Table 6 uses the standard bench grid, and workers can only resolve a
    cell's configuration within the grid that produced it.
    """
    jobs = bench_jobs()
    if jobs <= 1:
        return None
    scale = current_scale()
    spec = SweepSpec(
        pipeline=PipelineSpec(
            dataset=DatasetConfig(
                n_users=scale.n_users, n_ticks=scale.n_ticks, seed=scale.seed
            ),
            seed=scale.seed,
            max_train_docs_per_user=scale.max_train_docs,
        ),
        grid=GridSpec.from_grid(grid),
    )
    return ProcessCellExecutor(spec, jobs=jobs)


@lru_cache(maxsize=1)
def bench_environment():
    """Dataset, groups, pipeline and runner -- built once per session."""
    scale = current_scale()
    dataset = generate_dataset(
        DatasetConfig(n_users=scale.n_users, n_ticks=scale.n_ticks, seed=scale.seed)
    )
    groups = select_user_groups(
        dataset, group_size=scale.group_size, min_retweets=scale.min_retweets
    )
    pipeline = ExperimentPipeline(
        dataset, seed=scale.seed, max_train_docs_per_user=scale.max_train_docs
    )
    runner = SweepRunner(pipeline, groups)
    return dataset, groups, pipeline, runner


def bench_grid() -> ConfigGrid:
    scale = current_scale()
    return ConfigGrid(
        topic_scale=scale.topic_scale,
        iteration_scale=scale.iteration_scale,
        infer_iterations=scale.infer_iterations,
        btm_max_biterms=scale.btm_max_biterms or None,
        seed=scale.seed,
    )


def sweep_configurations() -> list[ModelConfig]:
    """The configuration set for the figure/table sweeps.

    Bag and graph configurations are always complete (75 of the paper's
    223); the topic models contribute ``topic_configs_per_model``
    UP-pooled configurations each at quick scale (documented truncation)
    or their full grids at full scale.
    """
    grid = bench_grid()
    scale = current_scale()
    all_configs = grid.all_configurations()
    picked: list[ModelConfig] = []
    for name in ("TN", "CN", "TNG", "CNG"):
        picked.extend(all_configs[name])
    for name in ("LDA", "LLDA", "BTM", "HDP", "HLDA"):
        configs = all_configs[name]
        if scale.topic_configs_per_model:
            # A balanced truncation: alternate user pooling (the paper's
            # dominant winner) with no pooling (its dominant loser), so
            # the Mean/Min/Max across the subset spans the same spread
            # the full grid would show.
            def rank(config):
                pooling = config.params.get("pooling", "UP")
                centroid = config.params.get("aggregation") == "centroid"
                order = {"UP": 0, "NP": 1, "HP": 2}[pooling]
                return (0 if centroid else 1, order)

            configs = sorted(configs, key=rank)
            up = [c for c in configs if c.params.get("pooling", "UP") == "UP"]
            np_ = [c for c in configs if c.params.get("pooling") == "NP"]
            interleaved = [x for pair in zip(up, np_) for x in pair] or configs
            configs = interleaved[: scale.topic_configs_per_model]
        picked.extend(configs)
    return picked


_ALL_GROUPS = [
    UserType.ALL,
    UserType.INFORMATION_PRODUCER,
    UserType.BALANCED_USER,
    UserType.INFORMATION_SEEKER,
]


def _cache_dir() -> Path:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    path = RESULTS_DIR / "_sweep_cache" / scale
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cached_run(name: str, configs, sources, grid: ConfigGrid | None = None) -> SweepResult:
    """Run a sweep slice, or load it from the on-disk cache.

    Sweeps are the expensive part of the harness; caching them per model
    lets the bench suite be precomputed incrementally and rerun cheaply.
    Delete ``results/_sweep_cache`` to force recomputation. ``grid`` is
    the grid that enumerated ``configs``; when ``REPRO_BENCH_JOBS`` asks
    for parallelism, the cells are farmed out to workers that resolve
    configurations within that grid.
    """
    from repro.experiments.persistence import load_sweep, save_sweep
    from repro.obs import RunManifest

    path = _cache_dir() / f"{name}.json"
    if path.exists():
        return load_sweep(path)
    scale = current_scale()
    manifest = RunManifest.create(
        seed=scale.seed,
        dataset={"n_users": scale.n_users, "n_ticks": scale.n_ticks,
                 "group_size": scale.group_size,
                 "min_retweets": scale.min_retweets},
        models=sorted({config.model for config in configs}),
        command=f"bench:{name}",
        bench_scale=os.environ.get("REPRO_BENCH_SCALE", "quick"),
    )
    _, _, _, runner = bench_environment()
    executor = _bench_executor(grid) if grid is not None else None
    result = runner.run(configs, sources, groups=_ALL_GROUPS, executor=executor)
    manifest.finish()
    save_sweep(result, path, manifest=manifest)
    return result


@lru_cache(maxsize=1)
def figure_sweep() -> SweepResult:
    """The shared sweep behind Figures 3-6, Table 7 and Figure 7."""
    by_model: dict[str, list[ModelConfig]] = {}
    for config in sweep_configurations():
        by_model.setdefault(config.model, []).append(config)
    rows = []
    grid = bench_grid()
    for model_name, configs in by_model.items():
        part = _cached_run(
            f"figure_{model_name}", configs, list(FIGURE_SOURCES), grid=grid
        )
        rows.extend(part.rows)
    return SweepResult(rows)


@lru_cache(maxsize=1)
def source_sweep() -> SweepResult:
    """The 13-source sweep behind Table 6 (one config per model)."""
    from repro.experiments.standard import bench_grid as standard_grid
    from repro.experiments.standard import fast_grid

    rows = []
    # fast_grid enumerates from the *standard* bench grid, not this
    # module's scale-derived one; workers must search the same grid.
    grid = standard_grid(seed=current_scale().seed)
    for config in fast_grid(seed=current_scale().seed):
        part = _cached_run(
            f"table6_{config.model}", [config], list(ALL_SOURCES), grid=grid
        )
        rows.extend(part.rows)
    return SweepResult(rows)


@lru_cache(maxsize=1)
def figure_baselines() -> dict[UserType, dict[str, float]]:
    _, _, _, runner = bench_environment()
    return runner.baselines(random_iterations=current_scale().random_iterations)


def write_result(name: str, text: str) -> Path:
    """Persist a reproduced table under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def write_timing_baseline(name: str, result: SweepResult) -> Path:
    """Persist a sweep's timing rows as ``results/BENCH_<name>.json``.

    The machine-readable companion to :func:`write_result`'s text
    tables: each ALL-group row contributes one sample per (model,
    source) cell -- ``ttime``/``etime`` from the row's training and
    testing clocks plus one entry per recorded pipeline phase -- so the
    baseline's median/IQR captures the spread *across configurations*
    of the same model. The file uses the ``repro bench`` baseline
    schema, so ``repro bench compare`` can diff two figure runs
    directly.
    """
    from repro.obs import Baseline, SampleStats, baseline_path

    by_cell: dict[str, dict[str, list[float]]] = {}
    for row in result.rows:
        if row.group is not UserType.ALL:
            continue
        cell = by_cell.setdefault(f"{row.model}/{row.source.value}", {})
        cell.setdefault("ttime", []).append(row.training_seconds)
        cell.setdefault("etime", []).append(row.testing_seconds)
        for phase, seconds in row.phase_seconds.items():
            cell.setdefault(phase, []).append(seconds)

    phases = {
        f"{prefix}/{phase}": {"wall_seconds": SampleStats.from_samples(values)}
        for prefix, cell in sorted(by_cell.items())
        for phase, values in sorted(cell.items())
    }
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    baseline = Baseline(
        label=name,
        phases=phases,
        counters={"rows": float(len(result.rows))},
        manifest=result.manifest,
        config={"source": "figure-sweep", "scale": scale, "group": UserType.ALL.value},
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = baseline.save(baseline_path(RESULTS_DIR, name))
    print(f"[timing baseline written to {path}]")
    return path


#: The sources of Figures 3-6 plus Table 6's full inventory, re-exported
#: for the bench modules.
FIGURE_SOURCE_LIST = list(FIGURE_SOURCES)
ALL_SOURCE_LIST = list(ALL_SOURCES)
GROUP_ORDER = [
    UserType.ALL,
    UserType.INFORMATION_SEEKER,
    UserType.BALANCED_USER,
    UserType.INFORMATION_PRODUCER,
]
