"""Ablation: retweet-decision sharpness.

DESIGN.md calls out the retweet policy's ``sharpness`` as the knob that
controls how deterministic relevance is given content -- and therefore
the headroom between content-based models and the RAN baseline. This
bench sweeps it and reports the TN-vs-RAN gap.

Expected shape: the gap grows monotonically (modulo sampling noise) with
sharpness; at sharpness 0 content carries no signal and TN ~= RAN.
"""

from __future__ import annotations

from benchmarks._common import write_result
from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.eval.metrics import map_over_users
from repro.models.bag import TokenNGramModel
from repro.twitter.behavior import RetweetPolicy
from repro.twitter.dataset import DatasetConfig, generate_dataset, select_user_groups
from repro.twitter.entities import UserType

SHARPNESS_LEVELS = (0.0, 1.0, 2.5, 4.0)


def _gap_for(sharpness: float) -> tuple[float, float]:
    config = DatasetConfig(
        n_users=30, n_ticks=120, seed=13,
        retweet_policy=RetweetPolicy(sharpness=sharpness),
    )
    dataset = generate_dataset(config)
    groups = select_user_groups(dataset, group_size=6, min_retweets=8)
    pipeline = ExperimentPipeline(dataset, seed=13, max_train_docs_per_user=80)
    users = pipeline.eligible_users(groups[UserType.ALL])
    model = TokenNGramModel(n=1, weighting="TF-IDF")
    tn_map = pipeline.evaluate(model, RepresentationSource.R, users).map_score
    ran_map = map_over_users(pipeline.evaluate_random(users, iterations=100))
    return tn_map, ran_map


def test_ablation_retweet_sharpness(benchmark):
    rows = benchmark.pedantic(
        lambda: [(s, *_gap_for(s)) for s in SHARPNESS_LEVELS],
        rounds=1, iterations=1,
    )
    lines = ["Ablation: retweet sharpness vs TN/RAN gap",
             f"{'sharpness':>10}  {'TN MAP':>8}  {'RAN MAP':>8}  {'gap':>8}"]
    for sharpness, tn, ran in rows:
        lines.append(f"{sharpness:>10.1f}  {tn:>8.3f}  {ran:>8.3f}  {tn - ran:>8.3f}")
    write_result("ablation_sharpness", "\n".join(lines))

    gaps = {s: tn - ran for s, tn, ran in rows}
    assert gaps[4.0] > gaps[0.0], "sharper policies must widen the content gap"
    assert abs(gaps[0.0]) < 0.15, "with sharpness 0 content should carry ~no signal"
