"""EXP-T3: regenerate Table 3 -- the most frequent languages.

Paper Table 3: tweets are cleaned of decorations, pooled per user, the
pooled pseudo-document's language is detected, and all the user's tweets
count towards it. English dominates (~83%) with a long multilingual tail
including spaceless CJK/Thai scripts.
"""

from __future__ import annotations

from benchmarks._common import bench_environment, write_result
from repro.experiments.report import format_table3
from repro.twitter.stats import language_census


def test_table3_language_census(benchmark):
    dataset, _, _, _ = bench_environment()

    census = benchmark.pedantic(
        lambda: language_census(dataset), rounds=1, iterations=1
    )
    text = format_table3(census)
    write_result("table3_languages", text)

    total = sum(census.values())  # repro: allow[RPR002] -- integer tweet counts: exact in any order
    assert total > 0
    # The defining shape of Table 3: English holds the dominant share.
    assert max(census, key=census.get) == "english"
    assert census["english"] / total > 0.5
