"""EXP-F7: regenerate Figure 7 -- training and testing time per model.

Paper Figure 7: min/avg/max TTime (model all 60 users) and ETime (rank
all test sets) per representation model. Expected shape: TN is the
fastest overall; character models are slower than their token
counterparts; topic models pay at least an order of magnitude more
TTime for inference, with BTM's biterm explosion the slowest to train
and the nonparametric HLDA the slowest at test time.
"""

from __future__ import annotations

from benchmarks._common import (
    bench_environment,
    bench_trials,
    figure_sweep,
    write_result,
    write_timing_baseline,
)
from repro.experiments.report import format_figure7


def test_fig7_time_efficiency(benchmark):
    bench_environment()
    result = benchmark.pedantic(figure_sweep, rounds=bench_trials(), iterations=1)
    text = format_figure7(result)
    write_result("fig7_efficiency", text)
    write_timing_baseline("fig7_efficiency", result)

    tn_ttime, _ = result.timing_summary("TN")
    lda_ttime, _ = result.timing_summary("LDA")
    # The defining shape of Figure 7: topic inference costs far more
    # training time than the vector space model.
    assert lda_ttime.average > tn_ttime.average
