"""EXP-F5: regenerate Figure 5 -- model x source MAP over BU users.

Expected shape: same relative model ordering as Figure 3, absolute MAP
between the IP (higher) and IS (lower) groups.
"""

from benchmarks._figure_bench import run_figure_bench
from repro.twitter.entities import UserType


def test_fig5_map_bu_users(benchmark):
    run_figure_bench(
        benchmark, UserType.BALANCED_USER, "fig5_bu_users",
        "Figure 5: Mean (Min-Max) MAP per model and source, BU users",
    )
