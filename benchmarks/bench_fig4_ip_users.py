"""EXP-F4: regenerate Figure 4 -- model x source MAP over IP users.

Expected shape: same relative model ordering as Figure 3, with higher
absolute MAP -- information producers are the easiest users to model.
"""

from benchmarks._figure_bench import run_figure_bench
from repro.twitter.entities import UserType


def test_fig4_map_ip_users(benchmark):
    run_figure_bench(
        benchmark, UserType.INFORMATION_PRODUCER, "fig4_ip_users",
        "Figure 4: Mean (Min-Max) MAP per model and source, IP users",
    )
