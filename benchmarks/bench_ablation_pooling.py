"""Ablation: tweet pooling for topic models (NP vs UP vs HP).

The paper's sparsity argument: topic models trained on unpooled tweets
(NP) fail to find co-occurrence patterns; user pooling (UP) wins in the
vast majority of cases, hashtag pooling (HP) helps but covers fewer
tweets.

Expected shape: UP >= HP > NP for LDA's MAP.
"""

from __future__ import annotations

from benchmarks._common import bench_environment, write_result
from repro.core.sources import RepresentationSource
from repro.models.topic.lda import LdaModel
from repro.text.pooling import PoolingScheme
from repro.twitter.entities import UserType


def _lda_map_for(pooling: PoolingScheme) -> float:
    _, groups, pipeline, _ = bench_environment()
    users = groups[UserType.ALL]
    model = LdaModel(
        n_topics=15, iterations=25, infer_iterations=6, seed=1, pooling=pooling
    )
    return pipeline.evaluate(model, RepresentationSource.R, users).map_score


def test_ablation_pooling_schemes(benchmark):
    rows = benchmark.pedantic(
        lambda: {p.value: _lda_map_for(p) for p in PoolingScheme},
        rounds=1, iterations=1,
    )
    lines = ["Ablation: LDA pooling scheme (source R, All Users)",
             f"{'pooling':>8}  {'MAP':>8}"]
    for name, value in rows.items():
        lines.append(f"{name:>8}  {value:>8.3f}")
    write_result("ablation_pooling", "\n".join(lines))

    # The paper's core sparsity finding: pooling beats no pooling.
    assert max(rows["UP"], rows["HP"]) >= rows["NP"] - 0.02
