"""Shared body for the Figure 3-6 benches (one per user group)."""

from __future__ import annotations

from benchmarks._common import (
    FIGURE_SOURCE_LIST,
    bench_environment,
    bench_trials,
    figure_baselines,
    figure_sweep,
    write_result,
    write_timing_baseline,
)
from repro.experiments.report import format_figure_map
from repro.twitter.entities import UserType


def run_figure_bench(benchmark, group: UserType, name: str, title: str) -> None:
    """Evaluate the shared sweep, render one group's MAP matrix, and
    check the figure's defining shape (content models beat RAN)."""
    bench_environment()
    result = benchmark.pedantic(figure_sweep, rounds=bench_trials(), iterations=1)
    baselines = figure_baselines().get(group, {})
    text = format_figure_map(
        result, group, FIGURE_SOURCE_LIST, baselines=baselines, title=title
    )
    write_result(name, text)
    write_timing_baseline(name, result)

    rows = result.filtered(group=group)
    if not rows:  # tiny corpora may leave a group empty (e.g. no IP users)
        return
    ran = baselines.get("RAN", 0.0)
    best = max(row.map_score for row in rows)
    assert best > ran, f"no model beat RAN ({ran:.3f}) for {group.value}"
