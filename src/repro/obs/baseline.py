"""Benchmark baselines: durable ``BENCH_*.json`` files and comparison.

A :class:`Baseline` is the machine-readable record of one benchmark
run: per-phase wall/CPU/RSS sample statistics (median and IQR over the
measured trials), metric counters and the run's provenance manifest.
``repro bench run`` writes one; ``repro bench compare`` loads two and
performs *noise-aware* regression detection -- a phase is flagged only
when its median shift exceeds **both** a relative threshold and the
pooled inter-quartile range, so ordinary trial-to-trial jitter never
trips the gate while a real slowdown (or memory blow-up, the paper's
PLSA problem) always does.

File names are timestamp-free by design (``BENCH_<label>.json``): the
label names *what* was measured, the embedded manifest records *when*,
and re-running overwrites in place so diffs against a checked-in seed
baseline stay meaningful.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError, PersistenceError

__all__ = [
    "Baseline",
    "BaselineComparison",
    "MetricDelta",
    "SampleStats",
    "baseline_path",
    "compare_baselines",
    "format_baseline",
    "format_comparison",
    "load_baseline",
]

#: Format marker for baseline files.
BASELINE_FORMAT_VERSION = 1
#: File-name prefix shared by all baseline files.
BASELINE_PREFIX = "BENCH_"
#: Metrics the regression gate inspects (others are informational).
GATE_METRICS = ("wall_seconds", "peak_rss_bytes")

_LABEL_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: Per-metric absolute floors: a median shift below the floor is noise
#: regardless of ratios (sub-5ms wall deltas, sub-4MiB RSS deltas).
_ABSOLUTE_FLOORS = {
    "wall_seconds": 0.005,
    "cpu_seconds": 0.005,
    "peak_rss_bytes": 4 * 1024 * 1024,
    "alloc_peak_bytes": 4 * 1024 * 1024,
}


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending sample list."""
    if not ordered:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    position = (len(ordered) - 1) * q
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class SampleStats:
    """Median/IQR summary of one metric's samples across trials."""

    median: float
    iqr: float
    minimum: float
    maximum: float
    samples: tuple[float, ...]

    @classmethod
    def from_samples(cls, values: list[float] | tuple[float, ...]) -> "SampleStats":
        if not values:
            raise ConfigurationError("SampleStats needs at least one sample")
        ordered = sorted(float(v) for v in values)
        return cls(
            median=_quantile(ordered, 0.5),
            iqr=_quantile(ordered, 0.75) - _quantile(ordered, 0.25),
            minimum=ordered[0],
            maximum=ordered[-1],
            samples=tuple(float(v) for v in values),
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "median": self.median,
            "iqr": self.iqr,
            "min": self.minimum,
            "max": self.maximum,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SampleStats":
        try:
            return cls(
                median=float(payload["median"]),
                iqr=float(payload["iqr"]),
                minimum=float(payload["min"]),
                maximum=float(payload["max"]),
                samples=tuple(float(v) for v in payload.get("samples", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"malformed sample stats: {payload!r}") from exc


@dataclass
class Baseline:
    """One benchmark run's durable record.

    ``phases`` maps ``"MODEL/SOURCE/phase"`` keys to per-metric
    :class:`SampleStats` (``wall_seconds`` always; ``cpu_seconds``,
    ``peak_rss_bytes`` and ``alloc_peak_bytes`` when measured).
    """

    label: str
    phases: dict[str, dict[str, SampleStats]]
    counters: dict[str, float] = field(default_factory=dict)
    manifest: dict | None = None
    config: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "version": BASELINE_FORMAT_VERSION,
            "label": self.label,
            "manifest": self.manifest,
            "config": dict(self.config),
            "phases": {
                phase: {metric: stats.to_dict() for metric, stats in sorted(metrics.items())}
                for phase, metrics in sorted(self.phases.items())
            },
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Baseline":
        if not isinstance(payload, dict):
            raise PersistenceError("baseline document must be a JSON object")
        version = payload.get("version")
        if version != BASELINE_FORMAT_VERSION:
            raise PersistenceError(f"unsupported baseline version: {version!r}")
        label = payload.get("label")
        if not isinstance(label, str) or not label:
            raise PersistenceError("baseline is missing its label")
        raw_phases = payload.get("phases")
        if not isinstance(raw_phases, dict):
            raise PersistenceError("baseline is missing its phases mapping")
        phases: dict[str, dict[str, SampleStats]] = {}
        for phase, metrics in raw_phases.items():
            if not isinstance(metrics, dict) or not metrics:
                raise PersistenceError(f"phase {phase!r} has no metrics")
            phases[phase] = {
                metric: SampleStats.from_dict(stats) for metric, stats in metrics.items()
            }
        counters = payload.get("counters", {})
        if not isinstance(counters, dict):
            raise PersistenceError("baseline counters must be a mapping")
        manifest = payload.get("manifest")
        if manifest is not None and not isinstance(manifest, dict):
            raise PersistenceError("baseline manifest must be a mapping or null")
        return cls(
            label=label,
            phases=phases,
            counters={str(k): float(v) for k, v in counters.items()},
            manifest=manifest,
            config=dict(payload.get("config", {})),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True))
        return path


def baseline_path(directory: str | Path, label: str) -> Path:
    """``<directory>/BENCH_<label>.json`` with a validated label."""
    if not _LABEL_PATTERN.match(label):
        raise ConfigurationError(
            f"baseline label must match {_LABEL_PATTERN.pattern}, got {label!r}"
        )
    return Path(directory) / f"{BASELINE_PREFIX}{label}.json"


def load_baseline(path: str | Path) -> Baseline:
    """Read back a baseline file; :class:`PersistenceError` on bad schema."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise PersistenceError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"baseline {path} is not valid JSON: {exc}") from exc
    return Baseline.from_dict(payload)


# -- comparison --------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One phase metric's old-vs-new verdict."""

    phase: str
    metric: str
    old_median: float
    new_median: float
    delta: float
    pooled_iqr: float
    noise_floor: float
    classification: str  # "regression" | "improvement" | "stable"

    @property
    def ratio(self) -> float | None:
        return self.new_median / self.old_median if self.old_median else None

    def to_dict(self) -> dict[str, object]:
        return {
            "phase": self.phase,
            "metric": self.metric,
            "old_median": self.old_median,
            "new_median": self.new_median,
            "delta": self.delta,
            "ratio": self.ratio,
            "pooled_iqr": self.pooled_iqr,
            "noise_floor": self.noise_floor,
            "classification": self.classification,
        }


@dataclass
class BaselineComparison:
    """Every gated metric's verdict plus phase coverage deltas."""

    old_label: str
    new_label: str
    deltas: list[MetricDelta]
    missing_phases: list[str] = field(default_factory=list)
    added_phases: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.classification == "regression"]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.classification == "improvement"]

    def to_dict(self) -> dict[str, object]:
        return {
            "old": self.old_label,
            "new": self.new_label,
            "deltas": [d.to_dict() for d in self.deltas],
            "missing_phases": list(self.missing_phases),
            "added_phases": list(self.added_phases),
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
        }


def compare_baselines(
    old: Baseline,
    new: Baseline,
    rel_threshold: float = 0.10,
    iqr_factor: float = 1.0,
) -> BaselineComparison:
    """Noise-aware comparison of two baselines.

    A metric regresses only when the median shift exceeds **all** of:
    ``rel_threshold`` of the old median, ``iqr_factor`` times the pooled
    IQR (``(old.iqr + new.iqr) / 2`` -- the shared noise estimate), and
    the metric's absolute floor. Improvements mirror the same test with
    the sign flipped; everything else is stable.
    """
    if rel_threshold <= 0.0:
        raise ConfigurationError(f"rel_threshold must be positive, got {rel_threshold}")
    deltas: list[MetricDelta] = []
    for phase in sorted(set(old.phases) & set(new.phases)):
        old_metrics, new_metrics = old.phases[phase], new.phases[phase]
        for metric in sorted(set(old_metrics) & set(new_metrics)):
            if metric not in GATE_METRICS:
                continue
            old_stats, new_stats = old_metrics[metric], new_metrics[metric]
            delta = new_stats.median - old_stats.median
            pooled_iqr = (old_stats.iqr + new_stats.iqr) / 2.0
            noise_floor = max(
                rel_threshold * abs(old_stats.median),
                iqr_factor * pooled_iqr,
                _ABSOLUTE_FLOORS.get(metric, 0.0),
            )
            if delta > noise_floor:
                classification = "regression"
            elif delta < -noise_floor:
                classification = "improvement"
            else:
                classification = "stable"
            deltas.append(
                MetricDelta(
                    phase=phase,
                    metric=metric,
                    old_median=old_stats.median,
                    new_median=new_stats.median,
                    delta=delta,
                    pooled_iqr=pooled_iqr,
                    noise_floor=noise_floor,
                    classification=classification,
                )
            )
    return BaselineComparison(
        old_label=old.label,
        new_label=new.label,
        deltas=deltas,
        missing_phases=sorted(set(old.phases) - set(new.phases)),
        added_phases=sorted(set(new.phases) - set(old.phases)),
    )


# -- rendering ---------------------------------------------------------------


def _format_value(metric: str, value: float) -> str:
    if metric.endswith("_bytes"):
        return f"{value / (1024 * 1024):.1f}MiB"
    return f"{value:.3f}s"


def format_baseline(baseline: Baseline) -> str:
    """Human-readable per-phase summary of one baseline."""
    lines = [f"baseline {baseline.label!r}"]
    if baseline.config:
        lines.append(
            "config: " + ", ".join(f"{k}={v}" for k, v in sorted(baseline.config.items()))
        )
    for phase, metrics in sorted(baseline.phases.items()):
        cells = [
            f"{metric}={_format_value(metric, stats.median)} (iqr {_format_value(metric, stats.iqr)})"
            for metric, stats in sorted(metrics.items())
        ]
        lines.append(f"  {phase:<32} " + "  ".join(cells))
    return "\n".join(lines)


def _comparison_rows(comparison: BaselineComparison) -> list[tuple[str, ...]]:
    rows = []
    for delta in comparison.deltas:
        ratio = f"{delta.ratio:.2f}x" if delta.ratio is not None else "-"
        rows.append(
            (
                delta.phase,
                delta.metric,
                _format_value(delta.metric, delta.old_median),
                _format_value(delta.metric, delta.new_median),
                ratio,
                delta.classification,
            )
        )
    return rows


def format_comparison(comparison: BaselineComparison, fmt: str = "text") -> str:
    """Render a comparison as ``text``, ``json`` or ``markdown``."""
    if fmt == "json":
        return json.dumps(comparison.to_dict(), indent=1, sort_keys=True)
    header = ("phase", "metric", "old", "new", "ratio", "verdict")
    rows = _comparison_rows(comparison)
    lines: list[str]
    if fmt == "markdown":
        lines = [
            f"## bench compare: `{comparison.old_label}` vs `{comparison.new_label}`",
            "",
            "| " + " | ".join(header) + " |",
            "| " + " | ".join("---" for _ in header) + " |",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in rows)
    elif fmt == "text":
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"bench compare: {comparison.old_label} vs {comparison.new_label}"]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.extend(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(header))) for row in rows
        )
    else:
        raise ConfigurationError(f"unknown comparison format: {fmt!r}")
    if comparison.missing_phases:
        lines.append("")
        lines.append("phases missing from new run: " + ", ".join(comparison.missing_phases))
    if comparison.added_phases:
        lines.append("")
        lines.append("phases new in this run: " + ", ".join(comparison.added_phases))
    lines.append("")
    lines.append(
        f"{len(comparison.regressions)} regression(s), "
        f"{len(comparison.improvements)} improvement(s), "
        f"{len(comparison.deltas)} metric(s) compared"
    )
    return "\n".join(lines)
