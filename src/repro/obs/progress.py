"""Live sweep progress: event-stream tracking, ETA, and monitor views.

A long sweep already narrates itself as a structured event stream
(``sweep_start`` / ``cell_dispatched`` / ``cell_started`` /
``cell_joined`` / ``cell_quarantined`` / ``sweep_done`` -- see
:mod:`repro.experiments.runner`). This module turns that stream into
*live state*: a :class:`SweepProgressTracker` is an
:class:`~repro.obs.events.EventLog` sink that folds each record into
cells done/total, per-worker occupancy, an EWMA of the cell-completion
interval and the ETA derived from it. The same tracker also replays a
JSON-lines event file or a sweep journal offline, which is what
``repro monitor`` does.

Every duration here is computed from the ``ts`` stamps the records
already carry -- the tracker itself never reads the wall clock, so it
is equally correct live (in the sweep process), tailing a file on
another machine, or replaying history after the run.

Console rendering lives here too: :func:`console_progress_sink` is the
verbose per-cell line (``repro sweep --progress`` without ``--quiet``),
and :class:`ProgressLineSink` is the minimal single-line view that
overwrites itself in place.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO

__all__ = [
    "ProgressLineSink",
    "SweepProgressTracker",
    "console_progress_sink",
    "format_snapshot",
    "load_progress",
]

#: Journal lines carrying a progress heartbeat instead of a cell record.
HEARTBEAT_RECORD = "heartbeat"


class SweepProgressTracker:
    """Folds sweep event records into live progress state.

    Attach it to an event log (it is a sink: ``events.add_sink(tracker)``)
    or feed it records with :meth:`consume`. :meth:`snapshot` returns a
    JSON-ready view; the runner emits that view as the ``sweep_progress``
    heartbeat event after every joined cell.

    ``ewma_alpha`` weights the exponentially-weighted moving average of
    the interval between cell completions; the ETA is the remaining cell
    count times that interval, which absorbs parallelism automatically
    (N workers join cells N times as often).
    """

    def __init__(self, ewma_alpha: float = 0.3):
        self.ewma_alpha = ewma_alpha
        self.total = 0
        self.done = 0
        self.restored = 0
        self.retries = 0
        self.quarantined = 0
        self.skipped = 0
        self.jobs: int | None = None
        self.finished = False
        #: worker id -> {"cell":, "attempt":, "since": ts} or None (idle).
        self.workers: dict[int, dict | None] = {}
        self.started_ts: float | None = None
        self.last_ts: float | None = None
        self._ewma_interval: float | None = None
        self._last_join_ts: float | None = None

    # -- event consumption --------------------------------------------------

    def __call__(self, record: dict) -> None:
        self.consume(record)

    def consume(self, record: dict) -> None:
        """Fold one event record into the tracker's state."""
        event = record.get("event")
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            if self.started_ts is None:
                self.started_ts = float(ts)
            self.last_ts = max(self.last_ts or float(ts), float(ts))
        handler = getattr(self, f"_on_{event}", None)
        if handler is not None:
            handler(record)

    def _on_sweep_start(self, record: dict) -> None:
        jobs = record.get("jobs")
        if isinstance(jobs, int):
            self.jobs = jobs
            for worker in range(jobs):
                self.workers.setdefault(worker, None)

    def _on_cell_dispatched(self, record: dict) -> None:
        self.total += 1

    def _on_cell_restored(self, record: dict) -> None:
        self.total += 1
        self.done += 1
        self.restored += 1

    def _on_cell_started(self, record: dict) -> None:
        worker = record.get("worker")
        if isinstance(worker, int):
            self.workers[worker] = {
                "cell": record.get("cell"),
                "attempt": record.get("attempt"),
                "since": record.get("ts"),
            }

    def _on_cell_finished(self, record: dict) -> None:
        worker = record.get("worker")
        if isinstance(worker, int):
            self.workers[worker] = None

    def _on_cell_joined(self, record: dict) -> None:
        self.done += 1
        ts = record.get("ts")
        if not isinstance(ts, (int, float)):
            return
        anchor = self._last_join_ts if self._last_join_ts is not None else self.started_ts
        if anchor is not None:
            interval = max(0.0, float(ts) - anchor)
            if self._ewma_interval is None:
                self._ewma_interval = interval
            else:
                self._ewma_interval = (
                    self.ewma_alpha * interval
                    + (1.0 - self.ewma_alpha) * self._ewma_interval
                )
        self._last_join_ts = float(ts)

    def _on_cell_retry(self, record: dict) -> None:
        self.retries += 1

    def _on_cell_quarantined(self, record: dict) -> None:
        self.quarantined += 1

    def _on_config_skipped(self, record: dict) -> None:
        self.skipped += 1

    def _on_sweep_done(self, record: dict) -> None:
        self.finished = True
        for worker in self.workers:
            self.workers[worker] = None

    # -- derived views -------------------------------------------------------

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    def ewma_cell_seconds(self) -> float | None:
        """EWMA interval between cell completions, in seconds."""
        return self._ewma_interval

    def eta_seconds(self) -> float | None:
        """Projected seconds until the last cell joins; None when unknown."""
        if self.finished:
            return 0.0
        if self._ewma_interval is None or self._ewma_interval <= 0.0:
            return None
        return self.remaining * self._ewma_interval

    def workers_busy(self) -> int:
        return sum(1 for state in self.workers.values() if state is not None)

    def snapshot(self) -> dict:
        """JSON-ready progress view (the ``sweep_progress`` heartbeat body)."""
        now = self.last_ts
        workers: dict[str, dict | None] = {}
        for worker in sorted(self.workers):
            state = self.workers[worker]
            if state is None:
                workers[str(worker)] = None
                continue
            busy = None
            since = state.get("since")
            if isinstance(since, (int, float)) and now is not None:
                busy = max(0.0, now - float(since))
            workers[str(worker)] = {
                "cell": state.get("cell"),
                "attempt": state.get("attempt"),
                "busy_seconds": busy,
            }
        elapsed = None
        if self.started_ts is not None and now is not None:
            elapsed = max(0.0, now - self.started_ts)
        return {
            "done": self.done,
            "total": self.total,
            "restored": self.restored,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "skipped": self.skipped,
            "jobs": self.jobs,
            "workers_busy": self.workers_busy(),
            "workers": workers,
            "ewma_cell_seconds": self.ewma_cell_seconds(),
            "eta_seconds": self.eta_seconds(),
            "elapsed_seconds": elapsed,
            "finished": self.finished,
        }


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "?"
    if value >= 3600:
        return f"{value / 3600:.1f}h"
    if value >= 60:
        return f"{value / 60:.1f}m"
    return f"{value:.1f}s"


def format_snapshot(snapshot: dict) -> str:
    """Render one progress snapshot as the monitor's text view."""
    done, total = snapshot.get("done", 0), snapshot.get("total", 0)
    percent = f" ({100.0 * done / total:.0f}%)" if total else ""
    status = "done" if snapshot.get("finished") else "running"
    lines = [f"sweep {status}: {done}/{total} cells{percent}"]
    health = []
    if snapshot.get("restored"):
        health.append(f"{snapshot['restored']} restored")
    if snapshot.get("retries"):
        health.append(f"{snapshot['retries']} retries")
    if snapshot.get("quarantined"):
        health.append(f"{snapshot['quarantined']} quarantined")
    if snapshot.get("skipped"):
        health.append(f"{snapshot['skipped']} skipped")
    if health:
        lines.append("health: " + ", ".join(health))
    lines.append(
        "elapsed "
        + _fmt_seconds(snapshot.get("elapsed_seconds"))
        + "  ·  "
        + _fmt_seconds(snapshot.get("ewma_cell_seconds"))
        + "/cell  ·  eta "
        + _fmt_seconds(snapshot.get("eta_seconds"))
    )
    workers = snapshot.get("workers") or {}
    if workers:
        jobs = snapshot.get("jobs") or len(workers)
        lines.append(f"workers ({snapshot.get('workers_busy', 0)}/{jobs} busy):")
        for worker in sorted(workers, key=lambda w: int(w)):
            state = workers[worker]
            if state is None:
                lines.append(f"  w{worker}  idle")
            else:
                busy = _fmt_seconds(state.get("busy_seconds"))
                attempt = state.get("attempt")
                suffix = f" attempt {attempt}" if attempt is not None else ""
                lines.append(f"  w{worker}  {state.get('cell')}{suffix}  ({busy})")
    return "\n".join(lines)


def console_progress_sink(record: dict) -> None:  # pragma: no cover - console side effect
    """Event sink reproducing the verbose per-cell console lines."""
    if record.get("event") == "config_result":
        print(
            f"  {record['label']} on {record['source']}: MAP={record['map']:.3f}"
        )
    elif record.get("event") == "config_skipped":
        print(f"  {record['label']} on {record['source']}: skipped ({record['reason']})")
    elif record.get("event") == "cell_restored":
        print(f"  {record['label']} on {record['source']}: restored from journal")
    elif record.get("event") == "cell_requeued":
        print(
            f"  {record['label']} on {record['source']}: "
            f"quarantined last run ({record['kind']}), retrying"
        )
    elif record.get("event") == "cell_quarantined":
        print(
            f"  {record['label']} on {record['source']}: QUARANTINED "
            f"({record['kind']}: {record['error']} after "
            f"{record['attempts']} attempt(s))"
        )


class ProgressLineSink:
    """Minimal single-line progress view that overwrites itself in place.

    The ``repro sweep --progress --quiet`` rendering: one ``\\r``-anchored
    line (``cells 12/34 · eta 42s · 1 quarantined``) refreshed on every
    progress-relevant event, finalised with a newline at ``sweep_done``.
    Wraps its own :class:`SweepProgressTracker`, so it needs nothing but
    the event stream.
    """

    #: Events that change what the line displays.
    _REFRESH_EVENTS = frozenset(
        {
            "sweep_start",
            "cell_restored",
            "cell_joined",
            "cell_quarantined",
            "cell_retry",
            "sweep_done",
        }
    )

    def __init__(self, stream: IO[str] | None = None):
        self.tracker = SweepProgressTracker()
        self._stream = stream if stream is not None else sys.stderr
        self._width = 0

    def __call__(self, record: dict) -> None:
        self.tracker.consume(record)
        if record.get("event") not in self._REFRESH_EVENTS:
            return
        tracker = self.tracker
        bits = [f"cells {tracker.done}/{tracker.total}"]
        eta = tracker.eta_seconds()
        if eta is not None:
            bits.append(f"eta {_fmt_seconds(eta)}")
        if tracker.quarantined:
            bits.append(f"{tracker.quarantined} quarantined")
        if tracker.retries:
            bits.append(f"{tracker.retries} retries")
        line = " · ".join(bits)
        pad = " " * max(0, self._width - len(line))
        self._width = len(line)
        self._stream.write(f"\r{line}{pad}")
        if record.get("event") == "sweep_done":
            self._stream.write("\n")
        self._stream.flush()


def iter_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSON-lines file, skipping torn or non-object lines.

    Monitoring reads files that another process is still appending to,
    so a half-written tail is normal operation, not corruption.
    """
    records: list[dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict):
            records.append(entry)
    return records


def _journal_snapshot(records: list[dict]) -> dict:
    """Progress view of a sweep journal: heartbeats + cell records.

    The runner appends a heartbeat line (the ``sweep_progress`` body)
    after each journaled cell, so the last heartbeat *is* the snapshot;
    journals written before heartbeats existed fall back to counting
    cell records, which still yields done and quarantine counts.
    """
    heartbeats = [r for r in records if r.get("record") == HEARTBEAT_RECORD]
    if heartbeats:
        snapshot = dict(heartbeats[-1])
        snapshot.pop("record", None)
        return snapshot
    cells = [r for r in records if "cell" in r and "per_user_ap" in r]
    quarantined = sum(1 for r in cells if r.get("failure") is not None)
    return {
        "done": len(cells),
        "total": None,
        "restored": 0,
        "retries": 0,
        "quarantined": quarantined,
        "skipped": 0,
        "jobs": None,
        "workers_busy": 0,
        "workers": {},
        "ewma_cell_seconds": None,
        "eta_seconds": None,
        "elapsed_seconds": None,
        "finished": False,
    }


def load_progress(path: str | Path) -> dict:
    """Build a progress snapshot from an events file or a sweep journal.

    ``repro monitor`` points this at either artifact of a running sweep:
    a ``--log-json`` JSON-lines event stream (replayed through a
    :class:`SweepProgressTracker`) or a ``--journal`` file (read via its
    heartbeat records). The distinction is made from the file's first
    record, so callers never have to say which kind they have.
    """
    records = iter_jsonl(path)
    if records and records[0].get("format") == "repro-sweep-journal":
        return _journal_snapshot(records)
    tracker = SweepProgressTracker()
    for record in sorted(
        (r for r in records if "event" in r),
        key=lambda r: r.get("seq") if isinstance(r.get("seq"), int) else 0,
    ):
        tracker.consume(record)
    return tracker.snapshot()
