"""Resource sampling: RSS, CPU time and allocation peaks per span.

Wall-clock spans answer *where the time went*; this module answers
*what it cost*. A :class:`ResourceSampler` runs a background thread that
samples the process's resident set size (from ``/proc/self/statm``,
falling back to :func:`resource.getrusage` where procfs is missing) and
folds each sample into every open :class:`ResourceWatch`. The tracer
opens one watch per span, so a saved trace carries ``peak_rss_bytes``
and ``cpu_seconds`` (and, opt-in, tracemalloc ``alloc_peak_bytes``)
alongside every phase's wall time -- the memory dimension the paper's
efficiency discussion (Figure 7 and the PLSA exclusion) needs.

The sampler is a context manager and must be entered with ``with``:
the background thread starts on ``__enter__`` and is joined on
``__exit__``, so a sampler can never outlive the run it measures
(reprolint RPR007 enforces the idiom). Outside the ``with`` block a
watch still works degraded -- it records the boundary samples taken at
watch start and stop, so short-lived use never crashes, it just loses
the between-boundaries peaks.

The third question -- *which frames inside the phase* burn the time --
is answered by the stack-sampling profiler in
:mod:`repro.obs.profiler`, which follows the same background-thread,
context-manager-only design (its rule is RPR014).
"""

from __future__ import annotations

import os
import threading
import time
import tracemalloc

from repro.errors import ConfigurationError

__all__ = ["ResourceSampler", "ResourceWatch", "read_rss_bytes"]

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover - exotic OS
    _PAGE_SIZE = 4096


def read_rss_bytes() -> int | None:
    """Current resident set size in bytes, or None when unavailable.

    Reads ``/proc/self/statm`` (second field, in pages); where procfs is
    missing it falls back to ``ru_maxrss`` -- the lifetime *peak* rather
    than the current value, which still bounds per-span peaks correctly
    -- and returns None only when both sources fail.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:  # pragma: no cover - non-Linux fallback
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return int(peak) * (1 if sys.platform == "darwin" else 1024)
    except Exception:  # pragma: no cover - no procfs, no getrusage
        return None


class ResourceWatch:
    """One span's resource window.

    The sampler folds RSS (and, opt-in, tracemalloc peak) readings into
    every open watch; :meth:`stop` closes the window and returns the
    JSON-ready resource mapping the span stores.
    """

    __slots__ = ("_sampler", "_cpu_start", "peak_rss_bytes", "alloc_peak_bytes")

    def __init__(self, sampler: "ResourceSampler"):
        self._sampler = sampler
        self._cpu_start = time.process_time()
        self.peak_rss_bytes: int | None = None
        self.alloc_peak_bytes: int | None = None

    def observe_rss(self, rss_bytes: int) -> None:
        if self.peak_rss_bytes is None or rss_bytes > self.peak_rss_bytes:
            self.peak_rss_bytes = rss_bytes

    def observe_alloc(self, alloc_bytes: int) -> None:
        if self.alloc_peak_bytes is None or alloc_bytes > self.alloc_peak_bytes:
            self.alloc_peak_bytes = alloc_bytes

    def stop(self) -> dict[str, float]:
        """Close the window; returns the span's ``resources`` mapping."""
        return self._sampler.finish(self)


class ResourceSampler:
    """Background-thread RSS sampler with per-watch peak attribution.

    Parameters
    ----------
    interval:
        Seconds between background samples. Peaks are additionally
        sampled at every watch boundary, so spans shorter than the
        interval still record a value.
    trace_allocations:
        Also capture tracemalloc peak allocations per watch. Accurate
        but slow (every allocation is traced); off by default.
    """

    def __init__(self, interval: float = 0.01, trace_allocations: bool = False):
        if interval <= 0.0:
            raise ConfigurationError(
                f"sampling interval must be positive, got {interval}"
            )
        self.interval = interval
        self.trace_allocations = trace_allocations
        self._lock = threading.Lock()
        self._active: list[ResourceWatch] = []
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._started_tracemalloc = False

    @property
    def sampling(self) -> bool:
        """Whether the background thread is currently running."""
        return self._thread is not None

    # -- lifecycle (context manager only; see RPR007) ----------------------

    def __enter__(self) -> "ResourceSampler":
        if self._thread is not None:
            raise ConfigurationError("ResourceSampler is already sampling")
        if self.trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        thread, self._thread = self._thread, None
        self._stop_event.set()
        if thread is not None:
            thread.join()
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False

    def _sample_loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.sample_once()

    def sample_once(self) -> None:
        """Take one RSS reading and fold it into every open watch."""
        rss = read_rss_bytes()
        if rss is None:  # pragma: no cover - no RSS source on this OS
            return
        with self._lock:
            for watch in self._active:
                watch.observe_rss(rss)

    # -- watches ------------------------------------------------------------

    def _fold_boundary_sample(self) -> None:
        """Fold boundary RSS/alloc readings into every open watch.

        Caller holds the lock. tracemalloc's peak counter is global, so
        it is read, credited to every open watch (their windows all
        cover the elapsed interval) and reset -- each watch's
        ``alloc_peak_bytes`` becomes the max peak over the boundary-to-
        boundary intervals its window spans.
        """
        rss = read_rss_bytes()
        if rss is not None:
            for watch in self._active:
                watch.observe_rss(rss)
        if self.trace_allocations and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            for watch in self._active:
                watch.observe_alloc(peak)
            tracemalloc.reset_peak()

    def watch(self) -> ResourceWatch:
        """Open a resource window (the tracer does this per span)."""
        watch = ResourceWatch(self)
        with self._lock:
            self._fold_boundary_sample()
            self._active.append(watch)
            rss = read_rss_bytes()
            if rss is not None:
                watch.observe_rss(rss)
        return watch

    def finish(self, watch: ResourceWatch) -> dict[str, float]:
        """Close ``watch``; returns its JSON-ready resource mapping."""
        cpu_seconds = time.process_time() - watch._cpu_start
        with self._lock:
            if watch in self._active:
                self._fold_boundary_sample()
                self._active.remove(watch)
        resources: dict[str, float] = {"cpu_seconds": cpu_seconds}
        if watch.peak_rss_bytes is not None:
            resources["peak_rss_bytes"] = int(watch.peak_rss_bytes)
        if watch.alloc_peak_bytes is not None:
            resources["alloc_peak_bytes"] = int(watch.alloc_peak_bytes)
        return resources
