"""Statistical stack-sampling profiler with span attribution.

Spans (PR 1) say *which phase* is slow and resource watches (PR 4) say
*what it cost* -- this module says *which frames inside the phase* burn
the time, the stack-level evidence the vectorization work on
``models/topic/gibbs.py`` and batched ranking (ROADMAP item 2) needs
before rewriting hot loops.

A :class:`StackSampler` runs a background thread that walks
``sys._current_frames()`` at a configurable rate (no signals, no
``sys.setprofile`` -- the profiled code runs unmodified and pays only
for the GIL handoffs while a sample is taken). Every captured stack is
tagged with the innermost open :class:`~repro.obs.tracing.Span` of the
sampled thread (via the tracer's per-thread span registry), so samples
roll up under the same phase tree every other report uses. All internal
timing uses the tracer clock (``time.perf_counter``); the profiler never
reads the wall clock.

Profiles are plain mergeable count tables (:class:`Profile`): worker
processes sample themselves and ship their profile in the telemetry
payload, and :meth:`Telemetry.absorb <repro.obs.telemetry.Telemetry.absorb>`
folds it into the parent's profile exactly like resource snapshots --
a ``--jobs N`` run produces one merged profile with the same schema as
a serial one.

The sampler is a context manager and must be entered with ``with`` (or
``ExitStack.enter_context``): the sampling thread starts on
``__enter__`` and is joined on ``__exit__``, so sampling can never
outlive the run it measures (reprolint RPR014 enforces the idiom,
mirroring RPR005/RPR007). One sampler may be active per process at a
time; its own cost is accounted in ``sample_seconds`` so overhead
(:attr:`Profile.overhead_ratio`) is part of every profile document and
can be gated in CI.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path

from repro.errors import ConfigurationError, PersistenceError
from repro.obs import tracing

__all__ = [
    "DEFAULT_HZ",
    "PROFILE_FORMAT_VERSION",
    "Profile",
    "StackSampler",
    "active_sampler",
    "load_profile",
]

#: Format marker for profile documents.
PROFILE_FORMAT_VERSION = 1
#: Document kind marker, so profile files are self-describing.
PROFILE_KIND = "repro-profile"

#: Default sampling rate. Prime, so the sampler cannot phase-lock with
#: periodic work that runs at a "round" frequency.
DEFAULT_HZ = 97.0

#: Stacks deeper than this are truncated at the outermost frames; the
#: innermost (hot) frames are always kept.
MAX_STACK_DEPTH = 128

#: One frame of a collapsed stack: (file, function, line).
FrameTuple = tuple[str, str, int]

#: Path markers used to shorten absolute filenames to package-relative
#: ones, so profiles diff cleanly across checkouts and machines.
_PATH_MARKERS = ("/site-packages/", "/src/", "/lib/python")


def _normalize_filename(path: str) -> str:
    """Shorten an absolute code path to a stable, checkout-free form."""
    for marker in _PATH_MARKERS:
        index = path.rfind(marker)
        if index >= 0:
            return path[index + len(marker):].lstrip("/")
    if path.startswith("<"):  # <string>, <frozen importlib._bootstrap>, ...
        return path
    parts = path.rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else path


class Profile:
    """A mergeable table of span-attributed collapsed stacks.

    Keys are ``(phase_path, frames)``: the open-span name path of the
    sampled thread (outermost first) and the collapsed stack (outermost
    first), each mapped to the number of samples that observed it.
    """

    def __init__(self, hz: float = DEFAULT_HZ):
        if hz <= 0.0:
            raise ConfigurationError(f"sampling rate must be positive, got {hz}")
        self.hz = float(hz)
        self.counts: dict[tuple[tuple[str, ...], tuple[FrameTuple, ...]], int] = {}
        #: Samples that captured a stack.
        self.samples = 0
        #: Sampling attempts where the target thread had no frame.
        self.dropped = 0
        #: Samples whose stack exceeded :data:`MAX_STACK_DEPTH`.
        self.truncated = 0
        #: Total time spent inside the sampling loop (tracer clock).
        self.sample_seconds = 0.0
        #: Wall time of the sampled window(s) (tracer clock deltas).
        self.wall_seconds = 0.0

    # -- recording -----------------------------------------------------------

    def record(
        self,
        phase: tuple[str, ...],
        frames: tuple[FrameTuple, ...],
        truncated: bool = False,
    ) -> None:
        key = (phase, frames)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.samples += 1
        if truncated:
            self.truncated += 1

    @property
    def overhead_ratio(self) -> float:
        """Fraction of the sampled wall clock spent taking samples."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.sample_seconds / self.wall_seconds

    def phase_totals(self) -> dict[str, int]:
        """Sample counts per phase path (names joined with ``/``)."""
        totals: dict[str, int] = {}
        for (phase, _frames), count in self.counts.items():
            key = "/".join(phase)
            totals[key] = totals.get(key, 0) + count
        return totals

    # -- merging -------------------------------------------------------------

    def merge(
        self,
        payload: "Profile | dict",
        prefix: tuple[str, ...] = (),
    ) -> None:
        """Fold another profile (or its document) into this one.

        Counts, sample/drop/truncation totals and clock accumulators
        add; the receiving profile's ``hz`` is kept. This is the same
        associative fold :meth:`Telemetry.absorb
        <repro.obs.telemetry.Telemetry.absorb>` applies to worker
        metrics, so merged parallel profiles equal the union of the
        per-worker ones.

        ``prefix`` prepends span names to every merged phase path --
        absorb passes the joining thread's open spans, so a worker's
        ``config/evaluate/fit`` stacks land under ``sweep/...`` exactly
        as :meth:`Tracer.attach <repro.obs.tracing.Tracer.attach>`
        nests worker span trees, and a ``--jobs N`` profile reads like
        a serial one.
        """
        other = payload if isinstance(payload, Profile) else Profile.from_dict(payload)
        prefix = tuple(prefix)
        for (phase, frames), count in other.counts.items():
            key = (prefix + phase, frames)
            self.counts[key] = self.counts.get(key, 0) + count
        self.samples += other.samples
        self.dropped += other.dropped
        self.truncated += other.truncated
        self.sample_seconds += other.sample_seconds
        self.wall_seconds += other.wall_seconds

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        stacks = [
            {
                "phase": list(phase),
                "frames": [list(frame) for frame in frames],
                "count": count,
            }
            for (phase, frames), count in sorted(self.counts.items())
        ]
        return {
            "version": PROFILE_FORMAT_VERSION,
            "kind": PROFILE_KIND,
            "hz": self.hz,
            "samples": self.samples,
            "dropped": self.dropped,
            "truncated": self.truncated,
            "sample_seconds": self.sample_seconds,
            "wall_seconds": self.wall_seconds,
            "overhead_ratio": self.overhead_ratio,
            "stacks": stacks,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Profile":
        profile = cls(hz=float(payload.get("hz", DEFAULT_HZ)))
        for stack in payload.get("stacks", ()):
            phase = tuple(str(name) for name in stack.get("phase", ()))
            frames = tuple(
                (str(file), str(func), int(line))
                for file, func, line in stack.get("frames", ())
            )
            profile.counts[(phase, frames)] = (
                profile.counts.get((phase, frames), 0) + int(stack.get("count", 0))
            )
        profile.samples = int(payload.get("samples", 0))
        profile.dropped = int(payload.get("dropped", 0))
        profile.truncated = int(payload.get("truncated", 0))
        profile.sample_seconds = float(payload.get("sample_seconds", 0.0))
        profile.wall_seconds = float(payload.get("wall_seconds", 0.0))
        return profile

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")
        return path


def load_profile(path: str | Path) -> dict:
    """Read back a profile document written by :meth:`Profile.save`.

    Also accepts a trace document carrying an embedded ``"profile"``
    section, so hotspot reports work on either artifact.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != PROFILE_KIND and "profile" in payload:
        payload = payload["profile"]
    if payload.get("kind") != PROFILE_KIND:
        raise PersistenceError(
            f"{path} is not a repro profile document (kind="
            f"{payload.get('kind')!r})"
        )
    version = payload.get("version")
    if version != PROFILE_FORMAT_VERSION:
        raise PersistenceError(f"unsupported profile file version: {version!r}")
    return payload


#: The process's active sampler, if any. Workers absorb their profile
#: payloads into the parent process, whose own sampler (registered
#: here) is the merge target; one sampler per process keeps attribution
#: unambiguous.
_ACTIVE_SAMPLER: "StackSampler | None" = None
_ACTIVE_LOCK = threading.Lock()


def active_sampler() -> "StackSampler | None":
    """The currently entered :class:`StackSampler`, if any."""
    return _ACTIVE_SAMPLER


def _release_sampler_after_fork() -> None:
    """Free the active-sampler slot in a forked child.

    A fork-started worker inherits the parent's registration, but not
    its sampling thread (fork copies only the calling thread) -- the
    inherited sampler is inert and would only block the worker from
    entering its own. The parent's registration is untouched.
    """
    global _ACTIVE_SAMPLER
    # Clears fork-inherited state in the child only; the parent's
    # registration is untouched.
    _ACTIVE_SAMPLER = None


os.register_at_fork(after_in_child=_release_sampler_after_fork)


class StackSampler:
    """Background-thread statistical sampler of one target thread.

    Parameters
    ----------
    hz:
        Sampling rate in samples per second.
    max_depth:
        Deepest stack kept per sample; deeper stacks drop their
        outermost frames and count in :attr:`Profile.truncated`.

    The thread that *enters* the sampler is the one profiled -- the
    sampling thread itself never appears in a stack. Spans opened by
    that thread (any tracer) attribute its samples via
    :func:`repro.obs.tracing.current_span_path`.
    """

    def __init__(self, hz: float = DEFAULT_HZ, max_depth: int = MAX_STACK_DEPTH):
        if hz <= 0.0:
            raise ConfigurationError(f"sampling rate must be positive, got {hz}")
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        self.hz = float(hz)
        self.interval = 1.0 / float(hz)
        self.max_depth = max_depth
        self.profile = Profile(hz=self.hz)
        self._target_ident: int | None = None
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._entered_clock: float | None = None

    @property
    def sampling(self) -> bool:
        """Whether the background thread is currently running."""
        return self._thread is not None

    def overhead_ratio(self) -> float:
        """Live overhead estimate, usable while still sampling.

        :attr:`Profile.overhead_ratio` only sees wall time banked on
        ``__exit__``; this adds the currently open window, so callers
        inside the sampled region (the bench suite recording its
        overhead counter) get a defined value.
        """
        wall = self.profile.wall_seconds
        if self._entered_clock is not None:
            wall += time.perf_counter() - self._entered_clock
        if wall <= 0.0:
            return 0.0
        return self.profile.sample_seconds / wall

    def snapshot(self) -> dict:
        """The profile document as of now, with the open window banked.

        Lets code *inside* the sampled region (the bench suite writing
        its profile companion) persist a document whose
        ``wall_seconds``/``overhead_ratio`` are defined, without waiting
        for ``__exit__``.
        """
        doc = self.profile.to_dict()
        if self._entered_clock is not None:
            wall = self.profile.wall_seconds + (
                time.perf_counter() - self._entered_clock
            )
            doc["wall_seconds"] = wall
            doc["overhead_ratio"] = (
                self.profile.sample_seconds / wall if wall > 0.0 else 0.0
            )
        return doc

    # -- lifecycle (context manager only; see RPR014) ----------------------

    def __enter__(self) -> "StackSampler":
        global _ACTIVE_SAMPLER
        if self._thread is not None:
            raise ConfigurationError("StackSampler is already sampling")
        with _ACTIVE_LOCK:
            if _ACTIVE_SAMPLER is not None:
                raise ConfigurationError(
                    "another StackSampler is already active in this process; "
                    "one sampler per process keeps attribution unambiguous"
                )
            # Per-process active-sampler slot; a worker's registration
            # never flows back to the parent.
            _ACTIVE_SAMPLER = self
        self._target_ident = threading.get_ident()
        self._stop_event.clear()
        self._entered_clock = time.perf_counter()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE_SAMPLER
        thread, self._thread = self._thread, None
        self._stop_event.set()
        if thread is not None:
            thread.join()
        if self._entered_clock is not None:
            self.profile.wall_seconds += time.perf_counter() - self._entered_clock
            self._entered_clock = None
        with _ACTIVE_LOCK:
            if _ACTIVE_SAMPLER is self:
                _ACTIVE_SAMPLER = None  # releases this process's own slot

    def _sample_loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.sample_once()

    # -- sampling ------------------------------------------------------------

    def sample_once(self) -> None:
        """Capture one stack of the target thread into the profile."""
        started = time.perf_counter()
        frame = sys._current_frames().get(self._target_ident)
        if frame is None:  # pragma: no cover - target thread already gone
            self.profile.dropped += 1
        else:
            frames: list[FrameTuple] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                frames.append(
                    (
                        _normalize_filename(code.co_filename),
                        code.co_name,
                        # f_lineno is None while the interpreter is
                        # between line events (3.11+); 0 keeps the
                        # frame sortable and means "line unknown".
                        frame.f_lineno or 0,
                    )
                )
                frame = frame.f_back
                depth += 1
            truncated = frame is not None
            frames.reverse()  # outermost first, like collapsed-stack files
            phase = tracing.current_span_path(self._target_ident)
            self.profile.record(phase, tuple(frames), truncated=truncated)
        self.profile.sample_seconds += time.perf_counter() - started
