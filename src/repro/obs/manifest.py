"""Run manifests: what exactly produced a set of numbers.

Comparative studies live or die on attributable measurement -- a MAP or
TTime figure is only meaningful alongside the seed, dataset
configuration, model grid and software version that produced it. A
:class:`RunManifest` captures that provenance once at run start, is
embedded in trace files and sweep JSON, and makes every saved result
self-describing.
"""

from __future__ import annotations

import os
import platform as _platform
import sys
import time
from datetime import datetime, timezone

__all__ = ["RunManifest"]


def _package_version() -> str:
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - only during partial imports
        return "unknown"


class RunManifest:
    """Provenance record for one experiment run."""

    def __init__(
        self,
        seed: int | None = None,
        dataset: dict | None = None,
        models: list[str] | tuple[str, ...] = (),
        command: str | None = None,
        package_version: str = "",
        python_version: str = "",
        platform: str = "",
        started_at: str = "",
        wall_seconds: float | None = None,
        cpu_count: int | None = None,
        extra: dict | None = None,
    ):
        self.seed = seed
        self.dataset = dict(dataset or {})
        self.models = list(models)
        self.command = command
        self.package_version = package_version
        self.python_version = python_version
        self.platform = platform
        self.started_at = started_at
        self.wall_seconds = wall_seconds
        self.cpu_count = cpu_count
        self.extra = dict(extra or {})
        self._start_clock: float | None = None

    @classmethod
    def create(
        cls,
        seed: int | None = None,
        dataset: dict | None = None,
        models: list[str] | tuple[str, ...] = (),
        command: str | None = None,
        **extra: object,
    ) -> "RunManifest":
        """Stamp a manifest with the current environment and wall clock."""
        manifest = cls(
            seed=seed,
            dataset=dataset,
            models=models,
            command=command,
            package_version=_package_version(),
            python_version=sys.version.split()[0],
            platform=_platform.platform(),
            started_at=datetime.now(  # repro: allow[RPR003] -- provenance stamp: manifests record when a run happened
                timezone.utc
            ).isoformat(timespec="seconds"),
            cpu_count=os.cpu_count(),
            extra=dict(extra),
        )
        manifest._start_clock = time.perf_counter()
        return manifest

    def finish(self) -> "RunManifest":
        """Record the run's total wall-clock seconds."""
        if self._start_clock is not None:
            self.wall_seconds = time.perf_counter() - self._start_clock
        return self

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "seed": self.seed,
            "dataset": dict(self.dataset),
            "models": list(self.models),
            "command": self.command,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "platform": self.platform,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "cpu_count": self.cpu_count,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        return cls(
            seed=payload.get("seed"),
            dataset=payload.get("dataset"),
            models=payload.get("models", ()),
            command=payload.get("command"),
            package_version=payload.get("package_version", ""),
            python_version=payload.get("python_version", ""),
            platform=payload.get("platform", ""),
            started_at=payload.get("started_at", ""),
            wall_seconds=payload.get("wall_seconds"),
            cpu_count=payload.get("cpu_count"),
            extra=payload.get("extra"),
        )
