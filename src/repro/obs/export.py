"""Export saved telemetry into external tool formats.

Two converters, both pure functions of a saved trace document (the JSON
written by ``--trace-out`` / :meth:`repro.obs.telemetry.Telemetry.save_trace`):

* :func:`chrome_trace_events` turns the span tree into Chrome
  trace-event JSON (the array-of-events form), loadable in Perfetto or
  ``chrome://tracing``. Spans carrying ``worker`` attribution (stamped
  by :meth:`Telemetry.absorb` when a process-pool sweep joins worker
  telemetry) are mapped onto per-worker ``tid`` lanes, so a ``--jobs 4``
  sweep renders as four swimlanes of cells under the main lane's sweep
  span.
* :func:`prometheus_exposition` renders a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot in the Prometheus
  text exposition format, so any run's counters/gauges/histograms can be
  scraped, pushed to a gateway, or diffed between runs with plain text
  tools.
* :func:`collapsed_stacks` and :func:`speedscope_document` convert a
  stack-profile document (``repro profile``, see
  :mod:`repro.obs.profiler`) into the two de-facto flamegraph exchange
  formats: Brendan Gregg's collapsed-stack lines (``flamegraph.pl``,
  ``inferno``) and speedscope's JSON file format
  (https://www.speedscope.app). Span attribution is preserved -- the
  phase path prefixes each collapsed stack, and speedscope gets one
  sampled profile per phase.

Spans record durations, not absolute start times (wall-clock reads are
confined to event records by RPR003), so the chrome trace *reconstructs*
a timeline: within each lane, sibling spans are laid out back-to-back
from their parent's start. Nesting and per-phase widths are exact; gaps
between parallel cells are not -- the lanes show where the time went,
which is what straggler hunting needs.
"""

from __future__ import annotations

import json
import re

from repro.obs.tracing import Span

__all__ = [
    "chrome_trace_events",
    "collapsed_stacks",
    "format_chrome_trace",
    "prometheus_exposition",
    "speedscope_document",
]

#: pid used for every emitted trace event (one process, many lanes).
_TRACE_PID = 1

_MICROSECONDS = 1e6


def _span_tid(span: Span, inherited: int) -> int:
    """Lane for a span: worker attribution wins, else the parent's lane."""
    worker = span.attributes.get("worker")
    if isinstance(worker, int) and worker >= 0:
        return worker + 1  # lane 0 is the main process
    return inherited


def _span_args(span: Span) -> dict:
    args: dict[str, object] = dict(span.attributes)
    for key, value in span.resources.items():
        args[key] = value
    return args


def chrome_trace_events(trace: dict) -> list[dict]:
    """Convert a trace document into a list of Chrome trace events.

    Returns complete-duration (``"ph": "X"``) events plus the metadata
    events naming the process and each lane. Timestamps are synthetic
    microsecond offsets (see module docstring); durations are exact.
    """
    spans = [Span.from_dict(payload) for payload in trace.get("spans", [])]
    events: list[dict] = []
    #: Next free microsecond offset per lane, for spans that *enter* a
    #: lane (worker roots); nested same-lane children nest in their
    #: parent's interval instead.
    cursors: dict[int, float] = {}
    used_tids: set[int] = set()

    def walk(span: Span, tid: int, start: float) -> float:
        lane = _span_tid(span, tid)
        if lane != tid:
            # Entering a new lane: allocate from that lane's own cursor.
            start = cursors.get(lane, 0.0)
        duration = (span.duration or 0.0) * _MICROSECONDS
        used_tids.add(lane)
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": round(start, 3),
                "dur": round(duration, 3),
                "pid": _TRACE_PID,
                "tid": lane,
                "args": _span_args(span),
            }
        )
        child_start = start
        for child in span.children:
            child_end = walk(child, lane, child_start)
            child_lane = _span_tid(child, lane)
            if child_lane == lane:
                child_start = child_end
        end = start + duration
        cursors[lane] = max(cursors.get(lane, 0.0), end)
        return end

    cursor = 0.0
    for root in spans:
        cursor = walk(root, 0, cursor)

    metadata: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for tid in sorted(used_tids):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": "main" if tid == 0 else f"worker-{tid - 1}"},
            }
        )
        metadata.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    return metadata + events


def format_chrome_trace(trace: dict) -> str:
    """The chrome-trace JSON array as text, ready to load in Perfetto."""
    return json.dumps(chrome_trace_events(trace), sort_keys=True)


_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str, prefix: str) -> str:
    flat = _METRIC_NAME_RE.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_exposition(metrics: dict, prefix: str = "repro") -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Counters and gauges map directly; histograms (streaming
    count/total/min/max summaries) expose ``_count``/``_sum`` as a
    summary family plus ``_min``/``_max`` gauges. Never-written gauges
    and never-observed histograms are omitted -- exposition only states
    what was measured. Output is sorted by metric name, so two runs
    diff cleanly.
    """
    lines: list[str] = []
    for name in sorted(metrics):
        payload = metrics[name]
        kind = payload.get("type")
        exposed = _prometheus_name(name, prefix)
        if kind == "counter":
            lines.append(f"# TYPE {exposed} counter")
            lines.append(f"{exposed} {_format_value(payload.get('value', 0))}")
        elif kind == "gauge":
            if payload.get("value") is None:
                continue
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {_format_value(payload['value'])}")
        elif kind == "histogram":
            if not payload.get("count"):
                # Created but never observed: skip the whole family,
                # like unwritten gauges -- a `_count 0` / `_sum 0` pair
                # would claim a measurement that never happened.
                continue
            lines.append(f"# TYPE {exposed} summary")
            lines.append(f"{exposed}_count {_format_value(payload.get('count', 0))}")
            lines.append(f"{exposed}_sum {_format_value(payload.get('total', 0.0))}")
            for bound in ("min", "max"):
                value = payload.get(bound)
                if value is not None:
                    lines.append(f"# TYPE {exposed}_{bound} gauge")
                    lines.append(f"{exposed}_{bound} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _frame_label(frame: list | tuple) -> str:
    """Render one profile frame as ``func (file:line)``."""
    file, func, line = frame
    return f"{func} ({file}:{line})"


def collapsed_stacks(profile: dict) -> str:
    """Render a profile document as Brendan Gregg collapsed-stack lines.

    One line per distinct stack: frames joined with ``;`` followed by
    the sample count, ready for ``flamegraph.pl`` or ``inferno``. The
    span phase path prefixes the frames, so flamegraphs group by phase
    first and frames roll up under the span that ran them. Lines are
    sorted, so two exports of the same profile diff cleanly.
    """
    lines: list[str] = []
    for stack in profile.get("stacks", ()):
        parts = [str(name) for name in stack.get("phase", ())]
        parts.extend(_frame_label(frame) for frame in stack.get("frames", ()))
        if not parts:
            continue
        lines.append(f"{';'.join(parts)} {int(stack.get('count', 0))}")
    lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(profile: dict, name: str = "repro profile") -> dict:
    """Convert a profile document into speedscope's JSON file format.

    Emits one ``sampled``-type profile per distinct span phase path
    (plus one for unattributed stacks), all sharing one deduplicated
    frame table -- open the file at https://www.speedscope.app and flip
    between phases to see each span's flamegraph. Weights are sample
    counts (``unit: "none"``): statistical profiles measure relative
    time, and counts divide by ``hz`` for seconds.
    """
    frame_index: dict[tuple[str, str, int], int] = {}
    shared_frames: list[dict] = []
    by_phase: dict[tuple[str, ...], list[tuple[list[int], int]]] = {}
    for stack in profile.get("stacks", ()):
        phase = tuple(str(part) for part in stack.get("phase", ()))
        indexes: list[int] = []
        for frame in stack.get("frames", ()):
            file, func, line = str(frame[0]), str(frame[1]), int(frame[2])
            key = (file, func, line)
            if key not in frame_index:
                frame_index[key] = len(shared_frames)
                shared_frames.append({"name": func, "file": file, "line": line})
            indexes.append(frame_index[key])
        by_phase.setdefault(phase, []).append((indexes, int(stack.get("count", 0))))

    profiles: list[dict] = []
    for phase in sorted(by_phase):
        stacks = by_phase[phase]
        total = sum(count for _indexes, count in stacks)
        profiles.append(
            {
                "type": "sampled",
                "name": "/".join(phase) if phase else "(no span)",
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": [indexes for indexes, _count in stacks],
                "weights": [count for _indexes, count in stacks],
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro",
        "shared": {"frames": shared_frames},
        "profiles": profiles,
        "activeProfileIndex": 0,
    }
