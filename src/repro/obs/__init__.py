"""repro.obs -- observability for the sweep pipeline.

Four primitives, one facade:

* :mod:`repro.obs.tracing`   -- hierarchical wall-clock spans
  (:class:`Tracer`), with :class:`SpanStopwatch` keeping the legacy
  :class:`~repro.eval.timing.Stopwatch` API;
* :mod:`repro.obs.metrics`   -- counters / gauges / histograms in a
  :class:`MetricsRegistry`;
* :mod:`repro.obs.events`    -- structured JSON-lines event logging
  with pluggable sinks;
* :mod:`repro.obs.manifest`  -- :class:`RunManifest` provenance records
  (seed, dataset, grid, version, wall clock);
* :mod:`repro.obs.telemetry` -- the :class:`Telemetry` facade the
  pipeline is instrumented against, and its zero-overhead
  :data:`NULL_TELEMETRY` twin.

Everything is pure stdlib; with telemetry disabled the pipeline runs
the exact same code path with plain stopwatches.
"""

from repro.obs.events import EventLog, JsonLinesSink, MemorySink, Sink
from repro.obs.manifest import RunManifest
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import format_timing_breakdown
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    load_trace,
)
from repro.obs.tracing import Span, SpanStopwatch, Tracer

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RunManifest",
    "Sink",
    "Span",
    "SpanStopwatch",
    "Telemetry",
    "Tracer",
    "format_timing_breakdown",
    "load_trace",
]
