"""repro.obs -- observability for the sweep pipeline.

Six primitives, one facade:

* :mod:`repro.obs.tracing`   -- hierarchical wall-clock spans
  (:class:`Tracer`), with :class:`SpanStopwatch` keeping the legacy
  :class:`~repro.eval.timing.Stopwatch` API;
* :mod:`repro.obs.metrics`   -- counters / gauges / histograms in a
  :class:`MetricsRegistry`;
* :mod:`repro.obs.events`    -- structured JSON-lines event logging
  with pluggable sinks;
* :mod:`repro.obs.manifest`  -- :class:`RunManifest` provenance records
  (seed, dataset, grid, version, wall clock);
* :mod:`repro.obs.resources` -- :class:`ResourceSampler` background RSS
  / CPU / allocation sampling that attaches cost measurements to spans;
* :mod:`repro.obs.baseline`  -- durable ``BENCH_*.json``
  :class:`Baseline` records and noise-aware
  :func:`compare_baselines` regression detection;
* :mod:`repro.obs.progress`  -- :class:`SweepProgressTracker` live
  sweep state (done/total, worker occupancy, EWMA rate, ETA) computed
  from the event stream, plus the console progress sinks and the
  ``repro monitor`` snapshot loaders;
* :mod:`repro.obs.export`    -- Chrome trace-event
  (:func:`chrome_trace_events`, Perfetto-loadable) and Prometheus text
  exposition (:func:`prometheus_exposition`) exporters;
* :mod:`repro.obs.telemetry` -- the :class:`Telemetry` facade the
  pipeline is instrumented against, and its zero-overhead
  :data:`NULL_TELEMETRY` twin.

Everything is pure stdlib; with telemetry disabled the pipeline runs
the exact same code path with plain stopwatches.
"""

from repro.obs.baseline import (
    Baseline,
    BaselineComparison,
    MetricDelta,
    SampleStats,
    baseline_path,
    compare_baselines,
    format_baseline,
    format_comparison,
    load_baseline,
)
from repro.obs.events import EventLog, JsonLinesSink, MemorySink, Sink
from repro.obs.export import (
    chrome_trace_events,
    format_chrome_trace,
    prometheus_exposition,
)
from repro.obs.manifest import RunManifest
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import (
    ProgressLineSink,
    SweepProgressTracker,
    console_progress_sink,
    format_snapshot,
    load_progress,
)
from repro.obs.report import (
    format_critical_path,
    format_resource_breakdown,
    format_timing_breakdown,
)
from repro.obs.resources import ResourceSampler, ResourceWatch, read_rss_bytes
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    load_trace,
)
from repro.obs.tracing import Span, SpanStopwatch, Tracer

__all__ = [
    "Baseline",
    "BaselineComparison",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MemorySink",
    "MetricDelta",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "ProgressLineSink",
    "ResourceSampler",
    "ResourceWatch",
    "RunManifest",
    "SampleStats",
    "Sink",
    "Span",
    "SpanStopwatch",
    "SweepProgressTracker",
    "Telemetry",
    "Tracer",
    "baseline_path",
    "chrome_trace_events",
    "compare_baselines",
    "console_progress_sink",
    "format_baseline",
    "format_chrome_trace",
    "format_comparison",
    "format_critical_path",
    "format_resource_breakdown",
    "format_snapshot",
    "format_timing_breakdown",
    "load_baseline",
    "load_progress",
    "load_trace",
    "prometheus_exposition",
    "read_rss_bytes",
]
