"""repro.obs -- observability for the sweep pipeline.

Six primitives, one facade:

* :mod:`repro.obs.tracing`   -- hierarchical wall-clock spans
  (:class:`Tracer`), with :class:`SpanStopwatch` keeping the legacy
  :class:`~repro.eval.timing.Stopwatch` API;
* :mod:`repro.obs.metrics`   -- counters / gauges / histograms in a
  :class:`MetricsRegistry`;
* :mod:`repro.obs.events`    -- structured JSON-lines event logging
  with pluggable sinks;
* :mod:`repro.obs.manifest`  -- :class:`RunManifest` provenance records
  (seed, dataset, grid, version, wall clock);
* :mod:`repro.obs.resources` -- :class:`ResourceSampler` background RSS
  / CPU / allocation sampling that attaches cost measurements to spans;
* :mod:`repro.obs.baseline`  -- durable ``BENCH_*.json``
  :class:`Baseline` records and noise-aware
  :func:`compare_baselines` regression detection;
* :mod:`repro.obs.progress`  -- :class:`SweepProgressTracker` live
  sweep state (done/total, worker occupancy, EWMA rate, ETA) computed
  from the event stream, plus the console progress sinks and the
  ``repro monitor`` snapshot loaders;
* :mod:`repro.obs.export`    -- Chrome trace-event
  (:func:`chrome_trace_events`, Perfetto-loadable), Prometheus text
  exposition (:func:`prometheus_exposition`) and flamegraph
  (:func:`collapsed_stacks`, :func:`speedscope_document`) exporters;
* :mod:`repro.obs.profiler`  -- :class:`StackSampler` statistical
  stack sampling with span attribution, mergeable :class:`Profile`
  documents, hotspot reports and profile diffing;
* :mod:`repro.obs.telemetry` -- the :class:`Telemetry` facade the
  pipeline is instrumented against, and its zero-overhead
  :data:`NULL_TELEMETRY` twin.

Everything is pure stdlib; with telemetry disabled the pipeline runs
the exact same code path with plain stopwatches.
"""

from repro.obs.baseline import (
    Baseline,
    BaselineComparison,
    MetricDelta,
    SampleStats,
    baseline_path,
    compare_baselines,
    format_baseline,
    format_comparison,
    load_baseline,
)
from repro.obs.events import EventLog, JsonLinesSink, MemorySink, Sink
from repro.obs.export import (
    chrome_trace_events,
    collapsed_stacks,
    format_chrome_trace,
    prometheus_exposition,
    speedscope_document,
)
from repro.obs.manifest import RunManifest
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import (
    DEFAULT_HZ,
    Profile,
    StackSampler,
    active_sampler,
    load_profile,
)
from repro.obs.progress import (
    ProgressLineSink,
    SweepProgressTracker,
    console_progress_sink,
    format_snapshot,
    load_progress,
)
from repro.obs.report import (
    diff_profiles,
    format_critical_path,
    format_hotspots,
    format_profile_diff,
    format_resource_breakdown,
    format_timing_breakdown,
)
from repro.obs.resources import ResourceSampler, ResourceWatch, read_rss_bytes
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    load_trace,
)
from repro.obs.tracing import Span, SpanStopwatch, Tracer, current_span_path

__all__ = [
    "Baseline",
    "BaselineComparison",
    "Counter",
    "DEFAULT_HZ",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MemorySink",
    "MetricDelta",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Profile",
    "ProgressLineSink",
    "ResourceSampler",
    "ResourceWatch",
    "RunManifest",
    "SampleStats",
    "Sink",
    "Span",
    "SpanStopwatch",
    "StackSampler",
    "SweepProgressTracker",
    "Telemetry",
    "Tracer",
    "active_sampler",
    "baseline_path",
    "chrome_trace_events",
    "collapsed_stacks",
    "compare_baselines",
    "console_progress_sink",
    "current_span_path",
    "diff_profiles",
    "format_baseline",
    "format_chrome_trace",
    "format_comparison",
    "format_critical_path",
    "format_hotspots",
    "format_profile_diff",
    "format_resource_breakdown",
    "format_snapshot",
    "format_timing_breakdown",
    "load_baseline",
    "load_profile",
    "load_progress",
    "load_trace",
    "prometheus_exposition",
    "read_rss_bytes",
    "speedscope_document",
]
