"""Structured JSON-lines event logging with pluggable sinks.

An :class:`EventLog` turns instrumented call sites into a stream of
flat, JSON-serialisable records (``{"event": ..., "ts": ..., "seq":
..., **fields}``) and fans them out to any number of sinks. A sink is
just a callable taking the record dict, so tests capture with
:class:`MemorySink`, the CLI writes JSON lines with
:class:`JsonLinesSink`, and the sweep runner's ``progress=True``
console output is itself a sink over the same stream.

Every record carries a per-log monotonic sequence number (``seq``)
alongside its wall-clock ``ts``: wall clocks tie (and can step
backwards) across process boundaries, so records joined from worker
telemetry are totally ordered by ``(seq)`` in the parent's stream --
:meth:`EventLog.forward` re-stamps a parent sequence number at merge
time, preserving the worker's own ordinal as ``worker_seq``.
"""

from __future__ import annotations

import json
import sys
import time
from collections.abc import Callable
from pathlib import Path
from typing import IO

__all__ = ["EventLog", "JsonLinesSink", "MemorySink", "Sink"]

#: A sink consumes one JSON-serialisable event record.
Sink = Callable[[dict], None]


class EventLog:
    """Emits structured event records to registered sinks."""

    def __init__(self, sinks: tuple[Sink, ...] | list[Sink] = ()):
        self._sinks: list[Sink] = list(sinks)
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def add_sink(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    def emit(self, event: str, **fields: object) -> dict:
        """Build an event record and deliver it to every sink."""
        record: dict[str, object] = {
            "event": event,
            "ts": time.time(),  # repro: allow[RPR003] -- event records carry real wall-clock timestamps by design
            "seq": self._next_seq(),
            **fields,
        }
        for sink in self._sinks:
            sink(record)
        return record

    def forward(self, record: dict) -> dict:
        """Deliver an already-built record to every sink.

        Used when joining worker telemetry: the record keeps its
        original timestamp and fields, but its ``seq`` is re-stamped
        from *this* log's counter (the worker's ordinal survives as
        ``worker_seq``) so the merged stream stays totally ordered even
        when wall-clocks tie across processes.
        """
        if "seq" in record:
            record.setdefault("worker_seq", record["seq"])
        record["seq"] = self._next_seq()
        for sink in self._sinks:
            sink(record)
        return record


class MemorySink:
    """Collects records in a list; the test / in-process sink."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def __call__(self, record: dict) -> None:
        self.records.append(record)

    def of(self, event: str) -> list[dict]:
        """The captured records of one event type, in emit order."""
        return [r for r in self.records if r.get("event") == event]


class JsonLinesSink:
    """Writes one JSON object per line to a file path or open stream.

    Pass ``"-"`` (or an already-open stream) to log to stderr; a path
    opens (and truncates) the file, and :meth:`close` releases it.
    """

    def __init__(self, target: str | Path | IO[str] = "-"):
        if isinstance(target, (str, Path)) and str(target) != "-":
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: IO[str] = path.open("w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sys.stderr if str(target) == "-" else target
            self._owns_stream = False

    def __call__(self, record: dict) -> None:
        self._stream.write(json.dumps(record, sort_keys=True, default=str) + "\n")

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()
