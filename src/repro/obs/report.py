"""Render saved traces as human-readable reports.

``repro report --artifact timing-breakdown --trace trace.json`` uses
:func:`format_timing_breakdown` to turn a trace document into a
per-phase tree: sibling spans with the same name are merged into one
line with a call count and summed duration, so a 20-user run shows
``profiles ×20`` rather than twenty lines. The footer restates the
paper's two efficiency measures (TTime = fit + profiles, ETime = rank)
as rolled up from the span tree.

``--artifact resource-breakdown`` renders the same merged tree with
the memory and CPU columns recorded by a
:class:`~repro.obs.resources.ResourceSampler` (``--profile-resources``
runs): per-phase CPU seconds and peak RSS, the dimension behind the
paper's PLSA-memory exclusion.
"""

from __future__ import annotations

from repro.obs.tracing import Span

__all__ = [
    "critical_path",
    "format_critical_path",
    "format_resource_breakdown",
    "format_timing_breakdown",
]

#: Span names whose rollup forms the paper's TTime measure.
TRAINING_PHASES = ("fit", "profiles")
#: Span name whose rollup forms the paper's ETime measure.
TESTING_PHASE = "rank"


def _merge_siblings(spans: list[Span]) -> list[tuple[Span, int, float, list[Span]]]:
    """Group same-named siblings: (exemplar, count, total, all children)."""
    order: list[str] = []
    groups: dict[str, list[Span]] = {}
    for span in spans:
        if span.name not in groups:
            order.append(span.name)
            groups[span.name] = []
        groups[span.name].append(span)
    merged = []
    for name in order:
        members = groups[name]
        total = sum(s.duration or 0.0 for s in members)
        children = [c for s in members for c in s.children]
        merged.append((members[0], len(members), total, children))
    return merged


def _render(spans: list[Span], indent: int, lines: list[str]) -> None:
    for exemplar, count, total, children in _merge_siblings(spans):
        attrs = ""
        if count == 1 and exemplar.attributes:
            attrs = " [" + " ".join(
                f"{k}={v}" for k, v in exemplar.attributes.items()
            ) + "]"
        calls = f" x{count}" if count > 1 else ""
        label = f"{'  ' * indent}{exemplar.name}{attrs}{calls}"
        lines.append(f"{label:<48}{total:>10.3f}s")
        _render(children, indent + 1, lines)


def _manifest_line(trace: dict, lines: list[str]) -> None:
    manifest = trace.get("manifest")
    if not manifest:
        return
    bits = []
    if manifest.get("command"):
        bits.append(str(manifest["command"]))
    if manifest.get("seed") is not None:
        bits.append(f"seed={manifest['seed']}")
    if manifest.get("package_version"):
        bits.append(f"repro {manifest['package_version']}")
    if manifest.get("started_at"):
        bits.append(f"started {manifest['started_at']}")
    if bits:
        lines.append("run: " + ", ".join(bits))


def format_timing_breakdown(trace: dict) -> str:
    """Per-phase timing tree plus TTime/ETime rollups for one trace."""
    spans = [Span.from_dict(p) for p in trace.get("spans", [])]
    lines = ["timing breakdown (wall-clock seconds)"]
    _manifest_line(trace, lines)

    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    _render(spans, 0, lines)

    training = sum(sum(root.total(p) for root in spans) for p in TRAINING_PHASES)
    testing = sum(root.total(TESTING_PHASE) for root in spans)
    lines.append("")
    lines.append(f"TTime (fit + profiles) = {training:.3f}s")
    lines.append(f"ETime (rank)           = {testing:.3f}s")
    return "\n".join(lines)


def _peak_rss(span: Span) -> float | None:
    """Deep maximum ``peak_rss_bytes`` over a span and its descendants."""
    candidates = [value for c in span.children if (value := _peak_rss(c)) is not None]
    own = span.resources.get("peak_rss_bytes")
    if own is not None:
        candidates.append(float(own))
    return max(candidates) if candidates else None


def _render_resources(spans: list[Span], indent: int, lines: list[str]) -> None:
    for exemplar, count, total, children in _merge_siblings(spans):
        members = [exemplar] if count == 1 else None
        calls = f" x{count}" if count > 1 else ""
        label = f"{'  ' * indent}{exemplar.name}{calls}"
        # Merged siblings: wall and CPU add up, RSS peaks take the max.
        group = [s for s in spans if s.name == exemplar.name] if members is None else members
        cpu_values = [s.resources.get("cpu_seconds") for s in group]
        cpu = (
            sum(float(v) for v in cpu_values if v is not None)
            if any(v is not None for v in cpu_values)
            else None
        )
        rss_values = [value for s in group if (value := _peak_rss(s)) is not None]
        rss = max(rss_values) if rss_values else None
        cpu_cell = f"{cpu:>9.3f}s" if cpu is not None else f"{'-':>10}"
        rss_cell = f"{rss / (1024 * 1024):>9.1f}M" if rss is not None else f"{'-':>10}"
        lines.append(f"{label:<48}{total:>10.3f}s{cpu_cell}{rss_cell}")
        _render_resources(children, indent + 1, lines)


def format_resource_breakdown(trace: dict) -> str:
    """The merged span tree with wall, CPU and peak-RSS columns."""
    spans = [Span.from_dict(p) for p in trace.get("spans", [])]
    lines = ["resource breakdown (wall / cpu / peak RSS)"]
    _manifest_line(trace, lines)

    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    lines.append(f"{'span':<48}{'wall':>11}{'cpu':>10}{'rss':>10}")
    _render_resources(spans, 0, lines)

    overall = [value for s in spans if (value := _peak_rss(s)) is not None]
    lines.append("")
    if overall:
        lines.append(f"peak RSS = {max(overall) / (1024 * 1024):.1f} MiB")
    else:
        lines.append(
            "(no resource samples recorded; rerun with --profile-resources)"
        )
    return "\n".join(lines)


# -- critical path and straggler analysis -----------------------------------


def _child_seconds(span: Span) -> float:
    return sum(child.duration or 0.0 for child in span.children)


def _self_seconds(span: Span) -> float:
    """A span's own time: duration minus child time, floored at zero.

    Absorbed worker subtrees can overlap their parent's wall clock, so
    child time may exceed the parent duration; negative self time means
    "fully accounted for by (parallel) children" and renders as zero.
    """
    return max(0.0, (span.duration or 0.0) - _child_seconds(span))


def _find_named(spans: list[Span], name: str) -> Span | None:
    for span in spans:
        if span.name == name:
            return span
        found = _find_named(span.children, name)
        if found is not None:
            return found
    return None


def critical_path(spans: list[Span]) -> list[Span]:
    """The serial critical chain: at each level, the longest child.

    For a sweep trace this descends sweep -> straggler cell -> its
    slowest phase -> ...: the chain of spans the run's makespan was
    actually waiting on, which is where optimisation effort pays.
    """
    if not spans:
        return []
    current = max(spans, key=lambda s: s.duration or 0.0)
    path = [current]
    while current.children:
        current = max(current.children, key=lambda s: s.duration or 0.0)
        path.append(current)
    return path


def _cell_identity(span: Span) -> str:
    label = span.attributes.get("label", span.name)
    source = span.attributes.get("source")
    identity = f"{label} on {source}" if source is not None else str(label)
    worker = span.attributes.get("worker")
    if worker is not None:
        identity += f"  [worker {worker}"
        attempt = span.attributes.get("attempt")
        if attempt is not None:
            identity += f", attempt {attempt}"
        identity += "]"
    return identity


def _collect_named(spans: list[Span], name: str, found: list[Span]) -> None:
    for span in spans:
        if span.name == name:
            found.append(span)
        _collect_named(span.children, name, found)


def _phase_rollup(spans: list[Span], rollup: dict[str, list[float]]) -> None:
    for span in spans:
        entry = rollup.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.duration or 0.0
        entry[2] += _self_seconds(span)
        _phase_rollup(span.children, rollup)


def format_critical_path(trace: dict, top: int = 5) -> str:
    """Critical path, phase self-times, stragglers, parallel efficiency.

    The sweep's cells are independent, so its *serial* critical path is
    the chain sweep -> slowest cell -> that cell's slowest phase; the
    straggler table ranks every evaluated cell by duration with its
    (model, source, params) identity and worker/attempt attribution; and
    parallel efficiency is busy time over ``workers x makespan`` -- the
    fraction of the pool that was doing cell work rather than waiting.
    """
    spans = [Span.from_dict(payload) for payload in trace.get("spans", [])]
    lines = ["critical path (serial chain through the sweep)"]
    _manifest_line(trace, lines)
    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    for depth, span in enumerate(critical_path(spans)):
        attrs = ""
        if span.attributes:
            attrs = " [" + " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            ) + "]"
        label = f"{'  ' * depth}{span.name}{attrs}"
        lines.append(
            f"{label:<56}{span.duration or 0.0:>9.3f}s  self {_self_seconds(span):.3f}s"
        )

    rollup: dict[str, list[float]] = {}
    _phase_rollup(spans, rollup)
    lines.append("")
    lines.append("per-phase totals (self vs child time)")
    lines.append(f"{'phase':<28}{'calls':>6}{'total':>11}{'self':>11}{'child':>11}")
    for name in sorted(rollup, key=lambda n: -rollup[n][1]):
        count, total, self_time = rollup[name]
        child = max(0.0, total - self_time)
        lines.append(
            f"{name:<28}{int(count):>6}{total:>10.3f}s{self_time:>10.3f}s{child:>10.3f}s"
        )

    cells: list[Span] = []
    _collect_named(spans, "config", cells)
    if cells:
        stragglers = sorted(cells, key=lambda s: -(s.duration or 0.0))[:top]
        lines.append("")
        lines.append(f"top {len(stragglers)} straggler cells")
        for rank, span in enumerate(stragglers, start=1):
            lines.append(
                f"{rank:>3}. {_cell_identity(span):<56}{span.duration or 0.0:>9.3f}s"
            )

    sweep = _find_named(spans, "sweep")
    if sweep is not None and cells:
        makespan = sweep.duration or 0.0
        busy = sum(span.duration or 0.0 for span in cells)
        jobs = sweep.attributes.get("jobs")
        workers = int(jobs) if isinstance(jobs, (int, float)) else 1
        lines.append("")
        if makespan > 0 and workers > 0:
            efficiency = busy / (workers * makespan)
            lines.append(
                f"parallel efficiency: busy {busy:.3f}s / "
                f"({workers} worker(s) x {makespan:.3f}s makespan) = "
                f"{100.0 * efficiency:.1f}%"
            )
        else:
            lines.append("parallel efficiency: undefined (zero makespan)")
    return "\n".join(lines)
