"""Render saved traces as human-readable reports.

``repro report --artifact timing-breakdown --trace trace.json`` uses
:func:`format_timing_breakdown` to turn a trace document into a
per-phase tree: sibling spans with the same name are merged into one
line with a call count and summed duration, so a 20-user run shows
``profiles ×20`` rather than twenty lines. The footer restates the
paper's two efficiency measures (TTime = fit + profiles, ETime = rank)
as rolled up from the span tree.
"""

from __future__ import annotations

from repro.obs.tracing import Span

__all__ = ["format_timing_breakdown"]

#: Span names whose rollup forms the paper's TTime measure.
TRAINING_PHASES = ("fit", "profiles")
#: Span name whose rollup forms the paper's ETime measure.
TESTING_PHASE = "rank"


def _merge_siblings(spans: list[Span]) -> list[tuple[Span, int, float, list[Span]]]:
    """Group same-named siblings: (exemplar, count, total, all children)."""
    order: list[str] = []
    groups: dict[str, list[Span]] = {}
    for span in spans:
        if span.name not in groups:
            order.append(span.name)
            groups[span.name] = []
        groups[span.name].append(span)
    merged = []
    for name in order:
        members = groups[name]
        total = sum(s.duration or 0.0 for s in members)
        children = [c for s in members for c in s.children]
        merged.append((members[0], len(members), total, children))
    return merged


def _render(spans: list[Span], indent: int, lines: list[str]) -> None:
    for exemplar, count, total, children in _merge_siblings(spans):
        attrs = ""
        if count == 1 and exemplar.attributes:
            attrs = " [" + " ".join(
                f"{k}={v}" for k, v in exemplar.attributes.items()
            ) + "]"
        calls = f" x{count}" if count > 1 else ""
        label = f"{'  ' * indent}{exemplar.name}{attrs}{calls}"
        lines.append(f"{label:<48}{total:>10.3f}s")
        _render(children, indent + 1, lines)


def format_timing_breakdown(trace: dict) -> str:
    """Per-phase timing tree plus TTime/ETime rollups for one trace."""
    spans = [Span.from_dict(p) for p in trace.get("spans", [])]
    lines = ["timing breakdown (wall-clock seconds)"]

    manifest = trace.get("manifest")
    if manifest:
        bits = []
        if manifest.get("command"):
            bits.append(str(manifest["command"]))
        if manifest.get("seed") is not None:
            bits.append(f"seed={manifest['seed']}")
        if manifest.get("package_version"):
            bits.append(f"repro {manifest['package_version']}")
        if manifest.get("started_at"):
            bits.append(f"started {manifest['started_at']}")
        if bits:
            lines.append("run: " + ", ".join(bits))

    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    _render(spans, 0, lines)

    training = sum(sum(root.total(p) for root in spans) for p in TRAINING_PHASES)
    testing = sum(root.total(TESTING_PHASE) for root in spans)
    lines.append("")
    lines.append(f"TTime (fit + profiles) = {training:.3f}s")
    lines.append(f"ETime (rank)           = {testing:.3f}s")
    return "\n".join(lines)
