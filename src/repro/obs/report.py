"""Render saved traces as human-readable reports.

``repro report --artifact timing-breakdown --trace trace.json`` uses
:func:`format_timing_breakdown` to turn a trace document into a
per-phase tree: sibling spans with the same name are merged into one
line with a call count and summed duration, so a 20-user run shows
``profiles ×20`` rather than twenty lines. The footer restates the
paper's two efficiency measures (TTime = fit + profiles, ETime = rank)
as rolled up from the span tree.

``--artifact resource-breakdown`` renders the same merged tree with
the memory and CPU columns recorded by a
:class:`~repro.obs.resources.ResourceSampler` (``--profile-resources``
runs): per-phase CPU seconds and peak RSS, the dimension behind the
paper's PLSA-memory exclusion.
"""

from __future__ import annotations

from repro.obs.tracing import Span

__all__ = [
    "critical_path",
    "diff_profiles",
    "format_critical_path",
    "format_hotspots",
    "format_profile_diff",
    "format_resource_breakdown",
    "format_timing_breakdown",
]

#: Span names whose rollup forms the paper's TTime measure.
TRAINING_PHASES = ("fit", "profiles")
#: Span name whose rollup forms the paper's ETime measure.
TESTING_PHASE = "rank"


def _merge_siblings(spans: list[Span]) -> list[tuple[Span, int, float, list[Span]]]:
    """Group same-named siblings: (exemplar, count, total, all children)."""
    order: list[str] = []
    groups: dict[str, list[Span]] = {}
    for span in spans:
        if span.name not in groups:
            order.append(span.name)
            groups[span.name] = []
        groups[span.name].append(span)
    merged = []
    for name in order:
        members = groups[name]
        total = sum(s.duration or 0.0 for s in members)
        children = [c for s in members for c in s.children]
        merged.append((members[0], len(members), total, children))
    return merged


def _render(spans: list[Span], indent: int, lines: list[str]) -> None:
    for exemplar, count, total, children in _merge_siblings(spans):
        attrs = ""
        if count == 1 and exemplar.attributes:
            attrs = " [" + " ".join(
                f"{k}={v}" for k, v in exemplar.attributes.items()
            ) + "]"
        calls = f" x{count}" if count > 1 else ""
        label = f"{'  ' * indent}{exemplar.name}{attrs}{calls}"
        lines.append(f"{label:<48}{total:>10.3f}s")
        _render(children, indent + 1, lines)


def _manifest_line(trace: dict, lines: list[str]) -> None:
    manifest = trace.get("manifest")
    if not manifest:
        return
    bits = []
    if manifest.get("command"):
        bits.append(str(manifest["command"]))
    if manifest.get("seed") is not None:
        bits.append(f"seed={manifest['seed']}")
    if manifest.get("package_version"):
        bits.append(f"repro {manifest['package_version']}")
    if manifest.get("started_at"):
        bits.append(f"started {manifest['started_at']}")
    if bits:
        lines.append("run: " + ", ".join(bits))


def format_timing_breakdown(trace: dict) -> str:
    """Per-phase timing tree plus TTime/ETime rollups for one trace."""
    spans = [Span.from_dict(p) for p in trace.get("spans", [])]
    lines = ["timing breakdown (wall-clock seconds)"]
    _manifest_line(trace, lines)

    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    _render(spans, 0, lines)

    training = sum(sum(root.total(p) for root in spans) for p in TRAINING_PHASES)
    testing = sum(root.total(TESTING_PHASE) for root in spans)
    lines.append("")
    lines.append(f"TTime (fit + profiles) = {training:.3f}s")
    lines.append(f"ETime (rank)           = {testing:.3f}s")
    return "\n".join(lines)


def _peak_rss(span: Span) -> float | None:
    """Deep maximum ``peak_rss_bytes`` over a span and its descendants."""
    candidates = [value for c in span.children if (value := _peak_rss(c)) is not None]
    own = span.resources.get("peak_rss_bytes")
    if own is not None:
        candidates.append(float(own))
    return max(candidates) if candidates else None


def _render_resources(spans: list[Span], indent: int, lines: list[str]) -> None:
    for exemplar, count, total, children in _merge_siblings(spans):
        members = [exemplar] if count == 1 else None
        calls = f" x{count}" if count > 1 else ""
        label = f"{'  ' * indent}{exemplar.name}{calls}"
        # Merged siblings: wall and CPU add up, RSS peaks take the max.
        group = [s for s in spans if s.name == exemplar.name] if members is None else members
        cpu_values = [s.resources.get("cpu_seconds") for s in group]
        cpu = (
            sum(float(v) for v in cpu_values if v is not None)
            if any(v is not None for v in cpu_values)
            else None
        )
        rss_values = [value for s in group if (value := _peak_rss(s)) is not None]
        rss = max(rss_values) if rss_values else None
        cpu_cell = f"{cpu:>9.3f}s" if cpu is not None else f"{'-':>10}"
        rss_cell = f"{rss / (1024 * 1024):>9.1f}M" if rss is not None else f"{'-':>10}"
        lines.append(f"{label:<48}{total:>10.3f}s{cpu_cell}{rss_cell}")
        _render_resources(children, indent + 1, lines)


def format_resource_breakdown(trace: dict) -> str:
    """The merged span tree with wall, CPU and peak-RSS columns."""
    spans = [Span.from_dict(p) for p in trace.get("spans", [])]
    lines = ["resource breakdown (wall / cpu / peak RSS)"]
    _manifest_line(trace, lines)

    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    lines.append(f"{'span':<48}{'wall':>11}{'cpu':>10}{'rss':>10}")
    _render_resources(spans, 0, lines)

    overall = [value for s in spans if (value := _peak_rss(s)) is not None]
    lines.append("")
    if overall:
        lines.append(f"peak RSS = {max(overall) / (1024 * 1024):.1f} MiB")
    else:
        lines.append(
            "(no resource samples recorded; rerun with --profile-resources)"
        )
    return "\n".join(lines)


# -- critical path and straggler analysis -----------------------------------


def _child_seconds(span: Span) -> float:
    return sum(child.duration or 0.0 for child in span.children)


def _self_seconds(span: Span) -> float:
    """A span's own time: duration minus child time, floored at zero.

    Absorbed worker subtrees can overlap their parent's wall clock, so
    child time may exceed the parent duration; negative self time means
    "fully accounted for by (parallel) children" and renders as zero.
    """
    return max(0.0, (span.duration or 0.0) - _child_seconds(span))


def _find_named(spans: list[Span], name: str) -> Span | None:
    for span in spans:
        if span.name == name:
            return span
        found = _find_named(span.children, name)
        if found is not None:
            return found
    return None


def critical_path(spans: list[Span]) -> list[Span]:
    """The serial critical chain: at each level, the longest child.

    For a sweep trace this descends sweep -> straggler cell -> its
    slowest phase -> ...: the chain of spans the run's makespan was
    actually waiting on, which is where optimisation effort pays.
    """
    if not spans:
        return []
    current = max(spans, key=lambda s: s.duration or 0.0)
    path = [current]
    while current.children:
        current = max(current.children, key=lambda s: s.duration or 0.0)
        path.append(current)
    return path


def _cell_identity(span: Span) -> str:
    label = span.attributes.get("label", span.name)
    source = span.attributes.get("source")
    identity = f"{label} on {source}" if source is not None else str(label)
    worker = span.attributes.get("worker")
    if worker is not None:
        identity += f"  [worker {worker}"
        attempt = span.attributes.get("attempt")
        if attempt is not None:
            identity += f", attempt {attempt}"
        identity += "]"
    return identity


def _collect_named(spans: list[Span], name: str, found: list[Span]) -> None:
    for span in spans:
        if span.name == name:
            found.append(span)
        _collect_named(span.children, name, found)


def _phase_rollup(spans: list[Span], rollup: dict[str, list[float]]) -> None:
    for span in spans:
        entry = rollup.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.duration or 0.0
        entry[2] += _self_seconds(span)
        _phase_rollup(span.children, rollup)


def format_critical_path(trace: dict, top: int = 5) -> str:
    """Critical path, phase self-times, stragglers, parallel efficiency.

    The sweep's cells are independent, so its *serial* critical path is
    the chain sweep -> slowest cell -> that cell's slowest phase; the
    straggler table ranks every evaluated cell by duration with its
    (model, source, params) identity and worker/attempt attribution; and
    parallel efficiency is busy time over ``workers x makespan`` -- the
    fraction of the pool that was doing cell work rather than waiting.
    """
    spans = [Span.from_dict(payload) for payload in trace.get("spans", [])]
    lines = ["critical path (serial chain through the sweep)"]
    _manifest_line(trace, lines)
    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    for depth, span in enumerate(critical_path(spans)):
        attrs = ""
        if span.attributes:
            attrs = " [" + " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            ) + "]"
        label = f"{'  ' * depth}{span.name}{attrs}"
        lines.append(
            f"{label:<56}{span.duration or 0.0:>9.3f}s  self {_self_seconds(span):.3f}s"
        )

    rollup: dict[str, list[float]] = {}
    _phase_rollup(spans, rollup)
    lines.append("")
    lines.append("per-phase totals (self vs child time)")
    lines.append(f"{'phase':<28}{'calls':>6}{'total':>11}{'self':>11}{'child':>11}")
    for name in sorted(rollup, key=lambda n: -rollup[n][1]):
        count, total, self_time = rollup[name]
        child = max(0.0, total - self_time)
        lines.append(
            f"{name:<28}{int(count):>6}{total:>10.3f}s{self_time:>10.3f}s{child:>10.3f}s"
        )

    cells: list[Span] = []
    _collect_named(spans, "config", cells)
    if cells:
        stragglers = sorted(cells, key=lambda s: -(s.duration or 0.0))[:top]
        lines.append("")
        lines.append(f"top {len(stragglers)} straggler cells")
        for rank, span in enumerate(stragglers, start=1):
            lines.append(
                f"{rank:>3}. {_cell_identity(span):<56}{span.duration or 0.0:>9.3f}s"
            )

    sweep = _find_named(spans, "sweep")
    if sweep is not None and cells:
        makespan = sweep.duration or 0.0
        busy = sum(span.duration or 0.0 for span in cells)
        jobs = sweep.attributes.get("jobs")
        workers = int(jobs) if isinstance(jobs, (int, float)) else 1
        lines.append("")
        if makespan > 0 and workers > 0:
            efficiency = busy / (workers * makespan)
            lines.append(
                f"parallel efficiency: busy {busy:.3f}s / "
                f"({workers} worker(s) x {makespan:.3f}s makespan) = "
                f"{100.0 * efficiency:.1f}%"
            )
        else:
            lines.append("parallel efficiency: undefined (zero makespan)")
    return "\n".join(lines)


# -- stack-profile hotspots and diffing --------------------------------------


def _hotspot_rollup(
    stacks: list[dict],
) -> dict[tuple[str, str], tuple[int, int]]:
    """Per-function (self, cumulative) sample counts for one stack set.

    Functions are keyed ``(file, func)`` -- line numbers vary sample to
    sample inside one hot loop, so they aggregate away here. Self counts
    the samples where the function was innermost; cumulative counts the
    samples where it appears anywhere on the stack (once per sample,
    recursion notwithstanding).
    """
    rollup: dict[tuple[str, str], list[int]] = {}
    for stack in stacks:
        frames = stack.get("frames", ())
        count = int(stack.get("count", 0))
        if not frames or count <= 0:
            continue
        on_stack = {(str(f[0]), str(f[1])) for f in frames}
        for key in on_stack:
            entry = rollup.setdefault(key, [0, 0])
            entry[1] += count
        leaf = frames[-1]
        rollup[(str(leaf[0]), str(leaf[1]))][0] += count
    return {key: (entry[0], entry[1]) for key, entry in rollup.items()}


def _stacks_by_phase(profile: dict) -> dict[str, list[dict]]:
    by_phase: dict[str, list[dict]] = {}
    for stack in profile.get("stacks", ()):
        key = "/".join(str(part) for part in stack.get("phase", ())) or "(no span)"
        by_phase.setdefault(key, []).append(stack)
    return by_phase


def format_hotspots(profile: dict, top: int = 10) -> str:
    """Top-``top`` hottest functions per span phase, self vs cumulative.

    Phases are the span paths the sampler attributed stacks to (e.g.
    ``sweep/config/evaluate/fit``), ordered by sample count; within each
    phase, functions rank by self samples (the frames actually on-CPU),
    with cumulative counts alongside so callers of hot helpers are still
    visible. Percentages are of the phase's samples.
    """
    lines = ["hotspots (stack samples per function)"]
    hz = profile.get("hz")
    samples = int(profile.get("samples", 0))
    header = f"{samples} samples"
    if hz:
        header += f" @ {hz:g} Hz"
    overhead = profile.get("overhead_ratio")
    if overhead is not None:
        header += f", sampler overhead {100.0 * float(overhead):.2f}%"
    lines.append(header)
    if not samples:
        lines.append("(no samples recorded)")
        return "\n".join(lines)

    by_phase = _stacks_by_phase(profile)
    phase_totals = {
        phase: sum(int(s.get("count", 0)) for s in stacks)
        for phase, stacks in by_phase.items()
    }
    for phase in sorted(by_phase, key=lambda p: -phase_totals[p]):
        total = phase_totals[phase]
        lines.append("")
        lines.append(f"phase {phase}  ({total} samples)")
        lines.append(f"{'function':<56}{'self':>8}{'self%':>8}{'cum':>8}{'cum%':>8}")
        rollup = _hotspot_rollup(by_phase[phase])
        ranked = sorted(rollup.items(), key=lambda kv: (-kv[1][0], -kv[1][1], kv[0]))
        for (file, func), (self_count, cum_count) in ranked[:top]:
            label = f"{func} ({file})"
            if len(label) > 55:
                label = label[:52] + "..."
            lines.append(
                f"{label:<56}{self_count:>8}"
                f"{100.0 * self_count / total:>7.1f}%"
                f"{cum_count:>8}{100.0 * cum_count / total:>7.1f}%"
            )
    return "\n".join(lines)


def diff_profiles(before: dict, after: dict) -> list[dict]:
    """Per-function self-share deltas between two profile documents.

    Sample counts are not comparable across runs (different durations,
    rates), so each function's self samples are normalised to a *share*
    of its profile's total samples; the delta is expressed in percentage
    points. Returns one record per function seen in either profile,
    sorted by absolute delta (largest movement first):
    ``{"file", "func", "before_share", "after_share", "delta"}``.
    """
    rollups = []
    for profile in (before, after):
        rollup = _hotspot_rollup(list(profile.get("stacks", ())))
        total = sum(self_count for self_count, _cum in rollup.values())
        shares = {
            key: self_count / total if total else 0.0
            for key, (self_count, _cum) in rollup.items()
        }
        rollups.append(shares)
    before_shares, after_shares = rollups
    records = []
    for key in sorted(set(before_shares) | set(after_shares)):
        b = before_shares.get(key, 0.0)
        a = after_shares.get(key, 0.0)
        records.append(
            {
                "file": key[0],
                "func": key[1],
                "before_share": b,
                "after_share": a,
                "delta": a - b,
            }
        )
    records.sort(key=lambda r: (-abs(r["delta"]), r["file"], r["func"]))
    return records


def format_profile_diff(before: dict, after: dict, top: int = 10) -> str:
    """Human-readable hotspot movement between two profiles.

    The upcoming vectorization PRs use this to *prove* where time moved:
    a successful rewrite shows the old hot function's self share falling
    and the replacement's rising.
    """
    records = diff_profiles(before, after)
    lines = [
        "profile diff (self-time share, percentage points)",
        f"before: {int(before.get('samples', 0))} samples, "
        f"after: {int(after.get('samples', 0))} samples",
    ]
    moved = [r for r in records if abs(r["delta"]) > 1e-9]
    if not moved:
        lines.append("(no hotspot movement)")
        return "\n".join(lines)
    lines.append(f"{'function':<56}{'before':>9}{'after':>9}{'delta':>9}")
    for record in moved[:top]:
        label = f"{record['func']} ({record['file']})"
        if len(label) > 55:
            label = label[:52] + "..."
        lines.append(
            f"{label:<56}"
            f"{100.0 * record['before_share']:>8.1f}%"
            f"{100.0 * record['after_share']:>8.1f}%"
            f"{100.0 * record['delta']:>+8.1f}pp"
        )
    return "\n".join(lines)
