"""The telemetry facade instrumented code talks to.

A :class:`Telemetry` bundles the four observability primitives -- a
:class:`~repro.obs.tracing.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry`, an
:class:`~repro.obs.events.EventLog` and an optional
:class:`~repro.obs.manifest.RunManifest` -- behind a handful of cheap
methods, so the pipeline and sweep runner instrument themselves against
one object instead of four.

:data:`NULL_TELEMETRY` is the disabled twin: same surface, zero
recording, plain :class:`~repro.eval.timing.Stopwatch` timers. Code
paths are identical with telemetry on or off, so enabling tracing can
never change a MAP value.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from repro.errors import PersistenceError
from repro.eval.timing import Stopwatch
from repro.obs.events import EventLog
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import Profile, active_sampler
from repro.obs.resources import ResourceSampler
from repro.obs.tracing import Span, Tracer, current_span_path

__all__ = ["NULL_TELEMETRY", "NullTelemetry", "Telemetry", "load_trace"]

#: Format marker for trace files.
TRACE_FORMAT_VERSION = 1


class Telemetry:
    """Tracer + metrics + events + manifest behind one interface."""

    enabled = True

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        manifest: RunManifest | None = None,
        resources: ResourceSampler | None = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer(resources=resources)
        if resources is not None:
            self.tracer.resources = resources
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        self.manifest = manifest
        #: Absorbed worker stack profiles, when no process-wide sampler
        #: is active to receive them (see :meth:`absorb`).
        self.profile: Profile | None = None

    @property
    def resources(self) -> ResourceSampler | None:
        """The sampler feeding span resource windows, if any."""
        return self.tracer.resources

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attributes: object):
        return self.tracer.span(name, **attributes)

    def stopwatch(self, name: str, **attributes: object) -> Stopwatch:
        return self.tracer.stopwatch(name, **attributes)

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def emit(self, event: str, **fields: object) -> None:
        self.events.emit(event, **fields)

    def absorb(self, payload: dict) -> None:
        """Merge a worker's telemetry payload into this stream.

        ``payload`` carries up to four keys: ``spans`` (a list of span
        dicts, re-attached to the current span), ``events`` (records
        forwarded to the sinks with their original timestamps),
        ``metrics`` (a registry snapshot, folded in via
        :meth:`~repro.obs.metrics.MetricsRegistry.merge`) and
        ``profile`` (a worker's stack-profile document, folded into the
        process's active :class:`~repro.obs.profiler.StackSampler` when
        one is running -- the ``repro profile`` wrapper -- else into
        this telemetry's own :attr:`profile` accumulator, so ``--jobs
        N`` yields one merged profile with the serial schema).

        When the executor stamped ``worker``/``attempt`` attribution
        onto the payload (the process pool does, at join time), it is
        preserved: attached root spans gain ``worker``/``attempt``
        attributes (the chrome-trace exporter maps these to tid lanes)
        and forwarded event records gain the same fields, so a merged
        stream still says which worker did what on which try.
        """
        worker = payload.get("worker")
        attempt = payload.get("attempt")
        for span_payload in payload.get("spans", ()):
            span = Span.from_dict(span_payload)
            if worker is not None:
                span.attributes.setdefault("worker", worker)
                if attempt is not None:
                    span.attributes.setdefault("attempt", attempt)
            self.tracer.attach(span)
        for record in payload.get("events", ()):
            if worker is not None:
                record.setdefault("worker", worker)
                if attempt is not None:
                    record.setdefault("attempt", attempt)
            self.events.forward(record)
        self.metrics.merge(payload.get("metrics", {}))
        profile_payload = payload.get("profile")
        if profile_payload:
            # Prefix worker stacks with the joining thread's open spans
            # (the sweep span, typically) so merged phase paths read
            # exactly like a serial run's -- the attach() analogue.
            prefix = current_span_path()
            sampler = active_sampler()
            if sampler is not None:
                sampler.profile.merge(profile_payload, prefix=prefix)
            else:
                if self.profile is None:
                    self.profile = Profile(
                        hz=float(profile_payload.get("hz", 0.0) or 1.0)
                    )
                self.profile.merge(profile_payload, prefix=prefix)

    # -- persistence --------------------------------------------------------

    def trace_payload(self) -> dict[str, object]:
        """The JSON-ready trace document: manifest + spans + metrics.

        When worker profiles were absorbed without an active sampler,
        the merged profile rides along under ``"profile"``, so
        ``repro export profile`` / ``report --artifact hotspots`` can
        read it straight from the trace file.
        """
        payload: dict[str, object] = {
            "version": TRACE_FORMAT_VERSION,
            "manifest": self.manifest.to_dict() if self.manifest else None,
            "spans": self.tracer.to_payload(),
            "metrics": self.metrics.snapshot(),
        }
        if self.profile is not None:
            payload["profile"] = self.profile.to_dict()
        return payload

    def save_trace(self, path: str | Path) -> Path:
        """Write the trace document to ``path`` as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.trace_payload(), indent=1, sort_keys=True))
        return path


class NullTelemetry(Telemetry):
    """Disabled telemetry: the same surface, none of the bookkeeping."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    @contextmanager
    def span(self, name: str, **attributes: object):
        yield None

    def stopwatch(self, name: str, **attributes: object) -> Stopwatch:
        return Stopwatch()

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def emit(self, event: str, **fields: object) -> None:
        pass

    def absorb(self, payload: dict) -> None:
        pass


#: Shared disabled instance; instrumented code uses it when no
#: telemetry was supplied.
NULL_TELEMETRY = NullTelemetry()


def load_trace(path: str | Path) -> dict:
    """Read back a trace document written by :meth:`Telemetry.save_trace`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise PersistenceError(f"unsupported trace file version: {version!r}")
    return payload
