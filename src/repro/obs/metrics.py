"""Counters, gauges and histograms for run-level measurement.

The sweep pipeline wants to answer quantitative questions that spans
cannot: how many documents were tokenized, how often the doc cache hit,
how many Gibbs iterations a topic model burned, how many users were
skipped as ineligible. A :class:`MetricsRegistry` hands out named
instruments on first use (so instrumented code never has to declare
them up front) and snapshots to a JSON-ready dict for the trace file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValidationError(f"counters only increase; got increment {n}")
        self.value += n

    def to_dict(self) -> dict[str, object]:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-written value (e.g. current log-likelihood)."""

    value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict[str, object]:
        # A never-written gauge serialises with an explicit marker: the
        # snapshot stays schema-valid JSON (value is null, not NaN or a
        # missing key) and merge/compare consumers can distinguish "was
        # written to None-like zero" from "never written".
        return {"type": "gauge", "value": self.value, "written": self.value is not None}


@dataclass
class Histogram:
    """Streaming summary (count/total/min/max/mean) of observations."""

    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


@dataclass
class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind is a bug and raises.
    """

    _instruments: dict[str, Counter | Gauge | Histogram] = field(default_factory=dict)

    def _get(self, name: str, kind: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-ready view of every instrument, sorted by name."""
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }

    def merge(self, snapshot: dict[str, dict[str, object]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, histograms combine their streaming summaries, and
        gauges keep the incoming value (last writer wins) -- the
        semantics a parent process wants when joining worker telemetry.
        """
        for name, payload in snapshot.items():
            kind = payload.get("type")
            if kind == "counter":
                self.counter(name).inc(int(payload.get("value", 0)))
            elif kind == "gauge":
                value = payload.get("value")
                if value is not None:
                    self.gauge(name).set(float(value))
            elif kind == "histogram":
                histogram = self.histogram(name)
                count = int(payload.get("count", 0))
                if count:
                    histogram.count += count
                    histogram.total += float(payload.get("total", 0.0))
                    low, high = payload.get("min"), payload.get("max")
                    if low is not None:
                        histogram.minimum = (
                            float(low)
                            if histogram.minimum is None
                            else min(histogram.minimum, float(low))
                        )
                    if high is not None:
                        histogram.maximum = (
                            float(high)
                            if histogram.maximum is None
                            else max(histogram.maximum, float(high))
                        )
            else:
                raise ValidationError(f"metric {name!r} has unknown type {kind!r}")
