"""Hierarchical wall-clock spans.

A :class:`Span` is one timed region of a run -- it has a name, optional
attributes, a duration and child spans. A :class:`Tracer` maintains the
active span stack so nested ``with tracer.span("fit")`` blocks build a
tree that mirrors the pipeline's call structure, exactly the per-phase
decomposition the paper's Figure 7 (TTime/ETime) needs.

:class:`SpanStopwatch` keeps the legacy
:class:`~repro.eval.timing.Stopwatch` API (``measure()`` / ``elapsed`` /
``reset``) while recording every measured segment as a span, so the
pipeline's TTime/ETime bookkeeping and the trace tree are fed by the
*same* clock readings: the sum of a phase's span durations equals the
stopwatch's ``elapsed`` exactly.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.eval.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.resources import ResourceSampler

__all__ = ["Span", "SpanStopwatch", "Tracer", "current_span_path"]


#: Open-span stacks per thread, across every live tracer. The stack
#: profiler (:mod:`repro.obs.profiler`) reads this from its sampling
#: thread to tag each captured stack with the innermost active span --
#: attribution must work whichever Telemetry instance opened the span
#: (the bench suite builds one per trial), so the registry is keyed by
#: thread, not by tracer. List append/pop are atomic under the GIL, so
#: the sampling thread sees a consistent (at worst one-span-stale)
#: snapshot without locking on the hot path.
_THREAD_SPANS: dict[int, list[str]] = {}


def _reset_spans_after_fork() -> None:
    """Drop inherited span stacks in a forked child.

    A fork-started worker inherits the parent's registry, where the
    forking thread's ident maps to the parent's open spans (``sweep``
    etc.); left in place they would prefix every stack the worker's own
    profiler captures. The child's tracers open their spans fresh.
    """
    _THREAD_SPANS.clear()


os.register_at_fork(after_in_child=_reset_spans_after_fork)


def current_span_path(thread_id: int | None = None) -> tuple[str, ...]:
    """Names of the open spans on ``thread_id``, outermost first.

    Defaults to the calling thread. Returns ``()`` when the thread has
    no open span (or never traced at all).
    """
    if thread_id is None:
        thread_id = threading.get_ident()
    stack = _THREAD_SPANS.get(thread_id)
    return tuple(stack) if stack else ()


@dataclass
class Span:
    """One timed region: name, attributes, duration, children.

    When the tracer has a :class:`~repro.obs.resources.ResourceSampler`
    attached, ``resources`` carries the span's cost measurements
    (``peak_rss_bytes``, ``cpu_seconds`` and opt-in
    ``alloc_peak_bytes``); it stays empty otherwise and is omitted from
    the serialised form.
    """

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    duration: float | None = None
    children: list["Span"] = field(default_factory=list)
    resources: dict[str, float] = field(default_factory=dict)

    def total(self, name: str) -> float:
        """Summed duration of this span's descendants named ``name``.

        The span itself is included when its own name matches.
        """
        acc = 0.0
        if self.name == name and self.duration is not None:
            acc += self.duration
        for child in self.children:
            acc += child.total(name)
        return acc

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {"name": self.name}
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.duration is not None:
            payload["duration"] = self.duration
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        if self.resources:
            payload["resources"] = dict(self.resources)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            attributes=dict(payload.get("attributes", {})),
            duration=payload.get("duration"),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
            resources=dict(payload.get("resources", {})),
        )


class Tracer:
    """Builds span trees from nested ``span(...)`` context managers.

    Spans opened while another span is active become its children;
    spans opened at the top level collect in :attr:`roots`.
    """

    def __init__(self, resources: "ResourceSampler | None" = None) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        #: Optional sampler; when set, every span gets a resource watch.
        self.resources = resources

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a timed span; nested spans attach as children."""
        span = Span(name=name, attributes=attributes)
        parent = self.current
        (parent.children if parent is not None else self.roots).append(span)
        self._stack.append(span)
        thread_spans = _THREAD_SPANS.setdefault(threading.get_ident(), [])  # repro: allow[RPR012] -- per-thread span registry; worker-local state that never crosses the process boundary
        thread_spans.append(name)
        watch = self.resources.watch() if self.resources is not None else None
        start = time.perf_counter()
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - start
            if watch is not None:
                span.resources.update(watch.stop())
            self._stack.pop()
            thread_spans.pop()

    def stopwatch(self, name: str, **attributes: object) -> "SpanStopwatch":
        """A Stopwatch-compatible timer whose segments become spans."""
        return SpanStopwatch(self, name, **attributes)

    def attach(self, span: Span) -> None:
        """Graft an externally-recorded span tree into this tracer.

        Sweep workers trace their cells in their own process; at join
        time the parent re-attaches the deserialised trees (as children
        of the currently open span, or as roots), so a parallel run's
        trace has the same shape as a serial one.
        """
        parent = self.current
        (parent.children if parent is not None else self.roots).append(span)

    def total(self, name: str) -> float:
        """Summed duration of every finished span named ``name``."""
        return sum(root.total(name) for root in self.roots)

    def to_payload(self) -> list[dict]:
        """JSON-ready list of root span trees."""
        return [root.to_dict() for root in self.roots]


class SpanStopwatch(Stopwatch):
    """Drop-in :class:`Stopwatch` that records each segment as a span.

    ``elapsed`` accumulates the *span* durations, so trace rollups and
    the legacy TTime/ETime totals are identical by construction.
    """

    def __init__(self, tracer: Tracer, name: str, **attributes: object):
        super().__init__()
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    @contextmanager
    def measure(self) -> Iterator[None]:
        span: Span | None = None
        try:
            with self._tracer.span(self._name, **self._attributes) as span:
                yield
        finally:
            if span is not None and span.duration is not None:
                self._elapsed += span.duration
