"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
catching unrelated bugs. Types that replaced historical builtin raises
(:class:`ValidationError`, :class:`PersistenceError`) also inherit the
builtin they replaced, so pre-taxonomy ``except ValueError`` call sites
keep working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """A single parameter or argument failed validation.

    Inherits :class:`ValueError` so historical ``except ValueError``
    call sites (and tests) keep working, while new code can catch the
    :class:`ReproError` family. Reprolint rule RPR004 enforces that the
    library raises taxonomy types instead of bare builtins.
    """


class PersistenceError(ReproError, ValueError):
    """A saved artifact (sweep JSON, trace, journal) is unusable.

    Raised for unsupported format versions, torn/foreign journal files
    and writes to closed journals. Inherits :class:`ValueError` for
    backwards compatibility with callers that caught the old raises.
    """


class ConfigurationError(ReproError):
    """An invalid parameter or parameter combination was supplied.

    The paper (Section 4) declares several configuration combinations
    invalid — e.g. Jaccard similarity with TF weights, or TF-IDF weights
    for character n-grams. Constructing such a configuration raises this
    error instead of silently producing meaningless results.
    """


class InjectedFaultError(ReproError):
    """A deliberately injected fault fired (see :mod:`repro.faults`).

    Raised by ``raise``-kind fault specs so chaos tests and CI can tell
    an exercised failure path from a genuine defect. Quarantine records
    carry this class name in their error taxonomy field.
    """


class WorkerCrashError(ReproError):
    """A sweep worker process died mid-cell (non-zero exit, OOM kill).

    The supervisor raises/records this on behalf of the dead worker --
    the worker itself never gets to raise anything.
    """


class CellTimeoutError(ReproError):
    """A sweep cell exceeded its wall-clock budget and was terminated."""


class NotFittedError(ReproError):
    """A model was used before it was trained/fitted."""


class EmptyCorpusError(ReproError):
    """An operation that requires at least one document got none."""


class DataGenerationError(ReproError):
    """The synthetic Twitter substrate could not satisfy a request."""
