"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or parameter combination was supplied.

    The paper (Section 4) declares several configuration combinations
    invalid — e.g. Jaccard similarity with TF weights, or TF-IDF weights
    for character n-grams. Constructing such a configuration raises this
    error instead of silently producing meaningless results.
    """


class NotFittedError(ReproError):
    """A model was used before it was trained/fitted."""


class EmptyCorpusError(ReproError):
    """An operation that requires at least one document got none."""


class DataGenerationError(ReproError):
    """The synthetic Twitter substrate could not satisfy a request."""
