"""Determinism rules: RPR001 seeded-rng, RPR002 ordered-accumulation,
RPR003 wall-clock discipline.

All three protect the same property: a sweep re-run with the same
configuration must be bit-identical, whether it runs serially, on a
process pool, or resumed from a journal. The paper's robustness claims
(MAP deviations in Tables 4-5) are only meaningful on top of that.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import FileContext, Rule, Violation, register_rule

__all__ = ["OrderedAccumulationRule", "SeededRngRule", "WallClockRule"]

#: RNG factories that take the seed as their first argument / keyword.
_SEEDED_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}

#: Legacy module-level RNG calls: they draw from hidden global state, so
#: results depend on everything else that touched that state first.
_GLOBAL_STATE_RNG = {
    f"numpy.random.{fn}"
    for fn in (
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "choice", "shuffle", "permutation", "normal", "uniform", "beta",
        "binomial", "poisson", "exponential", "standard_normal",
    )
} | {
    f"random.{fn}"
    for fn in (
        "seed", "random", "randint", "randrange", "getrandbits", "choice",
        "choices", "shuffle", "sample", "uniform", "gauss", "betavariate",
        "expovariate", "normalvariate", "triangular", "vonmisesvariate",
    )
}


@register_rule
class SeededRngRule(Rule):
    id = "RPR001"
    name = "seeded-rng"
    summary = "RNG construction without an explicit seed, or global-state RNG calls"
    invariant = (
        "every random draw in the library is reproducible: generators are "
        "constructed from an explicit seed or passed in by the caller"
    )
    library_only = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved in _SEEDED_FACTORIES:
                seeded = bool(node.args) or any(
                    kw.arg == "seed" for kw in node.keywords
                )
                if not seeded:
                    yield ctx.violation(
                        self, node,
                        f"{resolved}() without an explicit seed: pass a seed "
                        "or accept a caller-supplied numpy Generator",
                    )
            elif resolved in _GLOBAL_STATE_RNG:
                yield ctx.violation(
                    self, node,
                    f"{resolved}() draws from hidden global RNG state; "
                    "thread a seeded numpy Generator through instead",
                )


def _is_set_expr(node: ast.expr | None) -> bool:
    """Set displays, set comprehensions and set()/frozenset() calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_values_call(node: ast.expr | None) -> bool:
    """A bare ``<expr>.values()`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "values"
        and not node.args
        and not node.keywords
    )


def _contains(tree: ast.AST, predicate) -> bool:
    return any(predicate(sub) for sub in ast.walk(tree))


@register_rule
class OrderedAccumulationRule(Rule):
    id = "RPR002"
    name = "ordered-accumulation"
    summary = "float accumulation over a set or over unsorted dict values"
    invariant = (
        "float summation happens in one deterministic order -- summing an "
        "unordered iterable makes the total depend on iteration order "
        "(the MAP-over-restored-per-user-AP class of bug)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.For):
                yield from self._check_loop(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Violation]:
        if isinstance(node.func, ast.Name) and node.func.id == "sum" and node.args:
            arg = node.args[0]
            if _is_set_expr(arg):
                yield ctx.violation(
                    self, node,
                    "sum() over a set: iteration order is unspecified, so a "
                    "float total is not reproducible -- sort first",
                )
            elif _is_values_call(arg):
                yield ctx.violation(
                    self, node,
                    "sum() over dict.values(): the total inherits insertion "
                    "order -- sum over sorted keys instead",
                )
            elif isinstance(arg, (ast.GeneratorExp, ast.ListComp)) and _is_set_expr(
                arg.generators[0].iter
            ):
                yield ctx.violation(
                    self, node,
                    "sum() over a comprehension iterating a set: order is "
                    "unspecified, so a float total is not reproducible",
                )
        # The historical bug: MAP computed straight off dict values whose
        # order came from wherever the dict was deserialised.
        name = node.func.id if isinstance(node.func, ast.Name) else (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        if name == "mean_average_precision":
            for arg in node.args:
                if _contains(arg, _is_values_call) and not _contains(
                    arg,
                    lambda sub: isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "sorted",
                ):
                    yield ctx.violation(
                        self, node,
                        "mean_average_precision over dict values relies on "
                        "insertion order; use map_over_users() (sorts user "
                        "ids) so MAP summation order is pinned",
                    )

    def _check_loop(self, ctx: FileContext, node: ast.For) -> Iterator[Violation]:
        if not (_is_set_expr(node.iter) or _is_values_call(node.iter)):
            return
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add):
                yield ctx.violation(
                    self, stmt,
                    "+= accumulation while iterating an unordered collection: "
                    "sort the iterable so float totals are reproducible",
                )


#: Wall-clock reads. perf_counter/monotonic are durations, not wall
#: time, and are deliberately allowed.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Function names treated as cache-key constructors: wall-clock reads
#: reachable from these poison artifact identity.
_KEY_FUNCTION_NAMES = ("artifact_key", "canonical_params")


def _is_key_function(name: str) -> bool:
    return (
        name in _KEY_FUNCTION_NAMES
        or "cache_key" in name
        or name.endswith("_key")
        or name == "key"
    )


@register_rule
class WallClockRule(Rule):
    id = "RPR003"
    name = "wall-clock"
    summary = "wall-clock reads in library code; fatal when reachable from cache keys"
    invariant = (
        "artifact cache keys and journal cell ids are pure functions of run "
        "configuration; wall-clock time may only appear in telemetry "
        "timestamps, explicitly pragma'd"
    )
    library_only = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        key_reachable = self._functions_reachable_from_key_constructors(ctx.tree)
        for func, wall_calls in self._wall_clock_calls_by_function(ctx):
            for node, resolved in wall_calls:
                if func is not None and func in key_reachable:
                    yield ctx.violation(
                        self, node,
                        f"{resolved}() is reachable from cache-key "
                        f"construction (via {func.name!r}): keys must be "
                        "pure functions of the run configuration",
                    )
                else:
                    yield ctx.violation(
                        self, node,
                        f"{resolved}() reads the wall clock; use "
                        "time.perf_counter() for durations, or pragma this "
                        "line if it is an intentional telemetry timestamp",
                    )

    def _wall_clock_calls_by_function(self, ctx: FileContext):
        """Yield (enclosing function def or None, [(call, resolved)])."""
        tree, imports = ctx.tree, ctx.imports
        functions = [
            n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Innermost first: a nested def's span is strictly smaller than
        # its enclosing def's, so sorting by span size attributes each
        # call to its innermost enclosing function.
        functions.sort(key=lambda f: (f.end_lineno or f.lineno) - f.lineno)
        claimed: set[int] = set()
        for func in functions:
            calls = []
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and id(node) not in claimed:
                    resolved = imports.resolve(node.func)
                    if resolved in _WALL_CLOCK:
                        calls.append((node, resolved))
            if calls:
                yield func, calls
                claimed.update(id(c) for c, _ in calls)
        # Module-level calls outside any function.
        module_calls = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and id(node) not in claimed:
                resolved = imports.resolve(node.func)
                if resolved in _WALL_CLOCK:
                    module_calls.append((node, resolved))
        if module_calls:
            yield None, module_calls

    def _functions_reachable_from_key_constructors(
        self, tree: ast.Module
    ) -> set[ast.AST]:
        """Intra-module closure of functions called by key constructors.

        Edges are matched by bare name (``helper(...)`` and
        ``self.helper(...)`` both link to ``def helper``), which is
        deliberately conservative: over-approximating reachability only
        produces a sterner message, never a missed read.
        """
        by_name: dict[str, list[ast.AST]] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                by_name.setdefault(node.name, []).append(node)

        def callees(func: ast.AST) -> set[str]:
            names = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    if isinstance(node.func, ast.Name):
                        names.add(node.func.id)
                    elif isinstance(node.func, ast.Attribute):
                        names.add(node.func.attr)
            return names

        frontier = [
            f for name, funcs in by_name.items() if _is_key_function(name)
            for f in funcs
        ]
        reachable: set[ast.AST] = set(frontier)
        while frontier:
            func = frontier.pop()
            for callee_name in callees(func):
                for callee in by_name.get(callee_name, ()):
                    if callee not in reachable:
                        reachable.add(callee)
                        frontier.append(callee)
        return reachable
