"""RPR008: waits in the sweep executors carry a timeout.

The sweep engine's fault-tolerance story rests on one discipline: the
supervising process never blocks forever on a worker. An unbounded
``Queue.get()``, ``Process.join()`` or ``future.result()`` in the
executor layer turns a crashed or hung worker into a hung *sweep* --
exactly the failure class the supervision machinery
(:mod:`repro.experiments.supervision`) exists to contain. This rule
scopes to ``src/repro/experiments`` (the only package that talks to
worker processes) and flags zero-argument calls to those methods; a
bounded wait passes a ``timeout=`` keyword, and non-blocking drains use
``get_nowait``/``put_nowait``, which are fine.

The zero-positional-argument restriction keeps the heuristic honest:
``mapping.get(key)`` and ``", ".join(parts)`` share method names with
the blocking calls but always take arguments, so they never trip it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import FileContext, Rule, Violation, register_rule

__all__ = ["UnboundedWaitRule"]

#: Method names that block without bound when called bare.
_BLOCKING_ATTRS = ("get", "join", "result")

#: Keywords that bound the wait (``block=False`` makes ``get`` a poll).
_BOUNDING_KEYWORDS = ("timeout", "block")

#: The package this rule patrols, as a posix path fragment.
_SCOPE = "src/repro/experiments"


@register_rule
class UnboundedWaitRule(Rule):
    id = "RPR008"
    name = "unbounded-wait"
    summary = "unbounded Queue.get / Process.join / future.result in the executors"
    invariant = (
        "every wait in the sweep-executor layer is bounded, so a crashed or "
        "hung worker can cost a cell but never hang the sweep"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if _SCOPE not in ctx.path.as_posix():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _BLOCKING_ATTRS:
                continue
            if node.args:
                continue  # mapping.get(key), sep.join(parts), ...
            if any(
                kw.arg in _BOUNDING_KEYWORDS for kw in node.keywords if kw.arg
            ):
                continue
            yield ctx.violation(
                self, node,
                f".{func.attr}() without a timeout in the executor layer: "
                f"pass timeout=... (or use the _nowait variant) so a dead "
                f"worker cannot hang the sweep",
            )
