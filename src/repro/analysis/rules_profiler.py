"""RPR014: stack samplers are started via ``with``.

A :class:`~repro.obs.profiler.StackSampler` owns a background sampling
thread and the process's single active-sampler slot; ``__enter__``
claims both and ``__exit__`` joins the thread, banks the sampled wall
clock and releases the slot. Constructing one outside a ``with``
statement (or an ``ExitStack.enter_context`` call) risks a sampler that
never stops: the thread keeps walking ``sys._current_frames()`` after
the measured run is over, the profile's ``wall_seconds`` (and with it
the overhead ratio CI gates on) is never banked, and the leaked
active-sampler registration blocks every later ``repro profile`` run in
the process. Mirrors RPR005 (span-hygiene) and RPR007
(resource-sampler-hygiene) for the profiling dimension.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import FileContext, Rule, Violation, register_rule

__all__ = ["ProfilerHygieneRule"]

#: The canonical class the rule tracks.
_SAMPLER_CLASS = "StackSampler"
_CANONICAL_SUFFIXES = (
    f"repro.obs.profiler.{_SAMPLER_CLASS}",
    f"repro.obs.{_SAMPLER_CLASS}",
)

#: Enclosing function names whose returned sampler is delegation (a
#: factory the caller is expected to enter), mirroring RPR005/RPR007.
_DELEGATION_NAMES = ("stack_sampler", "profiler", "sampler")


@register_rule
class ProfilerHygieneRule(Rule):
    id = "RPR014"
    name = "profiler-hygiene"
    summary = "StackSampler created outside a `with` statement"
    invariant = (
        "every stack sampler's background thread is started and joined by a "
        "context manager, so sampling never outlives the run it measures and "
        "the process's active-sampler slot is always released"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        allowed: set[int] = set()
        self._collect_allowed(ctx.tree, allowed, in_delegation=False)
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and self._is_sampler_call(node, ctx)
                and id(node) not in allowed
            ):
                yield ctx.violation(
                    self, node,
                    "StackSampler(...) outside a `with` statement: enter "
                    "samplers as `with StackSampler(...) as sampler:` (or "
                    "stack.enter_context(...)) so the sampling thread is "
                    "always joined and the active-sampler slot released",
                )

    @staticmethod
    def _is_sampler_call(node: ast.Call, ctx: FileContext) -> bool:
        func = node.func
        if isinstance(func, ast.Name) and func.id == _SAMPLER_CLASS:
            return True
        resolved = ctx.imports.resolve(func)
        if resolved is not None:
            return resolved.endswith(_CANONICAL_SUFFIXES)
        return isinstance(func, ast.Attribute) and func.attr == _SAMPLER_CLASS

    def _collect_allowed(
        self, node: ast.AST, allowed: set[int], in_delegation: bool
    ) -> None:
        """Mark sampler calls that are with-items, enter_context args,
        or returns inside delegation-named factories."""
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    allowed.add(id(item.context_expr))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "enter_context"
        ):
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    allowed.add(id(arg))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_delegation = node.name in _DELEGATION_NAMES
        elif isinstance(node, ast.Return) and in_delegation:
            if isinstance(node.value, ast.Call):
                allowed.add(id(node.value))
        for child in ast.iter_child_nodes(node):
            self._collect_allowed(child, allowed, in_delegation)
