"""``repro.analysis`` -- reprolint, the repo's invariant linter.

An AST-based static-analysis pass with repo-specific rules: the
determinism, error-taxonomy and telemetry invariants that keep the
paper's numbers reproducible used to live in commit messages; this
package makes them machine-checked. Run it as ``repro lint`` or through
:func:`lint_paths`.

Rules
-----
========  =======================  ==================================
RPR001    seeded-rng               RNG without an explicit seed
RPR002    ordered-accumulation     float sums over unordered iterables
RPR003    wall-clock               wall-clock reads / cache-key purity
RPR004    error-taxonomy           bare builtin raises in the library
RPR005    span-hygiene             spans not entered via ``with``
RPR006    picklable-spec           unpicklable process-pool specs
RPR007    resource-span-leak       samplers not entered via ``with``
RPR008    unbounded-wait           executor waits without a timeout
RPR009    eventlog-progress        console writes in the sweep machinery
RPR010    profile-artifact-mutation  in-place writes to ``.profiles``
RPR011    cache-key-provenance     cache keys fed from undeclared state
RPR012    fork-safety              worker-reachable global mutation
RPR013    nondeterminism-reachability  effect chains into stages
RPR014    profiler-hygiene         stack samplers not entered via ``with``
RPR900    unused-pragma            stale ``repro: allow[...]`` comment
========  =======================  ==================================

RPR011--RPR013 are *whole-program* rules: they run over the assembled
call graph (:mod:`repro.analysis.graph`) with transitive effect sets
(:mod:`repro.analysis.effects`) rather than one file at a time, and
their findings carry the call path that makes them reachable.

Suppress a violation with a justified pragma on the flagged line::

    record = {"ts": time.time()}  # repro: allow[RPR003] -- event timestamp

The package is intentionally stdlib-only (``ast`` + ``tokenize``), so
``repro lint`` runs in any environment that can parse the code, before
heavyweight dependencies are even importable.
"""

from repro.analysis.base import (
    PROGRAM_RULE_REGISTRY,
    RULE_REGISTRY,
    FileContext,
    ProgramRule,
    Rule,
    Violation,
    default_program_rules,
    default_rules,
    register_program_rule,
    register_rule,
)
from repro.analysis.engine import LintReport, find_pragmas, lint_paths, lint_source
from repro.analysis.graph import (
    ProgramAnalysis,
    analysis_to_dot,
    analysis_to_json,
    build_analysis,
    summarize_module,
)
from repro.analysis.reporting import (
    JSON_FORMAT_VERSION,
    format_json,
    format_rules,
    format_text,
)

# Importing the rule modules registers the built-in rule set.
from repro.analysis import rules_determinism  # noqa: E402,F401  isort: skip
from repro.analysis import rules_taxonomy  # noqa: E402,F401  isort: skip
from repro.analysis import rules_telemetry  # noqa: E402,F401  isort: skip
from repro.analysis import rules_pickle  # noqa: E402,F401  isort: skip
from repro.analysis import rules_resources  # noqa: E402,F401  isort: skip
from repro.analysis import rules_concurrency  # noqa: E402,F401  isort: skip
from repro.analysis import rules_progress  # noqa: E402,F401  isort: skip
from repro.analysis import rules_profiles  # noqa: E402,F401  isort: skip
from repro.analysis import rules_profiler  # noqa: E402,F401  isort: skip
from repro.analysis import rules_wholeprogram  # noqa: E402,F401  isort: skip

__all__ = [
    "JSON_FORMAT_VERSION",
    "PROGRAM_RULE_REGISTRY",
    "RULE_REGISTRY",
    "FileContext",
    "LintReport",
    "ProgramAnalysis",
    "ProgramRule",
    "Rule",
    "Violation",
    "analysis_to_dot",
    "analysis_to_json",
    "build_analysis",
    "default_program_rules",
    "default_rules",
    "find_pragmas",
    "format_json",
    "format_rules",
    "format_text",
    "lint_paths",
    "lint_source",
    "register_program_rule",
    "register_rule",
    "summarize_module",
]
