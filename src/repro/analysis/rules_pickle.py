"""RPR006: process-pool specs stay picklable.

``SweepSpec`` / ``PipelineSpec`` / ``GridSpec`` dataclasses cross the
process-pool boundary: a worker reconstructs the pipeline from them.
Lambdas, closures and locally-defined classes do not pickle, so a spec
that grows such a field works in serial runs and explodes only under
``--jobs N`` -- the worst kind of regression, because the serial parity
tests cannot see it.

The rule covers every dataclass whose name ends in ``Spec`` (the repo's
convention for process-boundary payloads): fields annotated as
``Callable``, fields defaulted to a ``lambda``, and ``*Spec`` classes
defined inside a function body (local classes cannot pickle at all).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import FileContext, Rule, Violation, register_rule

__all__ = ["PicklableSpecRule"]


def _is_dataclass_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    return isinstance(target, ast.Attribute) and target.attr == "dataclass"


def _mentions_callable(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return "Callable" in annotation.value
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name) and sub.id == "Callable":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "Callable":
            return True
    return False


@register_rule
class PicklableSpecRule(Rule):
    id = "RPR006"
    name = "picklable-spec"
    summary = "unpicklable fields (Callable/lambda) or local classes in *Spec dataclasses"
    invariant = (
        "*Spec dataclasses cross the process-pool boundary, so every field "
        "must pickle: no lambdas, no Callable fields, no local classes"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._walk(ctx, ctx.tree, inside_function=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, inside_function: bool
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if self._is_spec_dataclass(child):
                    yield from self._check_spec(ctx, child, inside_function)
                yield from self._walk(ctx, child, inside_function)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(ctx, child, inside_function=True)
            else:
                yield from self._walk(ctx, child, inside_function)

    def _is_spec_dataclass(self, node: ast.ClassDef) -> bool:
        return node.name.endswith("Spec") and any(
            _is_dataclass_decorator(d) for d in node.decorator_list
        )

    def _check_spec(
        self, ctx: FileContext, node: ast.ClassDef, inside_function: bool
    ) -> Iterator[Violation]:
        if inside_function:
            yield ctx.violation(
                self, node,
                f"dataclass {node.name} is defined inside a function: local "
                "classes cannot pickle, so this spec cannot reach a worker",
            )
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign):
                field_name = (
                    stmt.target.id if isinstance(stmt.target, ast.Name) else "?"
                )
                if _mentions_callable(stmt.annotation):
                    yield ctx.violation(
                        self, stmt,
                        f"field {field_name!r} of {node.name} is annotated "
                        "Callable: function objects do not reliably pickle "
                        "across the process-pool boundary",
                    )
                if isinstance(stmt.value, ast.Lambda):
                    yield ctx.violation(
                        self, stmt,
                        f"field {field_name!r} of {node.name} defaults to a "
                        "lambda: lambdas cannot pickle",
                    )
                if (
                    isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Name)
                    and stmt.value.func.id == "field"
                ):
                    for kw in stmt.value.keywords:
                        if kw.arg == "default" and isinstance(kw.value, ast.Lambda):
                            yield ctx.violation(
                                self, stmt,
                                f"field {field_name!r} of {node.name} "
                                "defaults to a lambda: lambdas cannot pickle",
                            )
