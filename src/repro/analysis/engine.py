"""The ``reprolint`` engine: file collection, pragmas, rule dispatch.

:func:`lint_paths` walks the given files/directories in sorted order,
parses each ``*.py`` once, runs every applicable rule over the shared
:class:`~repro.analysis.base.FileContext`, and applies per-line
suppression pragmas::

    rng = np.random.default_rng()  # repro: allow[RPR001] -- caller seeds later

A pragma names one or more rules (``allow[RPR002,RPR003]``) and
suppresses matching violations whose flagged statement covers the
pragma's line. A pragma that suppresses nothing is itself reported as
``RPR900`` (unused-suppression-pragma), so stale allowances cannot
accumulate.

Exit-code semantics (:attr:`LintReport.exit_code`) are CI-ready:
0 clean, 1 violations found, 2 engine errors (unreadable or unparsable
input).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import (
    UNUSED_PRAGMA_RULE,
    FileContext,
    Rule,
    Violation,
    default_rules,
)

__all__ = ["LintReport", "Pragma", "find_pragmas", "lint_paths", "lint_source"]

#: Matches suppression comments: allow[...] with one or more rule ids
#: and an optional ``-- justification`` tail.
_PRAGMA_RE = re.compile(r"repro:\s*allow\[\s*(RPR\d{3}(?:\s*,\s*RPR\d{3})*)\s*\]")


@dataclass(frozen=True)
class Pragma:
    """One suppression comment: the line it sits on and the rules it allows."""

    line: int
    rules: frozenset[str]


def find_pragmas(source: str) -> list[Pragma]:
    """Extract suppression pragmas from real comment tokens.

    Tokenising (rather than regexing raw lines) means pragma text inside
    string literals -- such as this engine's own docstrings and the
    linter's test fixtures -- is never misread as a live pragma.
    """
    pragmas: list[Pragma] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match:
                rules = frozenset(
                    rule.strip() for rule in match.group(1).split(",")
                )
                pragmas.append(Pragma(line=token.start[0], rules=rules))
    except tokenize.TokenError:
        pass  # a parse error is reported by lint_source
    return pragmas


@dataclass
class LintReport:
    """Aggregated lint outcome over a set of files."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.violations else 0

    def extend(self, other: "LintReport") -> None:
        self.violations.extend(other.violations)
        self.files_checked += other.files_checked
        self.errors.extend(other.errors)


def lint_source(
    source: str,
    path: str | Path,
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Lint one in-memory source text as if it lived at ``path``."""
    report = LintReport(files_checked=1)
    active_rules = list(rules) if rules is not None else default_rules()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        report.errors.append(f"{path}:{error.lineno or 0}: syntax error: {error.msg}")
        return report

    ctx = FileContext(path, source, tree)
    raw: list[Violation] = []
    for rule in active_rules:
        raw.extend(rule.run(ctx))

    pragmas = find_pragmas(source)
    used: set[Pragma] = set()
    for violation in sorted(raw):
        pragma = _matching_pragma(violation, pragmas)
        if pragma is not None:
            used.add(pragma)
        else:
            report.violations.append(violation)
    for pragma in pragmas:
        if pragma not in used:
            report.violations.append(
                Violation(
                    path=str(path),
                    line=pragma.line,
                    col=0,
                    rule=UNUSED_PRAGMA_RULE,
                    message=(
                        "suppression pragma allows "
                        f"[{', '.join(sorted(pragma.rules))}] but suppresses "
                        "nothing on this line -- remove it"
                    ),
                )
            )
    report.violations.sort()
    return report


def _matching_pragma(
    violation: Violation, pragmas: Iterable[Pragma]
) -> Pragma | None:
    for pragma in pragmas:
        if (
            violation.rule in pragma.rules
            and violation.line <= pragma.line <= violation.end_line
        ):
            return pragma
    return None


def collect_files(paths: Sequence[str | Path]) -> tuple[list[Path], list[str]]:
    """Expand files/directories into a sorted, deduplicated ``*.py`` list."""
    files: list[Path] = []
    errors: list[str] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            errors.append(f"{path}: no such file or directory")
            continue
        for candidate in candidates:
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files, errors


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Lint every ``*.py`` under ``paths`` and aggregate one report."""
    active_rules = list(rules) if rules is not None else default_rules()
    files, errors = collect_files(paths)
    report = LintReport(errors=errors)
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as error:
            report.errors.append(f"{file}: {error}")
            continue
        report.extend(lint_source(source, file, active_rules))
    report.violations.sort()
    return report
