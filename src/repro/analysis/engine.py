"""The ``reprolint`` engine: file collection, pragmas, rule dispatch.

:func:`lint_paths` walks the given files/directories in sorted order,
parses each ``*.py`` once, runs every applicable per-file rule over the
shared :class:`~repro.analysis.base.FileContext`, then assembles the
condensed module summaries into a whole-program analysis
(:mod:`repro.analysis.graph`) and runs the program rules over it.
Per-line suppression pragmas apply to both passes::

    rng = np.random.default_rng()  # repro: allow[RPR001] -- caller seeds later

A pragma names one or more rules (``allow[RPR002,RPR003]``) and
suppresses matching violations whose flagged statement covers the
pragma's line. A pragma that suppresses nothing in *either* pass is
itself reported as ``RPR900`` (unused-suppression-pragma), so stale
allowances cannot accumulate.

With ``cache_path`` set, per-file results (violations, pragmas, module
summary) are cached keyed on content SHA-256 and the active rule-set
signature; a warm run re-parses only changed files while the
whole-program pass always runs fresh over the summaries
(:mod:`repro.analysis.cache`).

Exit-code semantics (:attr:`LintReport.exit_code`) are CI-ready:
0 clean, 1 violations found, 2 engine errors (unreadable or unparsable
input, or nothing to analyze).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import (
    UNUSED_PRAGMA_RULE,
    FileContext,
    ProgramRule,
    Rule,
    Violation,
    default_program_rules,
    default_rules,
)
from repro.analysis.cache import AnalysisCache, content_hash
from repro.analysis.graph import (
    ModuleSummary,
    ProgramAnalysis,
    build_analysis,
    summarize_module,
)

__all__ = [
    "LintReport",
    "Pragma",
    "find_pragmas",
    "lint_paths",
    "lint_source",
    "rule_signature",
]

#: Bump to invalidate incremental caches when engine semantics change.
_ENGINE_CACHE_SALT = "reprolint-v2"

#: Matches suppression comments: allow[...] with one or more rule ids
#: and an optional ``-- justification`` tail.
_PRAGMA_RE = re.compile(r"repro:\s*allow\[\s*(RPR\d{3}(?:\s*,\s*RPR\d{3})*)\s*\]")


@dataclass(frozen=True)
class Pragma:
    """One suppression comment: the line it sits on and the rules it allows."""

    line: int
    rules: frozenset[str]


def find_pragmas(source: str) -> list[Pragma]:
    """Extract suppression pragmas from real comment tokens.

    Tokenising (rather than regexing raw lines) means pragma text inside
    string literals -- such as this engine's own docstrings and the
    linter's test fixtures -- is never misread as a live pragma.
    """
    pragmas: list[Pragma] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match:
                rules = frozenset(
                    rule.strip() for rule in match.group(1).split(",")
                )
                pragmas.append(Pragma(line=token.start[0], rules=rules))
    except tokenize.TokenError:
        pass  # a parse error is reported by the per-file pass
    return pragmas


@dataclass
class LintReport:
    """Aggregated lint outcome over a set of files."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)
    #: Incremental-cache counters (zero when no cache was used).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Findings suppressed by a ratchet baseline (set by the CLI layer).
    baselined: int = 0
    #: The whole-program analysis, for ``--graph`` exports. Not part of
    #: equality/serialisation; None when no program pass ran.
    analysis: ProgramAnalysis | None = field(default=None, repr=False)

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.violations else 0

    def extend(self, other: "LintReport") -> None:
        self.violations.extend(other.violations)
        self.files_checked += other.files_checked
        self.errors.extend(other.errors)
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.baselined += other.baselined


def rule_signature(
    rules: Sequence[Rule], program_rules: Sequence[ProgramRule]
) -> str:
    """Cache signature: engine salt plus the active rule ids."""
    file_ids = ",".join(sorted(rule.id for rule in rules))
    program_ids = ",".join(sorted(rule.id for rule in program_rules))
    return f"{_ENGINE_CACHE_SALT};rules:{file_ids};program:{program_ids}"


@dataclass
class _FileFacts:
    """Everything one file contributes, from cache or a fresh parse."""

    path: str
    error: str | None = None
    violations: list[Violation] = field(default_factory=list)
    pragmas: list[Pragma] = field(default_factory=list)
    used_lines: set[int] = field(default_factory=set)
    summary: ModuleSummary | None = None

    def to_entry(self) -> dict:
        return {
            "error": self.error,
            "violations": [v.to_payload() for v in self.violations],
            "pragmas": [
                {"line": p.line, "rules": sorted(p.rules)} for p in self.pragmas
            ],
            "used_lines": sorted(self.used_lines),
            "summary": self.summary.to_dict() if self.summary else None,
        }

    @classmethod
    def from_entry(cls, path: str, entry: dict) -> "_FileFacts":
        return cls(
            path=path,
            error=entry.get("error"),
            violations=[
                Violation.from_payload(p) for p in entry.get("violations", ())
            ],
            pragmas=[
                Pragma(line=p["line"], rules=frozenset(p["rules"]))
                for p in entry.get("pragmas", ())
            ],
            used_lines=set(entry.get("used_lines", ())),
            summary=(
                ModuleSummary.from_dict(entry["summary"])
                if entry.get("summary")
                else None
            ),
        )


def _analyze_file(
    path: str | Path, source: str, rules: Sequence[Rule]
) -> _FileFacts:
    """The per-file pass: parse, rules, pragma suppression, summary."""
    facts = _FileFacts(path=str(path))
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        facts.error = f"{path}:{error.lineno or 0}: syntax error: {error.msg}"
        return facts

    ctx = FileContext(path, source, tree)
    raw: list[Violation] = []
    for rule in rules:
        raw.extend(rule.run(ctx))

    facts.pragmas = find_pragmas(source)
    for violation in sorted(raw):
        pragma = _matching_pragma(violation, facts.pragmas)
        if pragma is not None:
            facts.used_lines.add(pragma.line)
        else:
            facts.violations.append(violation)
    facts.summary = summarize_module(tree, path, facts.pragmas)
    return facts


def _matching_pragma(
    violation: Violation, pragmas: Iterable[Pragma]
) -> Pragma | None:
    for pragma in pragmas:
        if (
            violation.rule in pragma.rules
            and violation.line <= pragma.line <= violation.end_line
        ):
            return pragma
    return None


def _run_program_pass(
    facts: Sequence[_FileFacts],
    program_rules: Sequence[ProgramRule],
    report: LintReport,
) -> None:
    """Assemble the program, run program rules, finish RPR900."""
    summaries = [f.summary for f in facts if f.summary is not None]
    analysis = build_analysis(summaries) if summaries else None
    report.analysis = analysis

    pragmas_by_path = {f.path: f.pragmas for f in facts}
    used_by_path = {f.path: set(f.used_lines) for f in facts}

    if analysis is not None:
        for rule in program_rules:
            for violation in rule.run(analysis):
                pragma = _matching_pragma(
                    violation, pragmas_by_path.get(violation.path, ())
                )
                if pragma is not None:
                    used_by_path.setdefault(violation.path, set()).add(pragma.line)
                else:
                    report.violations.append(violation)

    for file_facts in facts:
        used = used_by_path.get(file_facts.path, set())
        for pragma in file_facts.pragmas:
            if pragma.line not in used:
                report.violations.append(
                    Violation(
                        path=file_facts.path,
                        line=pragma.line,
                        col=0,
                        rule=UNUSED_PRAGMA_RULE,
                        message=(
                            "suppression pragma allows "
                            f"[{', '.join(sorted(pragma.rules))}] but "
                            "suppresses nothing on this line -- remove it"
                        ),
                    )
                )


def lint_source(
    source: str,
    path: str | Path,
    rules: Sequence[Rule] | None = None,
    program_rules: Sequence[ProgramRule] | None = None,
) -> LintReport:
    """Lint one in-memory source text as if it lived at ``path``.

    The program pass runs over the single module, so whole-program rules
    that only need intra-file facts (a key call reading a module global)
    still fire. When ``rules`` is given explicitly but ``program_rules``
    is not, only the requested per-file rules run -- matching how rule
    unit tests isolate one rule at a time.
    """
    active_rules = list(rules) if rules is not None else default_rules()
    if program_rules is not None:
        active_program_rules = list(program_rules)
    else:
        active_program_rules = default_program_rules() if rules is None else []
    report = LintReport(files_checked=1)
    facts = _analyze_file(path, source, active_rules)
    if facts.error is not None:
        report.errors.append(facts.error)
        return report
    report.violations.extend(facts.violations)
    _run_program_pass([facts], active_program_rules, report)
    report.violations.sort()
    return report


def collect_files(paths: Sequence[str | Path]) -> tuple[list[Path], list[str]]:
    """Expand files/directories into a sorted, deduplicated ``*.py`` list."""
    files: list[Path] = []
    errors: list[str] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            errors.append(f"{path}: no such file or directory")
            continue
        for candidate in candidates:
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files, errors


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    program_rules: Sequence[ProgramRule] | None = None,
    cache_path: str | Path | None = None,
) -> LintReport:
    """Lint every ``*.py`` under ``paths`` and aggregate one report."""
    active_rules = list(rules) if rules is not None else default_rules()
    active_program_rules = (
        list(program_rules) if program_rules is not None else default_program_rules()
    )
    files, errors = collect_files(paths)
    report = LintReport(errors=errors)
    if not files:
        report.errors.append(
            "0 files analyzed: no Python files found under "
            + ", ".join(str(p) for p in paths)
        )
        return report

    cache: AnalysisCache | None = None
    if cache_path is not None:
        cache = AnalysisCache.load(
            cache_path, rule_signature(active_rules, active_program_rules)
        )

    all_facts: list[_FileFacts] = []
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as error:
            report.errors.append(f"{file}: {error}")
            continue
        report.files_checked += 1
        facts: _FileFacts | None = None
        digest = content_hash(source) if cache is not None else ""
        if cache is not None:
            entry = cache.lookup(file, digest)
            if entry is not None:
                facts = _FileFacts.from_entry(str(file), entry)
        if facts is None:
            facts = _analyze_file(file, source, active_rules)
            if cache is not None:
                cache.store(file, digest, facts.to_entry())
        if facts.error is not None:
            report.errors.append(facts.error)
            continue
        report.violations.extend(facts.violations)
        all_facts.append(facts)

    _run_program_pass(all_facts, active_program_rules, report)

    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        cache.save()
    report.violations.sort()
    return report
