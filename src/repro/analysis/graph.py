"""Whole-program call graph over the repro library.

The per-file rules see one module at a time; the invariants they protect
(determinism, fork-safety, cache-key purity) are properties of *call
chains* that cross module boundaries. This module builds the program
view those rules need:

1. every file is condensed into a :class:`ModuleSummary` -- functions
   and methods with their call sites, direct effects
   (:mod:`repro.analysis.effects`), module-global mutations and
   cache-key construction sites. Summaries are plain JSON-serialisable
   data, which is what makes the incremental cache
   (:mod:`repro.analysis.cache`) possible;
2. summaries are assembled into a :class:`Program` whose symbol table
   resolves aliased imports, ``from x import y``, relative imports and
   re-exports through ``__init__.py`` (via
   :mod:`repro.analysis.names`), with method calls resolved through a
   lightweight class-hierarchy pass (``self.m()`` walks the MRO and
   descendant overrides; an untyped receiver falls back to every known
   method of that name -- deliberate over-approximation: a spurious
   edge can only make a rule *more* suspicious, never blind);
3. :func:`build_analysis` runs the effect fixed point and detects the
   graph *roots* the whole-program rules anchor on: evaluation-stage
   functions (``core/stages.py`` and the ``ExperimentPipeline`` stage
   methods), process-pool worker entry points (functions passed as a
   ``Process(target=...)``, plus ``evaluate_cell``), and
   ``ProfileState.update`` with its overrides.

:func:`analysis_to_json` / :func:`analysis_to_dot` export the graph and
the per-function effect report for ``repro lint --graph``.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import effects as effects_mod
from repro.analysis.names import ImportMap, module_name_for_path

__all__ = [
    "GRAPH_FORMAT_VERSION",
    "ClassSummary",
    "FunctionSummary",
    "ModuleSummary",
    "Program",
    "ProgramAnalysis",
    "analysis_to_dot",
    "analysis_to_json",
    "build_analysis",
    "build_program",
    "summarize_module",
]

#: Format marker for the ``--graph`` JSON export.
GRAPH_FORMAT_VERSION = 1

#: Synthetic function name holding a module's top-level statements.
MODULE_BODY = "<module>"

#: Methods of ``core/pipeline.py`` classes that are evaluation stages.
_STAGE_METHODS = frozenset(
    {"prepare_corpus", "fit_model", "build_profiles", "rank_users", "evaluate"}
)

#: Key-constructor call names: values flowing into these become cache
#: keys / canonical serialisations (the RPR011 surface).
_KEY_CALL_NAMES = frozenset({"artifact_key", "canonical_params"})

#: Mutating container-method names (list / set / dict).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "setdefault",
        "sort",
        "reverse",
    }
)


# ---------------------------------------------------------------------------
# Summaries (per-file facts, JSON-serialisable for the incremental cache)


@dataclass
class FunctionSummary:
    """One function or method, condensed to graph-relevant facts."""

    qualname: str
    name: str
    cls: str | None
    line: int
    end_line: int
    calls: list[dict] = field(default_factory=list)
    effects: list[dict] = field(default_factory=list)
    mutations: list[dict] = field(default_factory=list)
    key_calls: list[dict] = field(default_factory=list)
    spawn_targets: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "end_line": self.end_line,
            "calls": self.calls,
            "effects": self.effects,
            "mutations": self.mutations,
            "key_calls": self.key_calls,
            "spawn_targets": self.spawn_targets,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionSummary":
        return cls(**payload)


@dataclass
class ClassSummary:
    """One class: bases for the hierarchy pass, fields for RPR011."""

    name: str
    line: int
    bases: list[dict] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    is_dataclass: bool = False
    fields: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "methods": self.methods,
            "is_dataclass": self.is_dataclass,
            "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClassSummary":
        return cls(**payload)


@dataclass
class ModuleSummary:
    """Everything the program pass needs to know about one file."""

    module: str
    path: str
    is_package: bool = False
    aliases: dict[str, str] = field(default_factory=dict)
    star_imports: list[str] = field(default_factory=list)
    #: module-global name -> "const" | "mutable" | "computed".
    globals: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "aliases": self.aliases,
            "star_imports": self.star_imports,
            "globals": self.globals,
            "classes": {name: c.to_dict() for name, c in self.classes.items()},
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleSummary":
        return cls(
            module=payload["module"],
            path=payload["path"],
            is_package=payload["is_package"],
            aliases=payload["aliases"],
            star_imports=payload["star_imports"],
            globals=payload["globals"],
            classes={
                name: ClassSummary.from_dict(c)
                for name, c in payload["classes"].items()
            },
            functions={
                q: FunctionSummary.from_dict(f)
                for q, f in payload["functions"].items()
            },
        )


# ---------------------------------------------------------------------------
# Extraction


def _global_kind(value: ast.expr | None) -> str:
    """How stable a module-level binding is, from its value expression."""
    if value is None:
        return "computed"
    if isinstance(value, ast.Constant):
        return "const"
    if isinstance(value, ast.Tuple):
        return "const"
    if isinstance(
        value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
    ):
        return "mutable"
    if isinstance(value, ast.BinOp):
        return _global_kind(value.left)
    if isinstance(value, ast.Call):
        name = (
            value.func.id
            if isinstance(value.func, ast.Name)
            else value.func.attr if isinstance(value.func, ast.Attribute) else ""
        )
        if name in ("dict", "list", "set", "defaultdict", "deque", "Counter",
                    "OrderedDict", "bytearray"):
            return "mutable"
        if name in ("frozenset", "tuple"):
            return "const"
    return "computed"


def _bound_names(target: ast.expr) -> Iterable[str]:
    """Names a target expression *binds* -- subscripts/attributes do not.

    ``cache[k] = v`` mutates ``cache``, it does not bind it; collecting
    every Name under the target would hide exactly the module-global
    mutations the fork-safety rule exists to find.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _local_names(func: ast.AST) -> set[str]:
    """Names bound inside ``func`` (params + assignments, nested included)."""
    names: set[str] = set()
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            arguments = node.args
            for arg in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ):
                names.add(arg.arg)
            if arguments.vararg:
                names.add(arguments.vararg.arg)
            if arguments.kwarg:
                names.add(arguments.kwarg.arg)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
        elif isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                names.update(_bound_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_bound_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_bound_names(item.optional_vars))
        elif isinstance(node, ast.comprehension):
            names.update(_bound_names(node.target))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names - declared_global


def _annotation_ref(annotation: ast.expr | None, imports: ImportMap) -> str | None:
    """A class reference from a type annotation, best effort."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.strip().strip("\"'")
        return text if text.isidentifier() else None
    if isinstance(annotation, ast.Name):
        return imports.resolve(annotation) or annotation.id
    if isinstance(annotation, ast.Attribute):
        return imports.resolve(annotation)
    return None


class _FunctionExtractor:
    """Extracts one FunctionSummary from a function body (or module body)."""

    def __init__(
        self,
        module: str,
        imports: ImportMap,
        module_globals: Mapping[str, str],
        pragma_rules_by_line: Mapping[int, frozenset[str]],
        classes: Mapping[str, ClassSummary],
    ):
        self.module = module
        self.imports = imports
        self.module_globals = module_globals
        self.pragma_rules_by_line = pragma_rules_by_line
        self.classes = classes

    def extract(
        self, node: ast.AST, qualname: str, name: str, cls: str | None,
        body: Sequence[ast.stmt] | None = None,
    ) -> FunctionSummary:
        statements = list(body) if body is not None else [node]
        summary = FunctionSummary(
            qualname=qualname,
            name=name,
            cls=cls,
            line=getattr(node, "lineno", 1),
            end_line=getattr(node, "end_lineno", None) or getattr(node, "lineno", 1),
        )
        locals_ = set()
        if body is None:
            locals_ = _local_names(node)
        types = self._local_types(node, body)
        for stmt in statements:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    self._record_call(summary, sub, types)
            self._record_mutations(summary, stmt, locals_)
        for stmt in statements:
            summary.effects.extend(
                self._sanction(record)
                for record in effects_mod.direct_effects(stmt, self.imports)
            )
        if summary.mutations:
            first = summary.mutations[0]
            summary.effects.append(
                {
                    "effect": "mutates_global",
                    "line": first["line"],
                    "end_line": first["end_line"],
                    "col": first["col"],
                    "detail": first["name"],
                    "sanctioned": False,
                }
            )
        return summary

    def _sanction(self, record: dict) -> dict:
        rule = effects_mod.PRAGMA_RULE_FOR_EFFECT.get(record["effect"])
        if rule is not None:
            for line in range(record["line"], record["end_line"] + 1):
                if rule in self.pragma_rules_by_line.get(line, frozenset()):
                    record["sanctioned"] = True
                    break
        return record

    def _local_types(
        self, node: ast.AST, body: Sequence[ast.stmt] | None
    ) -> dict[str, str]:
        """variable -> class reference, from annotations and ``v = Cls()``."""
        types: dict[str, str] = {}
        if body is None and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = node.args
            for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs):
                ref = _annotation_ref(arg.annotation, self.imports)
                if ref is not None:
                    types[arg.arg] = ref
        for sub in ast.walk(node) if body is None else _walk_body(body):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
            ):
                ref = self._class_ref(sub.value.func)
                if ref is not None:
                    types[sub.targets[0].id] = ref
            elif (
                isinstance(sub, ast.AnnAssign)
                and isinstance(sub.target, ast.Name)
            ):
                ref = _annotation_ref(sub.annotation, self.imports)
                if ref is not None:
                    types[sub.target.id] = ref
        return types

    def _class_ref(self, func: ast.expr) -> str | None:
        resolved = self.imports.resolve(func)
        if resolved is not None:
            return resolved
        if isinstance(func, ast.Name) and func.id in self.classes:
            return f"{self.module}.{func.id}"
        return None

    def _record_call(
        self, summary: FunctionSummary, node: ast.Call, types: Mapping[str, str]
    ) -> None:
        record: dict = {
            "line": node.lineno,
            "end_line": node.end_lineno or node.lineno,
            "col": node.col_offset,
        }
        func = node.func
        resolved = self.imports.resolve(func)
        bare = func.id if isinstance(func, ast.Name) else None
        attr: str | None = None
        if resolved is not None:
            record.update(kind="dotted", target=resolved)
        elif bare is not None:
            record.update(kind="local", target=bare)
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            receiver = None
            if isinstance(func.value, ast.Name):
                if func.value.id in ("self", "cls"):
                    record.update(kind="self", target=attr)
                    summary.calls.append(record)
                    self._maybe_key_call(summary, node, attr, types)
                    self._maybe_spawn_target(summary, node, attr, bare)
                    return
                receiver = types.get(func.value.id)
            record.update(kind="method", target=attr, receiver=receiver)
        else:
            return
        if isinstance(func, ast.Attribute):
            attr = func.attr
        summary.calls.append(record)
        self._maybe_key_call(summary, node, resolved or bare or attr, types)
        self._maybe_spawn_target(summary, node, attr, bare)

    def _maybe_spawn_target(
        self, summary: FunctionSummary, node: ast.Call, attr: str | None,
        bare: str | None,
    ) -> None:
        if (attr or bare) not in ("Process", "Thread"):
            return
        for keyword in node.keywords:
            if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                summary.spawn_targets.append(keyword.value.id)

    def _maybe_key_call(
        self,
        summary: FunctionSummary,
        node: ast.Call,
        call_name: str | None,
        types: Mapping[str, str],
    ) -> None:
        if call_name is None:
            return
        tail = call_name.rsplit(".", 1)[-1]
        if tail not in _KEY_CALL_NAMES and "cache_key" not in tail:
            return
        key_call: dict = {
            "name": tail,
            "line": node.lineno,
            "end_line": node.end_lineno or node.lineno,
            "col": node.col_offset,
            "global_reads": [],
            "nonfield_self": [],
            "arg_calls": [],
        }
        locals_here = set(types)
        argument_exprs: list[ast.expr] = list(node.args)
        argument_exprs.extend(kw.value for kw in node.keywords)
        enclosing = self.classes.get(summary.cls) if summary.cls else None
        for expr in argument_exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    kind = self.module_globals.get(sub.id)
                    if kind in ("mutable", "computed") and sub.id not in locals_here:
                        key_call["global_reads"].append(
                            {"name": sub.id, "kind": kind, "line": sub.lineno,
                             "col": sub.col_offset}
                        )
                elif (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    and isinstance(sub.ctx, ast.Load)
                    and enclosing is not None
                    and enclosing.is_dataclass
                ):
                    key_call["nonfield_self"].append(
                        {"attr": sub.attr, "cls": summary.cls, "line": sub.lineno,
                         "col": sub.col_offset}
                    )
                elif isinstance(sub, ast.Call):
                    resolved = self.imports.resolve(sub.func)
                    if resolved is not None:
                        key_call["arg_calls"].append(
                            {"kind": "dotted", "target": resolved,
                             "line": sub.lineno, "col": sub.col_offset}
                        )
                    elif isinstance(sub.func, ast.Name):
                        key_call["arg_calls"].append(
                            {"kind": "local", "target": sub.func.id,
                             "line": sub.lineno, "col": sub.col_offset}
                        )
                    elif isinstance(sub.func, ast.Attribute):
                        receiver = None
                        if isinstance(sub.func.value, ast.Name):
                            if sub.func.value.id in ("self", "cls"):
                                key_call["arg_calls"].append(
                                    {"kind": "self", "target": sub.func.attr,
                                     "line": sub.lineno, "col": sub.col_offset}
                                )
                                continue
                            receiver = types.get(sub.func.value.id)
                        key_call["arg_calls"].append(
                            {"kind": "method", "target": sub.func.attr,
                             "receiver": receiver, "line": sub.lineno,
                             "col": sub.col_offset}
                        )
        # Deduplicate repeated reads of the same name inside one call.
        key_call["global_reads"] = _dedupe(key_call["global_reads"], "name")
        key_call["nonfield_self"] = _dedupe(key_call["nonfield_self"], "attr")
        summary.key_calls.append(key_call)

    def _record_mutations(
        self, summary: FunctionSummary, stmt: ast.stmt, locals_: set[str]
    ) -> None:
        def is_module_global(name: str) -> bool:
            return name in self.module_globals and name not in locals_

        for node in ast.walk(stmt):
            target: ast.expr | None = None
            op = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript) and isinstance(
                        tgt.value, ast.Name
                    ) and is_module_global(tgt.value.id):
                        target, op = tgt.value, "subscript-assign"
                    elif (
                        isinstance(tgt, ast.Name)
                        and isinstance(node, ast.Assign)
                        and tgt.id in self.module_globals
                        and tgt.id not in locals_
                        and self._declared_global(stmt, tgt.id)
                    ):
                        target, op = tgt, "rebind"
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Subscript) and isinstance(
                        tgt.value, ast.Name
                    ) and is_module_global(tgt.value.id):
                        target, op = tgt.value, "del"
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and is_module_global(node.func.value.id)
            ):
                target, op = node.func.value, node.func.attr
            if target is not None and op is not None:
                summary.mutations.append(
                    {
                        "name": target.id,
                        "op": op,
                        "line": node.lineno,
                        "end_line": node.end_lineno or node.lineno,
                        "col": node.col_offset,
                    }
                )

    @staticmethod
    def _declared_global(stmt: ast.stmt, name: str) -> bool:
        return any(
            isinstance(node, ast.Global) and name in node.names
            for node in ast.walk(stmt)
        )


def _walk_body(body: Sequence[ast.stmt]) -> Iterable[ast.AST]:
    for stmt in body:
        yield from ast.walk(stmt)


def _dedupe(records: list[dict], key: str) -> list[dict]:
    seen: set[str] = set()
    kept = []
    for record in records:
        if record[key] not in seen:
            seen.add(record[key])
            kept.append(record)
    return kept


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute) else ""
        )
        if name == "dataclass":
            return True
    return False


def _annotation_is_classvar(annotation: ast.expr) -> bool:
    return "ClassVar" in ast.dump(annotation)


def summarize_module(
    tree: ast.Module,
    path: str | Path,
    pragmas: Sequence | None = None,
) -> ModuleSummary:
    """Condense one parsed file into its :class:`ModuleSummary`.

    ``pragmas`` (``engine.Pragma`` records) mark direct effects as
    sanctioned when the flagged line carries an allowance for the
    matching per-file rule.
    """
    module, is_package = module_name_for_path(path)
    imports = ImportMap.from_tree(tree, module=module, is_package=is_package)
    pragma_rules_by_line: dict[int, frozenset[str]] = {}
    for pragma in pragmas or ():
        existing = pragma_rules_by_line.get(pragma.line, frozenset())
        pragma_rules_by_line[pragma.line] = existing | pragma.rules

    summary = ModuleSummary(
        module=module,
        path=str(path),
        is_package=is_package,
        aliases=dict(imports.aliases),
        star_imports=list(imports.star_imports),
    )

    # Pass 1: module-level bindings and class shells (the extractor needs
    # globals and local class names before it sees any function body).
    module_body: list[ast.stmt] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.ClassDef):
            class_summary = ClassSummary(name=stmt.name, line=stmt.lineno)
            class_summary.is_dataclass = _is_dataclass_decorated(stmt)
            for base in stmt.bases:
                resolved = imports.resolve(base)
                if resolved is not None:
                    class_summary.bases.append({"ref": resolved, "local": False})
                elif isinstance(base, ast.Name):
                    class_summary.bases.append({"ref": base.id, "local": True})
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    class_summary.methods.append(member.name)
                elif isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    if not _annotation_is_classvar(member.annotation):
                        class_summary.fields.append(member.target.id)
            summary.classes[stmt.name] = class_summary
            continue
        module_body.append(stmt)
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.target is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                summary.globals[target.id] = _global_kind(getattr(stmt, "value", None))

    extractor = _FunctionExtractor(
        module=module,
        imports=imports,
        module_globals=summary.globals,
        pragma_rules_by_line=pragma_rules_by_line,
        classes=summary.classes,
    )

    # Pass 2: function and method bodies, plus the synthetic module body.
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{module}.{stmt.name}"
            summary.functions[qualname] = extractor.extract(
                stmt, qualname, stmt.name, None
            )
        elif isinstance(stmt, ast.ClassDef):
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{module}.{stmt.name}.{member.name}"
                    summary.functions[qualname] = extractor.extract(
                        member, qualname, member.name, stmt.name
                    )
    if module_body:
        qualname = f"{module}.{MODULE_BODY}"
        summary.functions[qualname] = extractor.extract(
            tree, qualname, MODULE_BODY, None, body=module_body
        )
    return summary


# ---------------------------------------------------------------------------
# Program assembly and call resolution


class Program:
    """The resolved multi-module view: symbols, hierarchy, call edges."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        self.functions: dict[str, FunctionSummary] = {}
        self.function_module: dict[str, str] = {}
        self.classes: dict[str, ClassSummary] = {}
        self.class_module: dict[str, str] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        for module_name, summary in self.modules.items():
            for qualname, function in summary.functions.items():
                self.functions[qualname] = function
                self.function_module[qualname] = module_name
                if function.cls is not None:
                    self.methods_by_name.setdefault(function.name, []).append(qualname)
            for class_name in summary.classes:
                self.classes[f"{module_name}.{class_name}"] = summary.classes[class_name]
                self.class_module[f"{module_name}.{class_name}"] = module_name
        self._subclasses: dict[str, set[str]] | None = None

    # -- symbol resolution ---------------------------------------------------

    def resolve_symbol(self, dotted: str, _seen: frozenset[str] = frozenset()) -> str | None:
        """Resolve a canonical dotted name to a defined function or class.

        Chases re-exports: ``repro.analysis.lint_paths`` follows the
        ``__init__.py`` import to ``repro.analysis.engine.lint_paths``.
        Returns the defining qualname, or None for out-of-program names.
        """
        if dotted in _seen:
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:split])
            module = self.modules.get(prefix)
            if module is None:
                continue
            rest = parts[split:]
            head = f"{prefix}.{rest[0]}"
            if head in self.classes and len(rest) == 2:
                resolved = self.resolve_method(head, rest[1])
                return resolved[0] if resolved else None
            if head in self.functions or head in self.classes:
                return head if len(rest) == 1 else None
            alias = module.aliases.get(rest[0])
            if alias is not None:
                chased = ".".join([alias, *rest[1:]])
                return self.resolve_symbol(chased, _seen | {dotted})
            for star in module.star_imports:
                chased = ".".join([star, *rest])
                resolved = self.resolve_symbol(chased, _seen | {dotted})
                if resolved is not None:
                    return resolved
        return None

    # -- class hierarchy -----------------------------------------------------

    def base_classes(self, class_qual: str) -> list[str]:
        summary = self.classes.get(class_qual)
        if summary is None:
            return []
        module = self.class_module[class_qual]
        resolved: list[str] = []
        for base in summary.bases:
            if base["local"]:
                candidate = f"{module}.{base['ref']}"
                if candidate in self.classes:
                    resolved.append(candidate)
                    continue
                alias = self.modules[module].aliases.get(base["ref"])
                if alias is not None:
                    chased = self.resolve_symbol(alias)
                    if chased in self.classes:
                        resolved.append(chased)
            else:
                chased = self.resolve_symbol(base["ref"])
                if chased is not None and chased in self.classes:
                    resolved.append(chased)
        return resolved

    def mro(self, class_qual: str) -> list[str]:
        """Linearised ancestry, depth-first (good enough for method lookup)."""
        order: list[str] = []
        stack = [class_qual]
        seen: set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            stack.extend(self.base_classes(current))
        return order

    def subclasses(self, class_qual: str) -> set[str]:
        if self._subclasses is None:
            children: dict[str, set[str]] = {}
            for qual in self.classes:
                for base in self.base_classes(qual):
                    children.setdefault(base, set()).add(qual)
            self._subclasses = children
        descendants: set[str] = set()
        frontier = deque(self._subclasses.get(class_qual, ()))
        while frontier:
            current = frontier.popleft()
            if current in descendants:
                continue
            descendants.add(current)
            frontier.extend(self._subclasses.get(current, ()))
        return descendants

    def resolve_method(self, class_qual: str, name: str) -> list[str]:
        """Method candidates: MRO match plus overrides in descendants.

        Including descendant overrides is what lets an effect inside a
        concrete ``_fold`` implementation taint the abstract
        ``ProfileState.update`` that dispatches to it.
        """
        candidates: list[str] = []
        for ancestor in self.mro(class_qual):
            candidate = f"{ancestor}.{name}"
            if candidate in self.functions:
                candidates.append(candidate)
                break
        for descendant in sorted(self.subclasses(class_qual)):
            candidate = f"{descendant}.{name}"
            if candidate in self.functions:
                candidates.append(candidate)
        return candidates

    # -- call edges ----------------------------------------------------------

    def resolve_call(self, caller: str, call: Mapping) -> set[str]:
        kind = call["kind"]
        module = self.function_module[caller]
        if kind == "dotted":
            return self._edges_for_symbol(call["target"])
        if kind == "local":
            candidate = f"{module}.{call['target']}"
            if candidate in self.functions:
                return {candidate}
            if candidate in self.classes:
                return self._constructor_edges(candidate)
            return set()
        if kind == "self":
            function = self.functions[caller]
            if function.cls is None:
                return set()
            return set(self.resolve_method(f"{module}.{function.cls}", call["target"]))
        if kind == "method":
            receiver = call.get("receiver")
            if receiver is not None:
                class_qual = self._receiver_class(module, receiver)
                if class_qual is not None:
                    return set(self.resolve_method(class_qual, call["target"]))
            # Untyped receiver: over-approximate with every known method
            # of that name. A spurious edge only widens reachability.
            return set(self.methods_by_name.get(call["target"], ()))
        return set()

    def _receiver_class(self, module: str, receiver: str) -> str | None:
        if receiver in self.classes:
            return receiver
        local = f"{module}.{receiver}"
        if local in self.classes:
            return local
        chased = self.resolve_symbol(receiver)
        if chased is not None and chased in self.classes:
            return chased
        return None

    def _edges_for_symbol(self, dotted: str) -> set[str]:
        resolved = self.resolve_symbol(dotted)
        if resolved is None:
            return set()
        if resolved in self.classes:
            return self._constructor_edges(resolved)
        return {resolved}

    def _constructor_edges(self, class_qual: str) -> set[str]:
        edges = set()
        for ancestor in self.mro(class_qual):
            for method in ("__init__", "__post_init__"):
                candidate = f"{ancestor}.{method}"
                if candidate in self.functions:
                    edges.add(candidate)
        return edges


def build_program(summaries: Iterable[ModuleSummary]) -> Program:
    return Program(summaries)


# ---------------------------------------------------------------------------
# Roots: the entry points whole-program rules anchor on


def detect_roots(program: Program) -> dict[str, tuple[str, ...]]:
    """Analysis entry points, by category.

    ``stage``
        every function/method defined in a ``core/stages.py`` module,
        plus the :data:`_STAGE_METHODS` of classes in ``core/pipeline.py``;
    ``worker``
        functions handed to a ``Process(target=...)`` constructor, plus
        ``evaluate_cell`` in any module that spawns workers or defines a
        ``ProcessCellExecutor``;
    ``profile_update``
        ``update`` on any class named ``ProfileState`` or descending
        from one.
    """
    stage: set[str] = set()
    worker: set[str] = set()
    profile_update: set[str] = set()

    spawn_modules: set[str] = set()
    for qualname, function in program.functions.items():
        module = program.function_module[qualname]
        parts = module.split(".")
        if parts[-2:] == ["core", "stages"] and function.name != MODULE_BODY:
            stage.add(qualname)
        if (
            parts[-2:] == ["core", "pipeline"]
            and function.cls is not None
            and function.name in _STAGE_METHODS
        ):
            stage.add(qualname)
        for target in function.spawn_targets:
            resolved = program.resolve_call(qualname, {"kind": "local", "target": target})
            if not resolved:
                resolved = program._edges_for_symbol(target)
            worker.update(resolved)
            spawn_modules.add(module)

    for class_qual, summary in program.classes.items():
        if summary.name == "ProcessCellExecutor":
            spawn_modules.add(program.class_module[class_qual])

    for qualname, function in program.functions.items():
        module = program.function_module[qualname]
        if (
            function.name == "evaluate_cell"
            and function.cls is None
            and module in spawn_modules
        ):
            worker.add(qualname)

    profile_roots = {
        qual for qual, summary in program.classes.items()
        if summary.name == "ProfileState"
    }
    for class_qual in list(profile_roots):
        profile_roots |= program.subclasses(class_qual)
    for class_qual in profile_roots:
        candidate = f"{class_qual}.update"
        if candidate in program.functions:
            profile_update.add(candidate)

    return {
        "stage": tuple(sorted(stage)),
        "worker": tuple(sorted(worker)),
        "profile_update": tuple(sorted(profile_update)),
    }


# ---------------------------------------------------------------------------
# The assembled analysis


@dataclass
class ProgramAnalysis:
    """Call graph + effect fixed point + roots, ready for rules/export."""

    program: Program
    edges: dict[str, tuple[str, ...]]
    roots: dict[str, tuple[str, ...]]
    #: Transitive effects including pragma-sanctioned origins (report view).
    effects: dict[str, set[str]]
    witness: dict[str, dict[str, str | None]]
    #: Transitive effects excluding sanctioned origins (rule view).
    strict_effects: dict[str, set[str]]
    strict_witness: dict[str, dict[str, str | None]]

    def reachable_from(self, roots: Iterable[str]) -> dict[str, str | None]:
        """BFS over call edges; function -> parent (roots map to None)."""
        parents: dict[str, str | None] = {}
        frontier = deque()
        for root in roots:
            if root in self.program.functions and root not in parents:
                parents[root] = None
                frontier.append(root)
        while frontier:
            current = frontier.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in parents:
                    parents[callee] = current
                    frontier.append(callee)
        return parents

    def call_path(self, target: str, parents: Mapping[str, str | None]) -> list[str]:
        """Root-to-target chain reconstructed from BFS parent pointers."""
        path = [target]
        current: str | None = target
        while current is not None:
            current = parents.get(current)
            if current is not None:
                path.append(current)
        path.reverse()
        return path

    def effect_origin_path(self, qualname: str, effect: str) -> list[str]:
        return effects_mod.witness_path(qualname, effect, self.strict_witness)

    def display_path(self, qualname: str) -> str:
        module = self.program.function_module.get(qualname)
        if module is None:
            return "?"
        return self.program.modules[module].path


def build_analysis(summaries: Iterable[ModuleSummary]) -> ProgramAnalysis:
    """Assemble the program, resolve edges, run the effect fixed point."""
    program = build_program(summaries)
    edges: dict[str, tuple[str, ...]] = {}
    for qualname, function in program.functions.items():
        resolved: set[str] = set()
        for call in function.calls:
            resolved |= program.resolve_call(qualname, call)
        resolved.discard(qualname)
        edges[qualname] = tuple(sorted(resolved))
    direct = {
        qualname: function.effects for qualname, function in program.functions.items()
    }
    effects, witness = effects_mod.propagate_effects(
        direct, edges, include_sanctioned=True
    )
    strict_effects, strict_witness = effects_mod.propagate_effects(
        direct, edges, include_sanctioned=False
    )
    return ProgramAnalysis(
        program=program,
        edges=edges,
        roots=detect_roots(program),
        effects=effects,
        witness=witness,
        strict_effects=strict_effects,
        strict_witness=strict_witness,
    )


# ---------------------------------------------------------------------------
# Exports


def analysis_to_json(analysis: ProgramAnalysis) -> dict:
    """The ``--graph out.json`` document: nodes, edges, effects, roots."""
    functions = []
    for qualname in sorted(analysis.program.functions):
        function = analysis.program.functions[qualname]
        functions.append(
            {
                "qualname": qualname,
                "module": analysis.program.function_module[qualname],
                "file": analysis.display_path(qualname),
                "line": function.line,
                "effects": sorted(analysis.effects.get(qualname, ())),
                "strict_effects": sorted(analysis.strict_effects.get(qualname, ())),
                "calls": list(analysis.edges.get(qualname, ())),
            }
        )
    return {
        "version": GRAPH_FORMAT_VERSION,
        "modules": sorted(analysis.program.modules),
        "functions": functions,
        "edges": sorted(
            [caller, callee]
            for caller, callees in analysis.edges.items()
            for callee in callees
        ),
        "roots": {k: list(v) for k, v in sorted(analysis.roots.items())},
    }


def analysis_to_dot(analysis: ProgramAnalysis) -> str:
    """A Graphviz rendering of the call graph, effects as node labels."""
    lines = [
        "digraph reprolint {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace", fontsize=9];',
    ]
    root_set = {qual for quals in analysis.roots.values() for qual in quals}
    for qualname in sorted(analysis.program.functions):
        effect_list = sorted(analysis.effects.get(qualname, ()))
        label = qualname
        if effect_list:
            label += "\\n[" + ", ".join(effect_list) + "]"
        attributes = [f'label="{label}"']
        if qualname in root_set:
            attributes.append('style=filled, fillcolor="lightblue"')
        lines.append(f'  "{qualname}" [{", ".join(attributes)}];')
    for caller in sorted(analysis.edges):
        for callee in analysis.edges[caller]:
            lines.append(f'  "{caller}" -> "{callee}";')
    lines.append("}")
    return "\n".join(lines)
