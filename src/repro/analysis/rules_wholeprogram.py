"""Whole-program rules: invariants that only hold across module edges.

These rules consume a :class:`repro.analysis.graph.ProgramAnalysis` --
the assembled call graph, the transitive effect sets and the detected
roots -- rather than a single file. Each finding is anchored at a
concrete source position (so suppression pragmas keep working) and
carries the call chain that makes it reachable, reported as a
``call path:`` line under the message.

``RPR011`` cache-key-provenance
    a value flowing into ``artifact_key`` / ``canonical_params`` (or any
    ``*cache_key*`` constructor) must derive from declared dataclass
    fields or immutable module constants -- anything else can change
    without changing the key, silently serving stale artifacts.
``RPR012`` fork-safety
    module-level mutable state written by code reachable from a
    process-pool worker entry point diverges between the parent and the
    workers; results must flow back through the sanctioned telemetry
    channel (``Telemetry.absorb``) instead.
``RPR013`` nondeterminism-reachability
    an unseeded RNG draw, wall-clock read or unordered float
    accumulation reachable from an evaluation stage or
    ``ProfileState.update`` breaks row-level reproducibility; the
    per-file rules (RPR001/002/003) see the origin, this rule sees the
    chain. Effects already pragma'd at their origin for the per-file
    rule are *sanctioned* and do not taint callers.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.analysis.base import ProgramRule, Violation, register_program_rule

__all__ = [
    "CacheKeyProvenanceRule",
    "ForkSafetyRule",
    "NondeterminismReachabilityRule",
]

#: The effect kinds that break bit-identical rows when they reach a stage.
_NONDETERMINISM = ("rng", "wall_clock", "set_iteration_float_sum")

_EFFECT_LABEL = {
    "rng": "unseeded RNG",
    "wall_clock": "wall-clock read",
    "set_iteration_float_sum": "float accumulation over an unordered iterable",
}


def _anchor(analysis, qualname: str, record: Mapping) -> dict:
    """Violation position kwargs for an effect/mutation record."""
    return {
        "path": analysis.display_path(qualname),
        "line": record["line"],
        "col": record.get("col", 0),
        "end_line": record.get("end_line", record["line"]),
    }


@register_program_rule
class CacheKeyProvenanceRule(ProgramRule):
    id = "RPR011"
    name = "cache-key-provenance"
    summary = (
        "cache-key constructors must be fed from declared dataclass fields "
        "or immutable constants"
    )
    invariant = (
        "An ArtifactCache key changes exactly when the inputs it stands "
        "for change; values read from mutable module state, undeclared "
        "attributes or effectful calls can drift without touching the key."
    )

    def check(self, analysis) -> Iterator[Violation]:
        program = analysis.program
        for qualname, function in program.functions.items():
            for key_call in function.key_calls:
                yield from self._check_global_reads(analysis, qualname, key_call)
                yield from self._check_self_reads(
                    analysis, program, qualname, function, key_call
                )
                yield from self._check_arg_calls(analysis, qualname, key_call)

    def _check_global_reads(self, analysis, qualname, key_call):
        for read in key_call["global_reads"]:
            yield Violation(
                rule=self.id,
                message=(
                    f"{key_call['name']}() argument reads module-level "
                    f"{read['kind']} binding '{read['name']}' -- cache keys "
                    "must derive from declared dataclass fields or literal "
                    "constants, or the key goes stale when the binding moves"
                ),
                chain=(qualname,),
                **_anchor(analysis, qualname, key_call),
            )

    def _check_self_reads(self, analysis, program, qualname, function, key_call):
        if function.cls is None:
            return
        module = program.function_module[qualname]
        class_qual = f"{module}.{function.cls}"
        declared: set[str] = set()
        for ancestor in program.mro(class_qual):
            summary = program.classes.get(ancestor)
            if summary is not None:
                declared.update(summary.fields)
        for read in key_call["nonfield_self"]:
            if read["attr"] in declared:
                continue
            yield Violation(
                rule=self.id,
                message=(
                    f"{key_call['name']}() argument reads self.{read['attr']}, "
                    f"which is not a declared dataclass field of "
                    f"{function.cls} -- undeclared attributes are invisible "
                    "to the key and can change without invalidating it"
                ),
                chain=(qualname,),
                **_anchor(analysis, qualname, key_call),
            )

    def _check_arg_calls(self, analysis, qualname, key_call):
        for call in key_call["arg_calls"]:
            targets = analysis.program.resolve_call(qualname, call)
            for target in sorted(targets):
                tainted = analysis.strict_effects.get(target, set()) & {
                    "rng",
                    "wall_clock",
                }
                for effect in sorted(tainted):
                    origin = analysis.effect_origin_path(target, effect)
                    yield Violation(
                        rule=self.id,
                        message=(
                            f"{key_call['name']}() argument calls "
                            f"{call['target']}(), which transitively performs "
                            f"a {_EFFECT_LABEL[effect]} -- the key would "
                            "change between identical runs"
                        ),
                        chain=(qualname, *origin),
                        **_anchor(analysis, qualname, key_call),
                    )


@register_program_rule
class ForkSafetyRule(ProgramRule):
    id = "RPR012"
    name = "fork-safety"
    summary = (
        "worker-reachable code must not mutate module-level state outside "
        "the telemetry absorb channel"
    )
    invariant = (
        "Rows from `--jobs N` are bit-identical to serial rows; state "
        "mutated inside a forked worker never propagates back, so "
        "anything beyond Telemetry.absorb-merged telemetry silently "
        "diverges between the two modes."
    )

    def check(self, analysis) -> Iterator[Violation]:
        roots = analysis.roots.get("worker", ())
        if not roots:
            return
        parents = analysis.reachable_from(roots)
        seen: set[tuple[str, str]] = set()
        for qualname in sorted(parents):
            function = analysis.program.functions.get(qualname)
            if function is None or not function.mutations:
                continue
            if self._is_absorb_channel(qualname, function):
                continue
            path = analysis.call_path(qualname, parents)
            for mutation in function.mutations:
                key = (qualname, mutation["name"])
                if key in seen:
                    continue
                seen.add(key)
                yield Violation(
                    rule=self.id,
                    message=(
                        f"module-level mutable state '{mutation['name']}' is "
                        f"mutated ({mutation['op']}) by {qualname}, which is "
                        f"reachable from worker entry point {path[0]} -- "
                        "worker-side mutations never reach the parent; merge "
                        "results through Telemetry.absorb instead"
                    ),
                    chain=tuple(path),
                    **_anchor(analysis, qualname, mutation),
                )

    @staticmethod
    def _is_absorb_channel(qualname: str, function) -> bool:
        # Telemetry.absorb (and the absorb/merge methods it delegates to)
        # is the sanctioned parent-side merge point; its own mutations are
        # the mechanism, not a leak.
        return function.name == "absorb" or function.cls == "Telemetry"


@register_program_rule
class NondeterminismReachabilityRule(ProgramRule):
    id = "RPR013"
    name = "nondeterminism-reachability"
    summary = (
        "no unseeded RNG, wall clock or unordered float accumulation may "
        "be reachable from an evaluation stage or profile update"
    )
    invariant = (
        "Every number in the sweep grid is a pure function of "
        "(config, source, seed); a nondeterministic effect anywhere on a "
        "stage's call chain breaks the paper's comparative claims."
    )

    def check(self, analysis) -> Iterator[Violation]:
        roots = [
            *analysis.roots.get("stage", ()),
            *analysis.roots.get("profile_update", ()),
        ]
        if not roots:
            return
        parents = analysis.reachable_from(roots)
        seen: set[tuple[str, str, int]] = set()
        for qualname in sorted(parents):
            function = analysis.program.functions.get(qualname)
            if function is None:
                continue
            for record in function.effects:
                effect = record["effect"]
                if effect not in _NONDETERMINISM or record.get("sanctioned"):
                    continue
                key = (qualname, effect, record["line"])
                if key in seen:
                    continue
                seen.add(key)
                path = analysis.call_path(qualname, parents)
                yield Violation(
                    rule=self.id,
                    message=(
                        f"{_EFFECT_LABEL[effect]} ({record['detail']}) is "
                        f"reachable from {path[0]} -- every value on a "
                        "stage's call chain must be a pure function of "
                        "(config, source, seed)"
                    ),
                    chain=tuple(path),
                    **_anchor(analysis, qualname, record),
                )
