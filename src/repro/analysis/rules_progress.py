"""RPR009: sweep progress goes through the EventLog, not the console.

``repro monitor``, the journal heartbeats and the ``--log-json`` stream
all observe a sweep through :class:`repro.obs.events.EventLog` sinks. An
ad-hoc ``print(...)`` or ``sys.stderr.write(...)`` inside the sweep
machinery is progress state those observers never see -- and raw console
writes from pool workers interleave across processes. Executors and the
runner must emit events; rendering (the console progress sinks in
:mod:`repro.obs.progress`) subscribes like any other sink.

The rule scopes to ``src/repro/experiments`` only: reports, the CLI and
the obs sinks themselves legitimately write to the console.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import FileContext, Rule, Violation, register_rule

__all__ = ["EventLogProgressRule"]

#: Canonical dotted names of direct console stream writes.
_STREAM_WRITES = frozenset(
    {
        "sys.stdout.write",
        "sys.stdout.writelines",
        "sys.stderr.write",
        "sys.stderr.writelines",
    }
)


@register_rule
class EventLogProgressRule(Rule):
    id = "RPR009"
    name = "eventlog-progress"
    summary = "console write inside the sweep machinery (src/repro/experiments)"
    invariant = (
        "progress and heartbeat state is emitted through the EventLog API, "
        "so monitors, journals and JSON logs see everything the console "
        "would -- and pool workers never interleave raw writes"
    )
    library_only = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if "src/repro/experiments" not in ctx.path.as_posix():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield ctx.violation(
                    self, node,
                    "print(...) in the sweep machinery: emit an event via "
                    "EventLog.emit(...) and let an obs progress sink render it",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and ctx.imports.resolve(node.func) in _STREAM_WRITES
            ):
                yield ctx.violation(
                    self, node,
                    f"sys stream write in the sweep machinery: emit an event "
                    f"via EventLog.emit(...) instead of "
                    f"{ctx.imports.resolve(node.func)}(...)",
                )
