"""Rule base classes and the rule registry for ``reprolint``.

A :class:`Rule` inspects one parsed file (wrapped in a
:class:`FileContext`) and yields :class:`Violation` records. Rules are
registered with :func:`register_rule` and instantiated by
:func:`default_rules`, so downstream code (and tests) can compose rule
sets freely -- the engine never hard-codes the rule list.

Rule identifiers follow ``RPRnnn``. Identifiers below 900 are invariant
rules; the 900 range is reserved for the engine itself (``RPR900``
unused-suppression-pragma).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import ClassVar

from repro.analysis.names import ImportMap
from repro.errors import ConfigurationError

__all__ = [
    "PROGRAM_RULE_REGISTRY",
    "RULE_REGISTRY",
    "UNUSED_PRAGMA_RULE",
    "FileContext",
    "ProgramRule",
    "Rule",
    "Violation",
    "default_program_rules",
    "default_rules",
    "register_program_rule",
    "register_rule",
]

#: Engine-level rule id for a suppression pragma that suppressed nothing.
UNUSED_PRAGMA_RULE = "RPR900"


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, anchored to a file position.

    ``end_line`` is the last physical line of the flagged statement: a
    suppression pragma anywhere in ``[line, end_line]`` silences the
    violation, so multi-line calls can carry the pragma on any of their
    lines.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    end_line: int = field(default=0, compare=False)
    #: For whole-program rules: the call chain (root -> ... -> origin)
    #: that makes the finding reachable. Empty for per-file rules.
    chain: tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)
        if not isinstance(self.chain, tuple):
            object.__setattr__(self, "chain", tuple(self.chain))

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.chain:
            text += "\n    call path: " + " -> ".join(self.chain)
        return text

    def to_payload(self) -> dict:
        """JSON-serialisable form, for the incremental cache."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "end_line": self.end_line,
            "chain": list(self.chain),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Violation":
        return cls(
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            rule=payload["rule"],
            message=payload["message"],
            end_line=payload["end_line"],
            chain=tuple(payload.get("chain", ())),
        )


class FileContext:
    """One file's parse state, shared by every rule that inspects it."""

    def __init__(self, path: str | Path, source: str, tree: ast.Module):
        self.path = Path(path)
        self.display = str(path)
        self.source = source
        self.tree = tree

    @cached_property
    def is_library(self) -> bool:
        """Whether this file belongs to the installable library.

        Library-only rules (seeded-RNG, error-taxonomy, wall-clock
        discipline) apply to ``src/repro`` but not to tests or
        benchmarks, which may legitimately raise builtins or read the
        clock.
        """
        return "src/repro" in self.path.as_posix()

    @cached_property
    def imports(self) -> ImportMap:
        return ImportMap.from_tree(self.tree)

    def violation(
        self, rule: "Rule | str", node: ast.AST, message: str
    ) -> Violation:
        """Build a violation anchored at ``node``."""
        rule_id = rule if isinstance(rule, str) else rule.id
        return Violation(
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule_id,
            message=message,
            end_line=getattr(node, "end_lineno", None) or getattr(node, "lineno", 1),
        )


class Rule:
    """Base class: one invariant, one ``RPRnnn`` identifier.

    Subclasses set the class attributes (used by ``--list-rules``, the
    docs and the JSON output) and implement :meth:`check`.
    """

    #: "RPRnnn" identifier, unique across the registry.
    id: ClassVar[str]
    #: Short kebab-case name, e.g. "seeded-rng".
    name: ClassVar[str]
    #: One-line description of what the rule flags.
    summary: ClassVar[str]
    #: The repo invariant the rule protects (shown by ``--list-rules``).
    invariant: ClassVar[str]
    #: Only inspect files under ``src/repro`` when True.
    library_only: ClassVar[bool] = False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> Iterator[Violation]:
        """Apply scoping, then delegate to :meth:`check`."""
        if self.library_only and not ctx.is_library:
            return
        yield from self.check(ctx)


class ProgramRule:
    """Base class for whole-program rules (RPR011+).

    Unlike :class:`Rule`, a program rule sees the *assembled program* --
    the call graph, the effect fixed point and the detected roots
    (a :class:`repro.analysis.graph.ProgramAnalysis`) -- and may anchor
    findings in any analysed file. Suppression pragmas still apply: the
    engine matches each finding against the pragmas of the file it is
    anchored in.
    """

    #: "RPRnnn" identifier, unique across both registries.
    id: ClassVar[str]
    #: Short kebab-case name, e.g. "cache-key-provenance".
    name: ClassVar[str]
    #: One-line description of what the rule flags.
    summary: ClassVar[str]
    #: The repo invariant the rule protects (shown by ``--list-rules``).
    invariant: ClassVar[str]
    #: Program rules analyse the library call graph; findings outside
    #: ``src/repro`` are dropped when True.
    library_only: ClassVar[bool] = True

    def check(self, analysis) -> Iterator[Violation]:
        raise NotImplementedError

    def run(self, analysis) -> Iterator[Violation]:
        """Apply library scoping, then delegate to :meth:`check`."""
        for violation in self.check(analysis):
            if self.library_only and "src/repro" not in Path(
                violation.path
            ).as_posix():
                continue
            yield violation


#: id -> rule class, populated by :func:`register_rule` at import time.
RULE_REGISTRY: dict[str, type[Rule]] = {}

#: id -> program rule class, populated by :func:`register_program_rule`.
PROGRAM_RULE_REGISTRY: dict[str, type[ProgramRule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add ``cls`` to the registry, keyed by its id."""
    existing = RULE_REGISTRY.get(cls.id)
    if existing is not None and existing is not cls:
        raise ConfigurationError(f"duplicate rule id {cls.id}: {existing} vs {cls}")
    if cls.id in PROGRAM_RULE_REGISTRY:
        raise ConfigurationError(
            f"duplicate rule id {cls.id}: already a program rule"
        )
    RULE_REGISTRY[cls.id] = cls
    return cls


def register_program_rule(cls: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator: register a whole-program rule, keyed by its id."""
    existing = PROGRAM_RULE_REGISTRY.get(cls.id)
    if existing is not None and existing is not cls:
        raise ConfigurationError(f"duplicate rule id {cls.id}: {existing} vs {cls}")
    if cls.id in RULE_REGISTRY:
        raise ConfigurationError(
            f"duplicate rule id {cls.id}: already a per-file rule"
        )
    PROGRAM_RULE_REGISTRY[cls.id] = cls
    return cls


def default_rules() -> list[Rule]:
    """One instance of every registered per-file rule, in id order."""
    # Importing the package registers the built-in rules; this import is
    # intentionally lazy so base.py itself has no rule dependencies.
    import repro.analysis  # noqa: F401

    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]


def default_program_rules() -> list[ProgramRule]:
    """One instance of every registered program rule, in id order."""
    import repro.analysis  # noqa: F401

    return [
        PROGRAM_RULE_REGISTRY[rule_id]()
        for rule_id in sorted(PROGRAM_RULE_REGISTRY)
    ]
