"""Lint report rendering: human text and machine JSON.

The JSON document is versioned and stable (violations in path/line/col
order, keys sorted), so CI can diff two runs or gate on
``.violations | length`` without worrying about ordering noise::

    {
      "version": 2,
      "files_checked": 170,
      "violations": [
        {"file": "src/repro/x.py", "line": 12, "col": 4,
         "rule": "RPR013", "message": "...",
         "call_path": ["repro.core.stages.fit_model", "repro.models.x._draw"]}
      ],
      "errors": [],
      "cache": {"hits": 168, "misses": 2},
      "baselined": 0
    }

Version 2 added ``call_path`` per violation (empty for per-file rules)
plus the ``cache`` and ``baselined`` summary fields.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.base import ProgramRule, Rule
from repro.analysis.engine import LintReport

__all__ = ["JSON_FORMAT_VERSION", "format_json", "format_rules", "format_text"]

#: Format marker for the JSON output document.
JSON_FORMAT_VERSION = 2


def format_text(report: LintReport) -> str:
    """``path:line:col: RPRnnn message`` lines plus a summary tail."""
    lines = [violation.format() for violation in report.violations]
    for error in report.errors:
        lines.append(f"error: {error}")
    n = len(report.violations)
    if report.errors:
        lines.append(f"{len(report.errors)} error(s) while linting")
    if n:
        files = len({v.path for v in report.violations})
        lines.append(
            f"{n} violation(s) in {files} file(s) "
            f"({report.files_checked} checked)"
        )
    else:
        lines.append(f"clean: {report.files_checked} file(s) checked")
    if report.baselined:
        lines.append(f"{report.baselined} pre-existing finding(s) baselined")
    if report.cache_hits or report.cache_misses:
        lines.append(
            f"incremental cache: {report.cache_hits} hit(s), "
            f"{report.cache_misses} miss(es)"
        )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """The versioned JSON document described in the module docstring."""
    payload = {
        "version": JSON_FORMAT_VERSION,
        "files_checked": report.files_checked,
        "violations": [
            {
                "file": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule,
                "message": violation.message,
                "call_path": list(violation.chain),
            }
            for violation in report.violations
        ],
        "errors": list(report.errors),
        "cache": {"hits": report.cache_hits, "misses": report.cache_misses},
        "baselined": report.baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_rules(rules: Sequence[Rule | ProgramRule]) -> str:
    """The ``--list-rules`` table: id, name, scope, invariant."""
    lines = []
    for rule in rules:
        if isinstance(rule, ProgramRule):
            scope = "whole-program"
        elif rule.library_only:
            scope = "src/repro"
        else:
            scope = "all code"
        lines.append(f"{rule.id}  {rule.name}  [{scope}]")
        lines.append(f"    flags: {rule.summary}")
        lines.append(f"    protects: {rule.invariant}")
    return "\n".join(lines)
