"""Import-aware name resolution for AST rules and the call graph.

Rules match call sites by *canonical dotted name* --
``numpy.random.default_rng`` -- regardless of how the module spelled the
import (``import numpy as np``, ``from numpy import random as npr``,
``from numpy.random import default_rng``). :class:`ImportMap` records
what each local name binds to; :meth:`ImportMap.resolve` unwinds an
attribute chain back to that binding.

``from datetime import datetime`` maps the local ``datetime`` to the
canonical ``datetime.datetime``, so ``datetime.now()`` and
``datetime.datetime.now()`` both resolve to ``datetime.datetime.now``.

The whole-program analyzer (:mod:`repro.analysis.graph`) needs two
extensions the per-file rules never did:

* **relative imports** -- ``from .stages import artifact_key`` inside
  ``repro.core.pipeline`` must canonicalise to
  ``repro.core.stages.artifact_key``, which requires knowing the
  importing module's own dotted name
  (:func:`module_name_for_path`);
* **star imports** -- ``from x import *`` binds names the per-file pass
  cannot enumerate, so the map records the starred module and the
  program-level resolver consults that module's definitions.
"""

from __future__ import annotations

import ast
from pathlib import Path

__all__ = ["ImportMap", "module_name_for_path"]

#: from-imports of these names resolve to a canonical class path, so the
#: two import spellings converge on one dotted name.
_CLASS_CANONICAL = {
    ("datetime", "datetime"): "datetime.datetime",
    ("datetime", "date"): "datetime.date",
}


def module_name_for_path(path: str | Path) -> tuple[str, bool]:
    """Dotted module name of ``path``, derived from package structure.

    Walks parent directories while they contain ``__init__.py``, so
    ``src/repro/core/stages.py`` becomes ``repro.core.stages`` and
    ``src/repro/analysis/__init__.py`` becomes ``repro.analysis``.
    Returns ``(module_name, is_package)`` where ``is_package`` marks a
    package ``__init__`` file. A file outside any package resolves to
    its bare stem, which keeps single-file fixtures analysable.
    """
    path = Path(path)
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    current = path.parent
    while current.name and (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    if not parts:
        parts = [path.stem]
    return ".".join(parts), is_package


def _resolve_relative(module: str, is_package: bool, node: ast.ImportFrom) -> str | None:
    """Absolute target module of a relative import, or None if unknown."""
    parts = module.split(".")
    # ``from . import x`` inside package module a.b.c refers to a.b; the
    # package __init__ itself counts as one level shallower.
    keep = len(parts) - node.level + (1 if is_package else 0)
    if keep < 0:
        return None
    prefix = ".".join(parts[:keep])
    if node.module:
        return f"{prefix}.{node.module}" if prefix else node.module
    return prefix or None


class ImportMap:
    """Maps local names to the canonical dotted path they import."""

    def __init__(self, aliases: dict[str, str], star_imports: list[str] | None = None):
        self.aliases = aliases
        #: Modules imported via ``from x import *``, in source order.
        #: Their bindings are unknowable per-file; the program-level
        #: resolver falls back to them when a bare name has no alias.
        self.star_imports = star_imports if star_imports is not None else []

    @classmethod
    def from_tree(
        cls,
        tree: ast.Module,
        module: str | None = None,
        is_package: bool = False,
    ) -> "ImportMap":
        """Build the map; ``module`` enables relative-import resolution.

        Without ``module`` (the per-file rule default), relative imports
        cannot be anchored and are skipped, exactly as before.
        """
        aliases: dict[str, str] = {}
        star_imports: list[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the top name only.
                        top = alias.name.split(".", 1)[0]
                        aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    if module is None:
                        continue
                    target = _resolve_relative(module, is_package, node)
                    if target is None:
                        continue
                elif node.module:
                    target = node.module
                else:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        star_imports.append(target)
                        continue
                    canonical = _CLASS_CANONICAL.get(
                        (target, alias.name), f"{target}.{alias.name}"
                    )
                    aliases[alias.asname or alias.name] = canonical
        return cls(aliases, star_imports)

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of ``node``, or None if not import-rooted.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` under
        ``import numpy as np``; a bare local name that was never
        imported resolves to None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)])
