"""Import-aware name resolution for AST rules.

Rules match call sites by *canonical dotted name* --
``numpy.random.default_rng`` -- regardless of how the module spelled the
import (``import numpy as np``, ``from numpy import random as npr``,
``from numpy.random import default_rng``). :class:`ImportMap` records
what each local name binds to; :meth:`ImportMap.resolve` unwinds an
attribute chain back to that binding.

``from datetime import datetime`` maps the local ``datetime`` to the
canonical ``datetime.datetime``, so ``datetime.now()`` and
``datetime.datetime.now()`` both resolve to ``datetime.datetime.now``.
"""

from __future__ import annotations

import ast

__all__ = ["ImportMap"]

#: from-imports of these names resolve to a canonical class path, so the
#: two import spellings converge on one dotted name.
_CLASS_CANONICAL = {
    ("datetime", "datetime"): "datetime.datetime",
    ("datetime", "date"): "datetime.date",
}


class ImportMap:
    """Maps local names to the canonical dotted path they import."""

    def __init__(self, aliases: dict[str, str]):
        self.aliases = aliases

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the top name only.
                        top = alias.name.split(".", 1)[0]
                        aliases[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    canonical = _CLASS_CANONICAL.get(
                        (node.module, alias.name), f"{node.module}.{alias.name}"
                    )
                    aliases[alias.asname or alias.name] = canonical
        return cls(aliases)

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of ``node``, or None if not import-rooted.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` under
        ``import numpy as np``; a bare local name that was never
        imported resolves to None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)])
