"""Effect inference: per-function effect sets, propagated to fixed point.

Every function the call graph knows gets a *direct* effect set extracted
from its own AST, then a transitive set computed by propagating callee
effects over the graph until nothing changes. The effect vocabulary is
the repo's reproducibility taxonomy:

``rng``
    unseeded RNG construction or a draw from hidden global RNG state
    (the RPR001 patterns);
``wall_clock``
    a wall-clock read -- ``time.time``, ``datetime.now`` and friends
    (the RPR003 set; ``perf_counter``/``monotonic`` stay clean);
``set_iteration_float_sum``
    float accumulation over an unordered iterable (the RPR002 patterns);
``io``
    file-system or console side effects;
``process_spawn``
    creation of worker processes or subprocesses;
``mutates_global``
    writes to module-level mutable state (attached by the summariser in
    :mod:`repro.analysis.graph`, which owns the scope analysis).

A direct effect is **sanctioned** when the flagged statement carries a
justified ``# repro: allow[...]`` pragma for the matching per-file rule
-- the author has declared the effect intentional (a telemetry
timestamp, an exact integer count). The whole-program rules propagate
only *unsanctioned* effects, so a declared effect never taints its
callers; the ``--graph`` effect report propagates everything, so the
export stays an honest account of what each function can do.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Mapping, Sequence

from repro.analysis.rules_determinism import (
    _GLOBAL_STATE_RNG,
    _SEEDED_FACTORIES,
    _WALL_CLOCK,
    _is_set_expr,
    _is_values_call,
)

__all__ = [
    "EFFECTS",
    "PRAGMA_RULE_FOR_EFFECT",
    "direct_effects",
    "propagate_effects",
    "witness_path",
]

#: The full effect vocabulary, in report order.
EFFECTS = (
    "rng",
    "wall_clock",
    "io",
    "set_iteration_float_sum",
    "process_spawn",
    "mutates_global",
)

#: Per-file rule whose pragma sanctions each effect kind. An effect with
#: no entry cannot be sanctioned by a per-file pragma (use the
#: whole-program rule's own id instead).
PRAGMA_RULE_FOR_EFFECT = {
    "rng": "RPR001",
    "wall_clock": "RPR003",
    "set_iteration_float_sum": "RPR002",
}

#: Console / file-system side effects, by canonical dotted name ...
_IO_DOTTED = {
    "json.dump",
    "json.load",
    "pickle.dump",
    "pickle.load",
    "os.remove",
    "os.unlink",
    "os.makedirs",
    "os.rename",
    "os.replace",
    "shutil.copy",
    "shutil.copytree",
    "shutil.move",
    "shutil.rmtree",
    "sys.stdout.write",
    "sys.stderr.write",
}
#: ... by bare builtin name ...
_IO_BUILTINS = {"open", "print", "input"}
#: ... and by method name (Path-style handles the receiver is untyped for).
_IO_METHODS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "unlink",
    "mkdir",
    "rmdir",
}

#: Process-creation calls by canonical dotted prefix or exact name.
_SPAWN_DOTTED_PREFIXES = ("subprocess.", "multiprocessing.")
_SPAWN_DOTTED = {"os.fork", "os.forkpty", "os.system", "os.execv", "os.spawnv"}
#: Method/class names that create processes when called on an untyped
#: receiver (``context.Process(...)``).
_SPAWN_METHODS = {"Process", "Popen"}


def _effect_record(effect: str, node: ast.AST, detail: str) -> dict:
    return {
        "effect": effect,
        "line": getattr(node, "lineno", 1),
        "end_line": getattr(node, "end_lineno", None) or getattr(node, "lineno", 1),
        "col": getattr(node, "col_offset", 0),
        "detail": detail,
        "sanctioned": False,
    }


def _call_effect(node: ast.Call, imports) -> tuple[str, str] | None:
    """Classify one call node as ``(effect, detail)``, or None."""
    resolved = imports.resolve(node.func)
    bare = node.func.id if isinstance(node.func, ast.Name) else None
    attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
    if resolved is not None:
        if resolved in _WALL_CLOCK:
            return "wall_clock", resolved
        if resolved in _GLOBAL_STATE_RNG:
            return "rng", resolved
        if resolved in _SEEDED_FACTORIES:
            seeded = bool(node.args) or any(kw.arg == "seed" for kw in node.keywords)
            if not seeded:
                return "rng", f"{resolved} (unseeded)"
            return None
        if resolved in _IO_DOTTED:
            return "io", resolved
        if resolved in _SPAWN_DOTTED or resolved.startswith(_SPAWN_DOTTED_PREFIXES):
            return "process_spawn", resolved
        return None
    if bare in _IO_BUILTINS:
        return "io", bare
    if attr in _IO_METHODS:
        return "io", f".{attr}"
    if attr in _SPAWN_METHODS or bare in _SPAWN_METHODS:
        return "process_spawn", attr or bare or ""
    return None


def _unordered_sum_effects(func: ast.AST) -> Iterable[tuple[ast.AST, str]]:
    """The RPR002 patterns: float accumulation over unordered iterables."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                arg = node.args[0]
                if _is_set_expr(arg) or _is_values_call(arg):
                    yield node, "sum() over an unordered iterable"
                elif isinstance(
                    arg, (ast.GeneratorExp, ast.ListComp)
                ) and _is_set_expr(arg.generators[0].iter):
                    yield node, "sum() over a set comprehension"
        elif isinstance(node, ast.For) and (
            _is_set_expr(node.iter) or _is_values_call(node.iter)
        ):
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add):
                    yield stmt, "+= accumulation over an unordered iterable"


def direct_effects(func: ast.AST, imports) -> list[dict]:
    """Direct (non-transitive) effect records of one function body.

    Nested ``def``s and lambdas are *inlined* -- their effects belong to
    the enclosing function, which matches how closures are used in this
    codebase (a local ``build()`` handed to ``ArtifactCache.get_or_build``
    runs on the definer's behalf). ``mutates_global`` is attached
    separately by the summariser, which owns the scope analysis.
    """
    records: list[dict] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            classified = _call_effect(node, imports)
            if classified is not None:
                records.append(_effect_record(classified[0], node, classified[1]))
    for node, detail in _unordered_sum_effects(func):
        records.append(_effect_record("set_iteration_float_sum", node, detail))
    records.sort(key=lambda record: (record["line"], record["col"], record["effect"]))
    return records


def propagate_effects(
    direct: Mapping[str, Sequence[dict]],
    edges: Mapping[str, Iterable[str]],
    include_sanctioned: bool = True,
) -> tuple[dict[str, set[str]], dict[str, dict[str, str | None]]]:
    """Fixed-point propagation of effects over the call graph.

    Returns ``(effects, witness)``: per function the transitive effect
    set, and per (function, effect) one *witness* -- ``None`` when the
    effect is direct, else the callee it arrived through, so a concrete
    call path to the origin can be reconstructed
    (:func:`witness_path`). With ``include_sanctioned=False``,
    pragma-sanctioned direct effects do not enter the system at all.
    """
    effects: dict[str, set[str]] = {}
    witness: dict[str, dict[str, str | None]] = {}
    for qualname in direct:
        own = {
            record["effect"]
            for record in direct[qualname]
            if include_sanctioned or not record.get("sanctioned")
        }
        effects[qualname] = set(own)
        witness[qualname] = {effect: None for effect in own}

    callers: dict[str, set[str]] = {}
    for caller, callees in edges.items():
        for callee in callees:
            callers.setdefault(callee, set()).add(caller)

    worklist = list(direct)
    pending = set(worklist)
    while worklist:
        qualname = worklist.pop()
        pending.discard(qualname)
        changed = False
        for callee in edges.get(qualname, ()):
            if callee == qualname:
                continue
            for effect in effects.get(callee, ()):
                if effect not in effects[qualname]:
                    effects[qualname].add(effect)
                    witness[qualname][effect] = callee
                    changed = True
        if changed:
            for caller in callers.get(qualname, ()):
                if caller in effects and caller not in pending:
                    pending.add(caller)
                    worklist.append(caller)
    return effects, witness


def witness_path(
    qualname: str,
    effect: str,
    witness: Mapping[str, Mapping[str, str | None]],
) -> list[str]:
    """Call chain from ``qualname`` down to the effect's direct origin.

    ``[qualname]`` when the effect is direct; otherwise each hop follows
    the recorded witness callee. A malformed witness table (cycles) is
    cut rather than looped.
    """
    path = [qualname]
    seen = {qualname}
    current = qualname
    while True:
        step = witness.get(current, {}).get(effect)
        if step is None or step in seen:
            return path
        path.append(step)
        seen.add(step)
        current = step
