"""Ratchet baselines: land strict rules without a flag day.

A baseline file records the *pre-existing* findings of a tree so new
rules can be enabled immediately: anything already in the baseline is
suppressed (and counted as ``baselined``), anything new fails the run.
Fixing a finding and regenerating (`--update-baseline`) only ever
shrinks the file -- the ratchet direction.

Findings are identified by a **stable fingerprint**: rule id, file path
and message text plus an occurrence index for exact duplicates -- no
line numbers, so unrelated edits above a baselined finding do not
un-suppress it.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.base import Violation
from repro.errors import PersistenceError

__all__ = [
    "BASELINE_FORMAT_VERSION",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

BASELINE_FORMAT_VERSION = 1


def fingerprint(violation: Violation, occurrence: int = 0) -> str:
    """Stable identity of one finding, independent of line numbers."""
    basis = "\x00".join(
        [violation.rule, violation.path, violation.message, str(occurrence)]
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


def _fingerprints(violations: Iterable[Violation]) -> list[tuple[Violation, str]]:
    occurrences: Counter[tuple[str, str, str]] = Counter()
    pairs: list[tuple[Violation, str]] = []
    for violation in violations:
        key = (violation.rule, violation.path, violation.message)
        pairs.append((violation, fingerprint(violation, occurrences[key])))
        occurrences[key] += 1
    return pairs


def load_baseline(path: str | Path) -> set[str]:
    """The fingerprint set of a baseline file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise PersistenceError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise PersistenceError(
            f"baseline {path} is not valid JSON: {error}"
        ) from error
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_FORMAT_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise PersistenceError(
            f"baseline {path} has an unrecognised format "
            f"(expected version {BASELINE_FORMAT_VERSION})"
        )
    return {
        finding["fingerprint"]
        for finding in payload["findings"]
        if isinstance(finding, dict) and "fingerprint" in finding
    }


def write_baseline(path: str | Path, violations: Sequence[Violation]) -> int:
    """Write the baseline for the given findings; returns the count."""
    findings = [
        {"rule": violation.rule, "file": violation.path, "fingerprint": digest}
        for violation, digest in _fingerprints(sorted(violations))
    ]
    document = {"version": BASELINE_FORMAT_VERSION, "findings": findings}
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(findings)


def apply_baseline(
    violations: Sequence[Violation], baseline: set[str]
) -> tuple[list[Violation], int]:
    """Split findings into (surviving, suppressed-count)."""
    surviving: list[Violation] = []
    suppressed = 0
    for violation, digest in _fingerprints(violations):
        if digest in baseline:
            suppressed += 1
        else:
            surviving.append(violation)
    return surviving, suppressed
