"""RPR004: the library raises its own exception taxonomy.

Every deliberate failure in ``src/repro`` derives from
:class:`repro.errors.ReproError`, so callers can catch library failures
without catching unrelated bugs. Raising a bare builtin breaks that
contract -- a sweep executor that wants to skip invalid configurations
but crash on real bugs cannot tell the two apart.

Backwards compatibility lives in ``repro.errors``: taxonomy types that
replace builtin raises (``ValidationError``, ``PersistenceError``)
multiple-inherit from the builtin they replace, so ``except ValueError``
continues to work.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import FileContext, Rule, Violation, register_rule

__all__ = ["ErrorTaxonomyRule"]

#: Builtins that must not be raised directly by library code, and the
#: taxonomy type that replaces each.
_BANNED_RAISES = {
    "ValueError": "ValidationError (or ConfigurationError)",
    "RuntimeError": "a ReproError subclass such as DataGenerationError",
    "Exception": "a ReproError subclass",
}


@register_rule
class ErrorTaxonomyRule(Rule):
    id = "RPR004"
    name = "error-taxonomy"
    summary = "raising bare ValueError/RuntimeError/Exception in library code"
    invariant = (
        "every deliberate library failure derives from repro.errors."
        "ReproError, so callers can catch library errors as one family"
    )
    library_only = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name_node = exc.func if isinstance(exc, ast.Call) else exc
            if not isinstance(name_node, ast.Name):
                continue
            # A name bound by an import is not the builtin.
            if name_node.id in ctx.imports.aliases:
                continue
            replacement = _BANNED_RAISES.get(name_node.id)
            if replacement is not None:
                yield ctx.violation(
                    self, node,
                    f"raise {name_node.id} in library code: use "
                    f"{replacement} so callers can catch ReproError",
                )
