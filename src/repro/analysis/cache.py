"""Incremental per-file analysis cache, keyed on content hashes.

Whole-tree lint runs spend most of their time parsing and running the
per-file rules; the whole-program pass over condensed summaries is
cheap. The cache therefore stores, per file, everything the engine
derives from its *content alone*:

* the per-file violations that survived pragma suppression,
* the pragma table and the set of pragma lines the per-file pass used,
* the :class:`~repro.analysis.graph.ModuleSummary`.

A warm run re-parses only files whose SHA-256 changed; the program pass
always runs fresh over the (mostly cached) summaries, so cross-module
findings stay correct even when the edited file is elsewhere in the
chain. The whole cache is invalidated when the *rule-set signature*
(engine version + active rule ids) changes -- a new rule must see every
file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

__all__ = ["AnalysisCache", "CACHE_FORMAT_VERSION", "content_hash"]

CACHE_FORMAT_VERSION = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class AnalysisCache:
    """Load/store per-file lint facts under one JSON document."""

    def __init__(self, path: str | Path, signature: str):
        self.path = Path(path)
        self.signature = signature
        self.files: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False

    @classmethod
    def load(cls, path: str | Path, signature: str) -> "AnalysisCache":
        cache = cls(path, signature)
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return cache
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_FORMAT_VERSION
            or payload.get("signature") != signature
        ):
            # A stale or foreign cache is simply empty: correctness never
            # depends on the cache, only warm-run speed does.
            return cache
        files = payload.get("files")
        if isinstance(files, dict):
            cache.files = files
        return cache

    def lookup(self, path: str | Path, digest: str) -> dict | None:
        """The cached entry for ``path`` iff its content still matches."""
        entry = self.files.get(str(path))
        if entry is not None and entry.get("hash") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, path: str | Path, digest: str, entry: dict) -> None:
        entry = dict(entry)
        entry["hash"] = digest
        self.files[str(path)] = entry
        self._dirty = True

    def save(self) -> None:
        document = {
            "version": CACHE_FORMAT_VERSION,
            "signature": self.signature,
            "files": self.files,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(document, sort_keys=True), encoding="utf-8"
        )
        self._dirty = False
