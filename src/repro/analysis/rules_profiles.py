"""RPR010: profile artifacts are immutable outside the update protocol.

:class:`repro.core.stages.UserProfiles` is a cached, versioned artifact:
its key promises that the profile mapping it carries was built by the
:class:`repro.models.base.ProfileState` fold under the recorded
parameters. Writing into ``<artifact>.profiles`` in place -- assigning a
user's entry, ``update()``-ing the mapping, deleting keys -- silently
breaks that promise: the mutated artifact keeps its old cache key, so
every later cache hit serves profiles that no longer match their
parameters, and replay parity against a batch rebuild becomes
meaningless. Profiles change only by folding new documents through
``ProfileState.update`` (or reweighting via ``decayed``) and storing the
result as a *new* artifact under a new key.

The rule flags writes through any ``.profiles`` attribute -- subscript
assignment, augmented assignment, ``del``, and the mutating ``dict``
methods. Local variables named ``profiles`` (the builder's own dict
under construction) are legitimate and not flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import FileContext, Rule, Violation, register_rule

__all__ = ["ProfileArtifactMutationRule"]

#: ``dict`` methods that mutate the receiver in place.
_MUTATING_METHODS = frozenset(
    {"update", "pop", "popitem", "clear", "setdefault", "__setitem__", "__delitem__"}
)


@register_rule
class ProfileArtifactMutationRule(Rule):
    id = "RPR010"
    name = "profile-artifact-mutation"
    summary = "in-place mutation of a profile artifact's .profiles mapping"
    invariant = (
        "UserProfiles artifacts are immutable: their cache key certifies the "
        "ProfileState fold that built them, so profiles change only by "
        "folding through ProfileState.update/decayed into a new artifact, "
        "never by writing into .profiles in place"
    )
    library_only = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if self._writes_profiles(target):
                        yield ctx.violation(
                            self, node,
                            "assignment into a profile artifact's .profiles "
                            "mapping: fold new documents through "
                            "ProfileState.update and store a new artifact "
                            "under a new key instead",
                        )
                        break
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if self._writes_profiles(target):
                        yield ctx.violation(
                            self, node,
                            "del on a profile artifact's .profiles mapping: "
                            "build a new artifact (e.g. via decayed()) "
                            "instead of erasing entries in place",
                        )
                        break
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and self._is_profiles_attribute(func.value)
                ):
                    yield ctx.violation(
                        self, node,
                        f".profiles.{func.attr}(...) mutates a profile "
                        "artifact in place: profiles change only through "
                        "the ProfileState update protocol",
                    )

    @staticmethod
    def _is_profiles_attribute(node: ast.AST) -> bool:
        """Whether ``node`` is an ``<expr>.profiles`` attribute access."""
        return isinstance(node, ast.Attribute) and node.attr == "profiles"

    def _writes_profiles(self, target: ast.AST) -> bool:
        """Whether an assignment target writes through ``.profiles``.

        Covers ``x.profiles[k] = v`` (subscript into the mapping) and
        ``x.profiles = v`` / ``x.profiles += v`` (rebinding the
        artifact's attribute). Plain local names -- a builder's own
        ``profiles`` dict -- are untouched.
        """
        if isinstance(target, ast.Subscript):
            return self._is_profiles_attribute(target.value)
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(self._writes_profiles(el) for el in target.elts)
        return self._is_profiles_attribute(target)
