"""RPR005: spans are entered via ``with``.

``Tracer.span`` is a context manager: the duration is stamped and the
span stack unwound in its ``finally``. Calling it without entering it
leaks an un-timed span into the tree (or silently does nothing), and the
trace's per-phase rollups -- the Figure 7 TTime/ETime decomposition --
stop adding up.

Delegation wrappers are allowed: a ``return ....span(...)`` inside a
function itself named ``span`` (``Telemetry.span`` forwarding to its
tracer) is the facade pattern, not a leak.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import FileContext, Rule, Violation, register_rule

__all__ = ["SpanHygieneRule"]

#: Enclosing function names whose ``.span(...)`` calls are delegation.
_DELEGATION_NAMES = ("span", "stopwatch")


@register_rule
class SpanHygieneRule(Rule):
    id = "RPR005"
    name = "span-hygiene"
    summary = "Tracer.span(...) called outside a `with` statement"
    invariant = (
        "every span is opened and closed by a `with` block, so durations "
        "are always stamped and the span stack always unwinds"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        allowed: set[int] = set()
        self._collect_allowed(ctx.tree, allowed, in_delegation=False)
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in allowed
            ):
                yield ctx.violation(
                    self, node,
                    ".span(...) outside a `with` statement: enter spans as "
                    "`with tracer.span(name):` so the duration is stamped "
                    "and the stack unwinds",
                )

    def _collect_allowed(
        self, node: ast.AST, allowed: set[int], in_delegation: bool
    ) -> None:
        """Mark span calls used as with-items or returned by delegators."""
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    allowed.add(id(item.context_expr))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_delegation = node.name in _DELEGATION_NAMES
        elif isinstance(node, ast.Return) and in_delegation:
            if isinstance(node.value, ast.Call):
                allowed.add(id(node.value))
        for child in ast.iter_child_nodes(node):
            self._collect_allowed(child, allowed, in_delegation)
