"""Standard experiment setups shared by benchmarks and examples.

The paper's full protocol (60 users, 2.07M tweets, 223 configurations,
1,000+ Gibbs iterations) took days on a 32-core server. The benchmark
harness reproduces every table and figure at a reduced -- but structurally
identical -- scale, and this module pins those scales in one place so all
benches agree:

* :func:`bench_dataset` -- the shared synthetic corpus (60 users by
  default, mirroring the paper's group sizes at reduced tweet volume);
* :func:`bench_setup` -- dataset + user groups + pipeline;
* :func:`bench_grid` -- the 223-point grid with scaled-down topic counts
  and sampler iterations;
* :func:`fast_grid` -- a one-configuration-per-model subset for quick
  figure-shaped runs.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.core.temporal import TemporalWeighting
from repro.experiments.configs import ConfigGrid, ModelConfig
from repro.twitter.dataset import (
    DatasetConfig,
    MicroblogDataset,
    generate_dataset,
    select_user_groups,
)
from repro.twitter.entities import UserType

__all__ = [
    "BenchSetup",
    "bench_dataset",
    "bench_setup",
    "bench_grid",
    "fast_grid",
    "FIGURE_SOURCES",
]

#: The eight sources shown in Figures 3-6 (five atomic + the three best
#: pairwise combinations per the paper: TR, RC, TC).
FIGURE_SOURCES: tuple[RepresentationSource, ...] = (
    RepresentationSource.T,
    RepresentationSource.R,
    RepresentationSource.F,
    RepresentationSource.E,
    RepresentationSource.C,
    RepresentationSource.TR,
    RepresentationSource.RC,
    RepresentationSource.TC,
)


@dataclass(frozen=True)
class BenchSetup:
    """Everything a benchmark needs: data, groups, pipeline."""

    dataset: MicroblogDataset
    groups: dict[UserType, list[int]]
    pipeline: ExperimentPipeline


@lru_cache(maxsize=4)
def bench_dataset(n_users: int = 60, n_ticks: int = 150, seed: int = 7) -> MicroblogDataset:
    """The shared benchmark corpus (cached across benches in a session)."""
    return generate_dataset(DatasetConfig(n_users=n_users, n_ticks=n_ticks, seed=seed))


def bench_setup(
    n_users: int = 60,
    n_ticks: int = 150,
    seed: int = 7,
    group_size: int = 10,
    min_retweets: int = 10,
    max_train_docs_per_user: int = 120,
) -> BenchSetup:
    """Dataset, paper-style user groups and a ready pipeline."""
    dataset = bench_dataset(n_users=n_users, n_ticks=n_ticks, seed=seed)
    groups = select_user_groups(dataset, group_size=group_size, min_retweets=min_retweets)
    pipeline = ExperimentPipeline(
        dataset, seed=seed, max_train_docs_per_user=max_train_docs_per_user
    )
    return BenchSetup(dataset=dataset, groups=groups, pipeline=pipeline)


def bench_grid(
    seed: int = 7, temporal_axis: Sequence[TemporalWeighting] = ()
) -> ConfigGrid:
    """The 223-configuration grid at benchmark scale.

    Topic counts shrink by 10x ({5,10,15,20}) and sampler iterations by
    50x ({20,40}); the *structure* of the grid (which parameters vary and
    how many configurations exist) is identical to the paper's. A
    ``temporal_axis`` crosses every configuration with the given
    temporal weightings (see :class:`~repro.core.temporal.TemporalWeighting`).
    """
    return ConfigGrid(
        topic_scale=0.1,
        iteration_scale=0.02,
        infer_iterations=8,
        btm_max_biterms=30_000,
        seed=seed,
        temporal_axis=temporal_axis,
    )


def fast_grid(seed: int = 7) -> list[ModelConfig]:
    """One representative configuration per model.

    Chosen to match Table 7's most frequent winners: TN with tri-grams +
    TF-IDF + cosine, CN with four-grams + TF, TNG tri-gram graphs + VS,
    CNG four-gram graphs + CoS, and topic models under user pooling.
    """
    grid = bench_grid(seed=seed)
    picks: list[ModelConfig] = []
    for name, wanted in [
        ("TN", dict(n=3, weighting="TF-IDF", aggregation="centroid", similarity="CS")),
        ("CN", dict(n=4, weighting="TF", aggregation="centroid", similarity="CS")),
        ("TNG", dict(n=3, similarity="VS")),
        ("CNG", dict(n=4, similarity="CoS")),
        ("LDA", dict(n_topics=15, pooling="UP", aggregation="centroid")),
        ("LLDA", dict(n_topics=15, pooling="UP", aggregation="centroid")),
        ("BTM", dict(n_topics=15, pooling="UP", aggregation="centroid")),
        ("HDP", dict(pooling="UP", beta=0.1, aggregation="centroid")),
        ("HLDA", dict(alpha=10.0, beta=0.1, gamma=1.0, aggregation="centroid")),
    ]:
        candidates = grid.all_configurations()[name]
        match = next(
            c for c in candidates
            if all(c.params.get(k) == v for k, v in wanted.items())
        )
        picks.append(match)
    return picks
