"""Pairwise model significance from sweep results.

Throughout Section 5 the paper backs its comparisons with statistical
significance ("the dominance of TNG over TN is statistically significant
(p < 0.05)"). This module reproduces that analysis: for a pair of models
it takes each model's *best-Mean-MAP* configuration on a source, pairs
the per-user AP values, and applies the Wilcoxon signed-rank test.
:func:`significance_matrix` assembles the full model x model grid, and
:func:`format_significance_matrix` renders it for reports.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ValidationError
from repro.core.sources import RepresentationSource
from repro.eval.significance import TestResult, wilcoxon_signed_rank
from repro.experiments.runner import SweepResult
from repro.twitter.entities import UserType

__all__ = ["compare_models", "significance_matrix", "format_significance_matrix"]


def _best_row_ap(
    result: SweepResult, model: str, source: RepresentationSource, group: UserType
) -> dict[int, float]:
    rows = result.filtered(model=model, source=source, group=group)
    if not rows:
        raise KeyError(f"no rows for {model} on {source} over {group}")
    best = max(rows, key=lambda r: r.map_score)
    return best.per_user_ap


def compare_models(
    result: SweepResult,
    model_a: str,
    model_b: str,
    source: RepresentationSource,
    group: UserType = UserType.ALL,
) -> TestResult:
    """Wilcoxon signed-rank test between two models' per-user APs.

    Each model is represented by its best configuration for the
    (source, group) pair; users present for both models are paired.
    """
    ap_a = _best_row_ap(result, model_a, source, group)
    ap_b = _best_row_ap(result, model_b, source, group)
    shared = sorted(set(ap_a) & set(ap_b))
    if len(shared) < 2:
        raise ValidationError(
            f"models {model_a} and {model_b} share only {len(shared)} users"
        )
    return wilcoxon_signed_rank([ap_a[u] for u in shared], [ap_b[u] for u in shared])


def significance_matrix(
    result: SweepResult,
    source: RepresentationSource,
    group: UserType = UserType.ALL,
    models: Sequence[str] | None = None,
) -> dict[tuple[str, str], TestResult]:
    """All pairwise comparisons for one source and user group."""
    if models is None:
        models = result.models()
    matrix: dict[tuple[str, str], TestResult] = {}
    for i, model_a in enumerate(models):
        for model_b in models[i + 1 :]:
            matrix[(model_a, model_b)] = compare_models(
                result, model_a, model_b, source, group
            )
    return matrix


def format_significance_matrix(
    matrix: dict[tuple[str, str], TestResult], alpha: float = 0.05
) -> str:
    """Human-readable table of pairwise p-values.

    Significant pairs (p < alpha) are marked with ``*``, matching the
    paper's reporting convention.
    """
    lines = [f"Pairwise Wilcoxon signed-rank tests (alpha={alpha})"]
    lines.append(f"{'pair':>12}  {'p-value':>9}  significant")
    for (a, b), test in sorted(matrix.items()):
        marker = "*" if test.significant(alpha) else ""
        lines.append(f"{a + ' vs ' + b:>12}  {test.p_value:>9.4f}  {marker}")
    return "\n".join(lines)
