"""The calibrated ``repro bench`` suite.

One bag model (TN), one graph model (TNG) and one topic model (LDA) --
the three model families whose cost profiles differ most -- evaluated
across three representation sources (R, T, TR) with warmup and repeated
measured trials. Every trial runs under a
:class:`~repro.obs.resources.ResourceSampler`, so each pipeline stage
records peak RSS and CPU time alongside wall time; the per-trial
samples are then summarised into a durable
:class:`~repro.obs.baseline.Baseline` (median/IQR per phase) that
``repro bench compare`` can gate future runs against.

Serial trials run the cells in-process; ``jobs > 1`` fans them out
through the :class:`~repro.experiments.executors.ProcessCellExecutor`,
whose workers run their *own* samplers -- the resource snapshots ride
back through ``Telemetry.absorb``, so the resulting baseline has the
same schema either way and reports true per-cell peaks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.sources import RepresentationSource
from repro.errors import ConfigurationError
from repro.experiments.configs import ModelConfig
from repro.experiments.executors import (
    Cell,
    CellTask,
    GridSpec,
    PipelineSpec,
    ProcessCellExecutor,
    SerialCellExecutor,
    SweepSpec,
)
from repro.experiments.replay import ReplaySpec, run_replay
from repro.experiments.standard import bench_grid, fast_grid
from repro.obs.baseline import Baseline, SampleStats
from repro.obs.manifest import RunManifest
from repro.obs.profiler import active_sampler
from repro.obs.resources import ResourceSampler
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import Span
from repro.twitter.dataset import DatasetConfig, generate_dataset, select_user_groups
from repro.twitter.entities import UserType

__all__ = [
    "BENCH_MODELS",
    "BENCH_SOURCES",
    "SUITE_SCALES",
    "SuiteScale",
    "collect_phase_samples",
    "default_trials",
    "replay_suite_spec",
    "run_bench_suite",
    "run_incremental_suite",
]

#: One representative model per family: bag, graph, topic.
BENCH_MODELS = ("TN", "TNG", "LDA")
#: The three sources of the calibrated suite (two atomic + one pair).
BENCH_SOURCES = (
    RepresentationSource.R,
    RepresentationSource.T,
    RepresentationSource.TR,
)

#: Environment knob overriding the number of measured trials.
TRIALS_ENV = "REPRO_BENCH_TRIALS"


@dataclass(frozen=True)
class SuiteScale:
    """Dataset/group sizing of one calibrated suite scale."""

    n_users: int
    n_ticks: int
    group_size: int
    min_retweets: int
    max_train_docs_per_user: int


SUITE_SCALES: dict[str, SuiteScale] = {
    "tiny": SuiteScale(
        n_users=16, n_ticks=40, group_size=3, min_retweets=3, max_train_docs_per_user=30
    ),
    "quick": SuiteScale(
        n_users=40, n_ticks=120, group_size=8, min_retweets=8, max_train_docs_per_user=60
    ),
}


def default_trials(fallback: int = 3) -> int:
    """Measured trial count: ``REPRO_BENCH_TRIALS`` or ``fallback``."""
    raw = os.environ.get(TRIALS_ENV)
    if raw is None:
        return fallback
    try:
        trials = int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{TRIALS_ENV} must be an integer, got {raw!r}") from exc
    if trials < 1:
        raise ConfigurationError(f"{TRIALS_ENV} must be >= 1, got {trials}")
    return trials


def _suite_spec(scale: SuiteScale, seed: int) -> SweepSpec:
    return SweepSpec(
        pipeline=PipelineSpec(
            dataset=DatasetConfig(n_users=scale.n_users, n_ticks=scale.n_ticks, seed=seed),
            seed=seed,
            max_train_docs_per_user=scale.max_train_docs_per_user,
        ),
        grid=GridSpec.from_grid(bench_grid(seed=seed)),
    )


def _suite_tasks(
    spec: SweepSpec,
    scale: SuiteScale,
    seed: int,
    models: tuple[str, ...],
    sources: tuple[RepresentationSource, ...],
) -> list[CellTask]:
    configs: dict[str, ModelConfig] = {
        c.model: c for c in fast_grid(seed=seed) if c.model in models
    }
    missing = sorted(set(models) - set(configs))
    if missing:
        raise ConfigurationError(f"no fast-grid configuration for models: {missing}")
    dataset = generate_dataset(spec.pipeline.dataset)
    groups = select_user_groups(
        dataset, group_size=scale.group_size, min_retweets=scale.min_retweets
    )
    users = tuple(sorted(groups[UserType.ALL]))
    tasks: list[CellTask] = []
    for model in models:
        config = configs[model]
        for source in sources:
            tasks.append(
                (
                    Cell(
                        model=config.model,
                        params=dict(config.params),
                        label=config.label(),
                        source=source.value,
                        users=users,
                    ),
                    config,
                )
            )
    return tasks


def _run_trial(
    spec: SweepSpec,
    tasks: list[CellTask],
    jobs: int,
    sample_interval: float,
    trace_allocations: bool,
) -> Telemetry:
    """One full pass over the suite's cells, freshly built.

    Every trial starts from a cold pipeline (serial) or cold worker
    pool (parallel), so trials are independent samples of the same
    work, not progressively warmer cache states.
    """
    profiling = active_sampler()
    if jobs > 1:
        telemetry = Telemetry()
        executor = ProcessCellExecutor(spec, jobs=jobs)
        for _cell, outcome in executor.run_cells(
            tasks,
            collect_telemetry=True,
            sample_resources=True,
            profile_hz=profiling.hz if profiling is not None else None,
        ):
            if outcome.telemetry is not None:
                telemetry.absorb(outcome.telemetry)
        return telemetry
    with ResourceSampler(
        interval=sample_interval, trace_allocations=trace_allocations
    ) as sampler:
        telemetry = Telemetry(resources=sampler)
        pipeline = spec.pipeline.build(telemetry)
        executor = SerialCellExecutor(pipeline, telemetry=telemetry)
        for _cell, _outcome in executor.run_cells(tasks, collect_telemetry=True):
            pass
    return telemetry


def _fold_phase(
    phases: dict[str, dict[str, float]], key: str, span: Span
) -> None:
    entry = phases.setdefault(key, {})
    entry["wall_seconds"] = entry.get("wall_seconds", 0.0) + (span.duration or 0.0)
    cpu = span.resources.get("cpu_seconds")
    if cpu is not None:
        entry["cpu_seconds"] = entry.get("cpu_seconds", 0.0) + float(cpu)
    for peak_metric in ("peak_rss_bytes", "alloc_peak_bytes"):
        value = span.resources.get(peak_metric)
        if value is not None:
            entry[peak_metric] = max(entry.get(peak_metric, 0.0), float(value))


def collect_phase_samples(roots: list[Span]) -> dict[str, dict[str, float]]:
    """One trial's per-phase measurements, keyed ``MODEL/SOURCE/phase``.

    Walks the span forest for ``evaluate`` spans carrying ``model`` and
    ``source`` attributes (they sit under per-cell ``config`` spans at
    any depth, so serial and absorbed worker traces read identically)
    and folds each evaluate child -- the pipeline stages -- into one
    entry: wall and CPU seconds add up, RSS/allocation peaks take the
    max.
    """
    phases: dict[str, dict[str, float]] = {}

    def visit(span: Span) -> None:
        attrs = span.attributes
        if span.name == "evaluate" and "model" in attrs and "source" in attrs:
            prefix = f"{attrs['model']}/{attrs['source']}"
            _fold_phase(phases, f"{prefix}/total", span)
            for child in span.children:
                _fold_phase(phases, f"{prefix}/{child.name}", child)
        for child in span.children:
            visit(child)

    for root in roots:
        visit(root)
    return phases


def _summarise_phases(
    per_trial: list[dict[str, dict[str, float]]],
) -> dict[str, dict[str, SampleStats]]:
    """Fold per-trial phase samples into median/IQR summary stats."""
    phases: dict[str, dict[str, SampleStats]] = {}
    for key in sorted({phase for trial in per_trial for phase in trial}):
        metrics: dict[str, SampleStats] = {}
        for metric in ("wall_seconds", "cpu_seconds", "peak_rss_bytes", "alloc_peak_bytes"):
            samples = [
                trial[key][metric]
                for trial in per_trial
                if key in trial and metric in trial[key]
            ]
            if samples:
                metrics[metric] = SampleStats.from_samples(samples)
        phases[key] = metrics
    return phases


def run_bench_suite(
    scale: str = "quick",
    trials: int | None = None,
    warmup: int = 1,
    jobs: int = 1,
    seed: int = 7,
    label: str = "run",
    sample_interval: float = 0.005,
    trace_allocations: bool = False,
    models: tuple[str, ...] | None = None,
    sources: tuple[RepresentationSource, ...] | None = None,
) -> Baseline:
    """Run the calibrated suite; returns the summarised baseline.

    ``trials`` defaults to :func:`default_trials` (the
    ``REPRO_BENCH_TRIALS`` environment knob, else 3). Warmup trials run
    the identical work and are discarded -- they absorb first-touch
    costs (imports, allocator growth) that would otherwise skew the
    first measured sample.
    """
    suite_scale = SUITE_SCALES.get(scale)
    if suite_scale is None:
        raise ConfigurationError(
            f"unknown bench scale {scale!r}; expected one of {sorted(SUITE_SCALES)}"
        )
    if trials is None:
        trials = default_trials()
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    suite_models = tuple(models) if models is not None else BENCH_MODELS
    suite_sources = tuple(sources) if sources is not None else BENCH_SOURCES

    spec = _suite_spec(suite_scale, seed)
    tasks = _suite_tasks(spec, suite_scale, seed, suite_models, suite_sources)

    # When the suite runs under ``repro profile``, the baseline records
    # the sampling rate and the sampler's counters: profiled baselines
    # are self-describing and the profiler's cost stays visible.
    profiling = active_sampler()
    manifest = RunManifest.create(
        seed=seed,
        dataset={
            "n_users": suite_scale.n_users,
            "n_ticks": suite_scale.n_ticks,
            "max_train_docs_per_user": suite_scale.max_train_docs_per_user,
        },
        models=suite_models,
        command="bench",
        scale=scale,
        jobs=jobs,
        trials=trials,
        warmup=warmup,
        profile_hz=profiling.hz if profiling is not None else None,
    )

    per_trial: list[dict[str, dict[str, float]]] = []
    counters: dict[str, float] = {}
    for index in range(warmup + trials):
        telemetry = _run_trial(spec, tasks, jobs, sample_interval, trace_allocations)
        if index < warmup:
            continue
        per_trial.append(collect_phase_samples(telemetry.tracer.roots))
        counters = {
            name: float(payload["value"])
            for name, payload in telemetry.metrics.snapshot().items()
            if payload.get("type") == "counter"
        }

    phases = _summarise_phases(per_trial)

    if profiling is not None:
        counters["profiler.samples"] = float(profiling.profile.samples)
        counters["profiler.dropped"] = float(profiling.profile.dropped)
        counters["profiler.overhead_percent"] = 100.0 * profiling.overhead_ratio()

    manifest.finish()
    return Baseline(
        label=label,
        phases=phases,
        counters=counters,
        manifest=manifest.to_dict(),
        config={
            "scale": scale,
            "trials": trials,
            "warmup": warmup,
            "jobs": jobs,
            "seed": seed,
            "models": list(suite_models),
            "sources": [s.value for s in suite_sources],
            "trace_allocations": trace_allocations,
            "profile_hz": profiling.hz if profiling is not None else None,
        },
    )


def replay_suite_spec(
    scale: str = "tiny",
    seed: int = 7,
    models: tuple[str, ...] | None = None,
    source: RepresentationSource = RepresentationSource.R,
    chunk_size: int = 1,
    deterministic_topics: bool = True,
) -> ReplaySpec:
    """A calibrated-suite-sized replay spec: same dataset, users and
    fast-grid model picks as the bench suite at the same ``scale``."""
    suite_scale = SUITE_SCALES.get(scale)
    if suite_scale is None:
        raise ConfigurationError(
            f"unknown bench scale {scale!r}; expected one of {sorted(SUITE_SCALES)}"
        )
    spec = _suite_spec(suite_scale, seed)
    dataset = generate_dataset(spec.pipeline.dataset)
    groups = select_user_groups(
        dataset, group_size=suite_scale.group_size, min_retweets=suite_scale.min_retweets
    )
    return ReplaySpec(
        pipeline=spec.pipeline,
        grid=spec.grid,
        source=source.value,
        users=tuple(sorted(groups[UserType.ALL])),
        models=tuple(models) if models is not None else BENCH_MODELS,
        chunk_size=chunk_size,
        deterministic_topics=deterministic_topics,
    )


def _replay_span_rss(roots: list[Span]) -> dict[tuple[str, str], float]:
    """Peak RSS per ``replay_model`` span, keyed (model, source)."""
    peaks: dict[tuple[str, str], float] = {}

    def visit(span: Span) -> None:
        attrs = span.attributes
        if span.name == "replay_model" and "model" in attrs and "source" in attrs:
            value = span.resources.get("peak_rss_bytes")
            if value is not None:
                key = (str(attrs["model"]), str(attrs["source"]))
                peaks[key] = max(peaks.get(key, 0.0), float(value))
        for child in span.children:
            visit(child)

    for root in roots:
        visit(root)
    return peaks


def run_incremental_suite(
    scale: str = "tiny",
    trials: int | None = None,
    warmup: int = 1,
    seed: int = 7,
    label: str = "run",
    models: tuple[str, ...] | None = None,
    source: RepresentationSource = RepresentationSource.R,
    chunk_size: int = 1,
    sample_interval: float = 0.005,
) -> Baseline:
    """Benchmark streamed profile updates against batch rebuilds.

    Replays the calibrated suite's users through each model's
    incremental :class:`~repro.models.base.ProfileState` (see
    :mod:`repro.experiments.replay`) and summarises, per model, the
    total per-update fold cost (``incremental/MODEL/SOURCE/update``)
    and the cost of batch rebuilds at every stream boundary
    (``incremental/MODEL/SOURCE/rebuild``). Both are ordinary baseline
    phases, so ``repro bench compare --gate`` guards streamed-update
    latency exactly as it guards the pipeline stages. Replay parity
    (``exact``) and the rebuild/update speedup ride along as counters,
    which the gate reports but never fails on.
    """
    suite_scale = SUITE_SCALES.get(scale)
    if suite_scale is None:
        raise ConfigurationError(
            f"unknown bench scale {scale!r}; expected one of {sorted(SUITE_SCALES)}"
        )
    if trials is None:
        trials = default_trials()
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    spec = replay_suite_spec(
        scale=scale, seed=seed, models=models, source=source, chunk_size=chunk_size
    )

    manifest = RunManifest.create(
        seed=seed,
        dataset={
            "n_users": suite_scale.n_users,
            "n_ticks": suite_scale.n_ticks,
            "max_train_docs_per_user": suite_scale.max_train_docs_per_user,
        },
        models=spec.models,
        command="bench-incremental",
        scale=scale,
        trials=trials,
        warmup=warmup,
        chunk_size=chunk_size,
        source=source.value,
    )

    per_trial: list[dict[str, dict[str, float]]] = []
    counters: dict[str, float] = {}
    for index in range(warmup + trials):
        with ResourceSampler(interval=sample_interval) as sampler:
            telemetry = Telemetry(resources=sampler)
            replays = run_replay(spec, telemetry=telemetry)
        if index < warmup:
            continue
        rss = _replay_span_rss(telemetry.tracer.roots)
        samples: dict[str, dict[str, float]] = {}
        for replay in replays:
            prefix = f"incremental/{replay.model}/{replay.source}"
            samples[f"{prefix}/update"] = {"wall_seconds": replay.update_seconds}
            samples[f"{prefix}/rebuild"] = {"wall_seconds": replay.rebuild_seconds}
            peak = rss.get((replay.model, replay.source))
            if peak is not None:
                samples[f"{prefix}/update"]["peak_rss_bytes"] = peak
            counters[f"incremental.{replay.model}.exact"] = 1.0 if replay.exact else 0.0
            counters[f"incremental.{replay.model}.speedup"] = replay.speedup
        per_trial.append(samples)

    manifest.finish()
    return Baseline(
        label=label,
        phases=_summarise_phases(per_trial),
        counters=counters,
        manifest=manifest.to_dict(),
        config={
            "scale": scale,
            "trials": trials,
            "warmup": warmup,
            "seed": seed,
            "models": list(spec.models),
            "sources": [source.value],
            "chunk_size": chunk_size,
            "suite": "incremental",
        },
    )
