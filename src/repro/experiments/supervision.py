"""Per-cell supervision policy: timeouts, bounded retries, quarantine.

One hung Gibbs sampler or OOM-killed worker must cost a 223-cell sweep
exactly one cell, not the run. The executors enforce that through a
:class:`SupervisionPolicy`: every cell attempt gets a wall-clock budget
(process executor only -- an in-process hang cannot be preempted), every
failed attempt is retried up to :attr:`RetryPolicy.max_attempts` with
exponential backoff and *seeded* jitter (the same cell backs off the
same way in every run), and a cell that exhausts its attempts is
quarantined behind a typed :class:`CellFailure` record instead of
raising -- the sweep completes, reports "n/N cells failed", and
``--resume`` retries exactly the quarantined cells.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["FAILURE_KINDS", "CellFailure", "RetryPolicy", "SupervisionPolicy"]

#: How an attempt can fail: an exception in the evaluation (``error``),
#: a wall-clock budget overrun (``timeout``), or the worker process
#: dying underneath the cell (``crash``).
FAILURE_KINDS = ("error", "timeout", "crash")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Attempt ``k``'s failure waits ``backoff_seconds * 2**(k-1)`` (capped
    at ``backoff_cap_seconds``) plus up to ``jitter`` of itself, drawn
    from an RNG seeded on (seed, cell key, attempt) -- deterministic per
    cell, decorrelated across cells, so a retry stampede cannot
    synchronise while runs stay reproducible.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.5
    backoff_cap_seconds: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValidationError("backoff durations must be >= 0")
        if self.jitter < 0:
            raise ValidationError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, cell_key: str, attempt: int) -> float:
        """Seconds to wait after ``attempt`` (1-based) of ``cell_key`` failed."""
        base = min(
            self.backoff_cap_seconds, self.backoff_seconds * (2 ** (attempt - 1))
        )
        if self.jitter == 0 or base == 0:
            return base
        rng = random.Random(f"{self.seed}:{cell_key}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class SupervisionPolicy:
    """How an executor guards its cells.

    ``timeout_seconds`` is the per-attempt wall-clock budget; ``None``
    disables preemption. Only the process executor can enforce it -- a
    serial in-process cell cannot be interrupted, which is exactly why
    hang-sensitive sweeps should run with ``--jobs``.
    """

    timeout_seconds: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValidationError(
                f"timeout_seconds must be > 0 or None, got {self.timeout_seconds}"
            )


@dataclass(frozen=True)
class CellFailure:
    """Why one cell was quarantined: the typed post-mortem record.

    ``kind`` is the failure taxonomy class of the final attempt (one of
    :data:`FAILURE_KINDS`), ``error`` the exception class name (e.g.
    ``InjectedFaultError``, ``WorkerCrashError``, ``CellTimeoutError``),
    ``attempts`` how many tries the supervisor spent, and
    ``elapsed_seconds`` the wall-clock cost across all of them.
    """

    kind: str
    error: str
    message: str
    attempts: int
    elapsed_seconds: float

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValidationError(
                f"unknown failure kind {self.kind!r}; pick from {', '.join(FAILURE_KINDS)}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CellFailure":
        return cls(
            kind=str(payload["kind"]),
            error=str(payload["error"]),
            message=str(payload.get("message", "")),
            attempts=int(payload.get("attempts", 1)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )
