"""Streaming replay evaluation: incremental profiles vs batch rebuild.

``repro replay`` streams each user's training timeline chronologically
through the model's incremental :class:`~repro.models.base.ProfileState`
-- one :meth:`~repro.models.base.ProfileState.update` per chunk of
``(timestamp, tweet_id)``-ordered tweets -- and, at every chunk
boundary, rebuilds the profile from scratch over the prefix seen so
far. The two must agree:

* **bag and graph models** fold through running accumulators that
  replicate the batch aggregation's exact floating-point operation
  sequence, so the incremental profile is *bit-identical* to the
  rebuild at every boundary (``exact`` is True, ``max_delta`` is 0);
* **topic models** infer each document's topic mixture once per fold.
  With ``deterministic_topics`` (the default) inference is seeded per
  document, making it a pure function of the document -- the replay is
  then bit-exact too, and serial and ``--jobs`` runs produce identical
  digests. With stochastic inference the incremental and rebuilt
  profiles differ by the inference noise of re-sampled documents;
  compare them under an explicit tolerance instead.

The driver also measures the cost asymmetry the incremental protocol
exists for: ``update_seconds`` accumulates the per-chunk fold cost
(O(chunk) for bag models), ``rebuild_seconds`` the cost of batch
rebuilds at every boundary (O(prefix) each, O(n^2) overall), and
``speedup`` is their ratio. The ``repro bench`` incremental suite
(:func:`repro.experiments.bench.run_incremental_suite`) feeds these
timings through the same baseline gate as the standard suite.

With ``jobs > 1`` the users of each model are partitioned into
contiguous chunks and replayed in a process pool; workers rebuild the
pipeline from the picklable spec and resolve configurations through the
grid index by (model, canonical parameter JSON), exactly like the sweep
executors. Replay results carry per-user profile digests, so parallel
and serial runs are directly comparable.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.core.stages import FittedModel, canonical_params
from repro.errors import ConfigurationError, ValidationError
from repro.eval.timing import Stopwatch
from repro.experiments.configs import ModelConfig
from repro.experiments.executors import GridSpec, PipelineSpec
from repro.experiments.standard import fast_grid
from repro.models.base import TextDoc
from repro.models.graph import NGramGraph
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "ModelReplay",
    "ReplaySpec",
    "UserReplay",
    "profile_delta",
    "profile_digest",
    "run_replay",
]

#: Wall-clock budget for one worker's (model, user chunk) replay task.
#: Bounds the parent's ``AsyncResult.get`` so a wedged worker surfaces
#: as a timeout instead of hanging the driver forever.
REPLAY_TASK_TIMEOUT_SECONDS = 600.0


@dataclass(frozen=True)
class ReplaySpec:
    """Picklable description of one streaming replay run.

    ``models`` name configurations resolved from the fast grid of
    ``grid`` (one representative configuration per model, the same
    picks the bench suite measures); ``users`` is the candidate user
    set (ineligible users are filtered exactly as ``evaluate`` would);
    ``chunk_size`` is the number of tweets folded per incremental
    update (1 = one update per tweet, the finest stream).
    """

    pipeline: PipelineSpec
    grid: GridSpec
    source: str
    users: tuple[int, ...]
    models: tuple[str, ...]
    chunk_size: int = 1
    deterministic_topics: bool = True

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if not self.models:
            raise ConfigurationError("replay needs at least one model")
        RepresentationSource(self.source)  # fail fast on unknown sources


@dataclass(frozen=True)
class UserReplay:
    """One user's replay outcome: parity and cost of the streamed folds.

    ``exact`` means every boundary's incremental profile equalled the
    batch rebuild bit for bit; ``max_delta`` is the largest absolute
    elementwise difference observed across all boundaries (0.0 when
    exact). ``digest`` fingerprints the final incremental profile, so
    two runs (serial vs ``--jobs``) can be compared without shipping
    profiles around.
    """

    user: int
    docs: int
    updates: int
    exact: bool
    max_delta: float
    digest: str
    update_seconds: float
    rebuild_seconds: float
    #: Cost of the last boundary's rebuild alone -- a batch build over
    #: the user's whole timeline, i.e. what one profile refresh costs
    #: without the incremental protocol.
    final_rebuild_seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "user": self.user,
            "docs": self.docs,
            "updates": self.updates,
            "exact": self.exact,
            "max_delta": self.max_delta,
            "digest": self.digest,
            "update_seconds": self.update_seconds,
            "rebuild_seconds": self.rebuild_seconds,
            "final_rebuild_seconds": self.final_rebuild_seconds,
        }


@dataclass(frozen=True)
class ModelReplay:
    """One model's replay outcome over all evaluated users."""

    model: str
    source: str
    params: dict = field(hash=False)
    users: tuple[UserReplay, ...] = field(hash=False)

    @property
    def update_seconds(self) -> float:
        return math.fsum([u.update_seconds for u in self.users])

    @property
    def rebuild_seconds(self) -> float:
        return math.fsum([u.rebuild_seconds for u in self.users])

    @property
    def mean_update_seconds(self) -> float:
        """Average cost of folding one chunk into a live profile."""
        updates = sum(u.updates for u in self.users)
        if updates == 0:
            return 0.0
        return self.update_seconds / updates

    @property
    def mean_full_rebuild_seconds(self) -> float:
        """Average cost of one batch rebuild over a full timeline."""
        if not self.users:
            return 0.0
        return math.fsum([u.final_rebuild_seconds for u in self.users]) / len(self.users)

    @property
    def speedup(self) -> float:
        """How many times cheaper one streamed update is than rebuilding
        the profile from the whole timeline (the cost a non-incremental
        engine pays on every refresh)."""
        update = self.mean_update_seconds
        if update <= 0.0:
            return float("inf") if self.mean_full_rebuild_seconds > 0.0 else 1.0
        return self.mean_full_rebuild_seconds / update

    @property
    def exact(self) -> bool:
        return all(u.exact for u in self.users)

    @property
    def max_delta(self) -> float:
        return max((u.max_delta for u in self.users), default=0.0)

    def parity_ok(self, tolerance: float = 0.0) -> bool:
        """Whether every user's replay agreed within ``tolerance``."""
        return all(u.exact or u.max_delta <= tolerance for u in self.users)

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "source": self.source,
            "params": dict(self.params),
            "exact": self.exact,
            "max_delta": self.max_delta,
            "update_seconds": self.update_seconds,
            "rebuild_seconds": self.rebuild_seconds,
            "mean_update_seconds": self.mean_update_seconds,
            "mean_full_rebuild_seconds": self.mean_full_rebuild_seconds,
            "speedup": self.speedup,
            "users": [u.to_dict() for u in self.users],
        }


# -- profile comparison ----------------------------------------------------


def profile_delta(expected: Any, actual: Any) -> float:
    """Largest absolute elementwise difference between two profiles.

    0.0 means the profiles are equal (for floats: ``==``-equal, which
    the running accumulators guarantee bitwise); ``inf`` means they are
    structurally incomparable (different shapes or types).
    """
    if isinstance(expected, NGramGraph) and isinstance(actual, NGramGraph):
        a, b = dict(expected.edges()), dict(actual.edges())
        keys = set(a) | set(b)
        return max((abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys), default=0.0)
    if isinstance(expected, dict) and isinstance(actual, dict):
        keys = set(expected) | set(actual)
        return max(
            (abs(expected.get(k, 0.0) - actual.get(k, 0.0)) for k in keys),
            default=0.0,
        )
    if isinstance(expected, np.ndarray) and isinstance(actual, np.ndarray):
        if expected.shape != actual.shape:
            return float("inf")
        if expected.size == 0:
            return 0.0
        return float(np.max(np.abs(expected - actual)))
    if type(expected) is type(actual) and expected == actual:
        return 0.0
    return float("inf")


def profile_digest(profile: Any) -> str:
    """Short stable fingerprint of one profile's exact contents."""
    if isinstance(profile, NGramGraph):
        payload = repr(sorted(profile.edges()))
    elif isinstance(profile, dict):
        payload = repr(sorted(profile.items()))
    elif isinstance(profile, np.ndarray):
        payload = repr([float(x) for x in profile.reshape(-1).tolist()])
    else:
        payload = repr(profile)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# -- the replay core -------------------------------------------------------


def _chronological(
    docs: Sequence[TextDoc],
    labels: Sequence[int] | None,
    keys: Sequence[tuple[int, int]],
) -> tuple[list[TextDoc], list[int] | None, list[tuple[int, int]]]:
    """The stream in pinned ``(timestamp, tweet_id)`` fold order."""
    order = sorted(range(len(keys)), key=lambda i: keys[i])
    return (
        [docs[i] for i in order],
        [labels[i] for i in order] if labels is not None else None,
        [keys[i] for i in order],
    )


def _replay_user(
    model: Any,
    user: int,
    docs: Sequence[TextDoc],
    labels: Sequence[int] | None,
    keys: Sequence[tuple[int, int]],
    chunk_size: int,
) -> UserReplay:
    """Stream one user's timeline; check parity at every boundary."""
    docs, labels, keys = _chronological(docs, labels, keys)
    update_watch = Stopwatch()
    rebuild_watch = Stopwatch()
    with update_watch.measure():
        state = model.init_profile()
    value = state.value()
    exact = True
    max_delta = 0.0
    updates = 0
    final_rebuild = 0.0
    for start in range(0, len(docs), chunk_size):
        stop = start + chunk_size
        chunk_labels = labels[start:stop] if labels is not None else None
        with update_watch.measure():
            state.update(docs[start:stop], labels=chunk_labels, keys=keys[start:stop])
        # Materialising the profile (``value``) is priced separately
        # from the fold: an engine only pays it when it actually ranks,
        # not on every ingested tweet.
        value = state.value()
        updates += 1
        prefix_labels = labels[:stop] if labels is not None else None
        before = rebuild_watch.elapsed
        with rebuild_watch.measure():
            fresh = model.init_profile()
            fresh.update(docs[:stop], labels=prefix_labels, keys=keys[:stop])
            rebuilt = fresh.value()
        final_rebuild = rebuild_watch.elapsed - before
        delta = profile_delta(rebuilt, value)
        if delta != 0.0:
            exact = False
            max_delta = max(max_delta, delta)
    return UserReplay(
        user=user,
        docs=len(docs),
        updates=updates,
        exact=exact,
        max_delta=max_delta,
        digest=profile_digest(value),
        update_seconds=update_watch.elapsed,
        rebuild_seconds=rebuild_watch.elapsed,
        final_rebuild_seconds=final_rebuild,
    )


def _resolve_configs(spec: ReplaySpec) -> list[ModelConfig]:
    """The replayed configurations: the fast-grid pick of each model."""
    picks = {c.model: c for c in fast_grid(seed=spec.grid.seed)}
    missing = sorted(set(spec.models) - set(picks))
    if missing:
        raise ConfigurationError(f"no fast-grid configuration for models: {missing}")
    return [picks[model] for model in spec.models]


def _fit_for_replay(
    pipeline: ExperimentPipeline, spec: ReplaySpec, config: ModelConfig, users: tuple[int, ...]
) -> FittedModel:
    """Prepare and fit one configuration for replay, deterministically."""
    prepared = pipeline.prepare_corpus(RepresentationSource(spec.source), users)
    model = config.build()
    if spec.deterministic_topics and hasattr(model, "deterministic_inference"):
        model.deterministic_inference = True
    return pipeline.fit_model(model, prepared)


def _eligible(pipeline: ExperimentPipeline, spec: ReplaySpec) -> tuple[int, ...]:
    users = tuple(pipeline.eligible_users(spec.users))
    if not users:
        raise ValidationError("no eligible users to replay")
    return users


def _replay_model(
    pipeline: ExperimentPipeline,
    spec: ReplaySpec,
    config: ModelConfig,
    corpus_users: tuple[int, ...],
    replay_users: Sequence[int],
) -> tuple[UserReplay, ...]:
    """Replay a user subset against one freshly fitted configuration."""
    fitted = _fit_for_replay(pipeline, spec, config, corpus_users)
    results = []
    for uid in replay_users:
        docs, labels, keys = pipeline.profile_inputs(fitted, uid)
        results.append(
            _replay_user(fitted.model, uid, docs, labels, keys, spec.chunk_size)
        )
    return tuple(results)


# -- worker plumbing (``--jobs``) ------------------------------------------

#: One pipeline and one fitted-model cache per worker process: a worker
#: replays several user chunks of the same spec and must prepare the
#: corpus and fit each model only once.
_REPLAY_PIPELINES: dict[PipelineSpec, ExperimentPipeline] = {}
_REPLAY_FITS: dict[tuple, FittedModel] = {}


def _replay_worker(
    spec: ReplaySpec,
    model: str,
    params_key: str,
    corpus_users: tuple[int, ...],
    replay_users: tuple[int, ...],
) -> tuple[UserReplay, ...]:
    """Pool entry point: replay one user chunk of one model.

    Module-scope so it pickles under any start method. Configurations
    are resolved by (model, canonical parameter JSON) against the
    spec's grid, mirroring the sweep executors' worker index.
    """
    pipeline = _REPLAY_PIPELINES.get(spec.pipeline)
    if pipeline is None:
        pipeline = spec.pipeline.build()
        _REPLAY_PIPELINES[spec.pipeline] = pipeline
    config = None
    for candidate in _resolve_configs(spec):
        if candidate.model == model and canonical_params(candidate.params) == params_key:
            config = candidate
            break
    if config is None:
        raise ConfigurationError(
            f"replay worker cannot resolve configuration {model}|{params_key}"
        )
    fit_key = (spec.pipeline, spec.grid, spec.source, corpus_users, model, params_key)
    fitted = _REPLAY_FITS.get(fit_key)
    if fitted is None:
        fitted = _fit_for_replay(pipeline, spec, config, corpus_users)
        _REPLAY_FITS[fit_key] = fitted
    results = []
    for uid in replay_users:
        docs, labels, keys = pipeline.profile_inputs(fitted, uid)
        results.append(
            _replay_user(fitted.model, uid, docs, labels, keys, spec.chunk_size)
        )
    return tuple(results)


def _partition(users: tuple[int, ...], jobs: int) -> list[tuple[int, ...]]:
    """Contiguous near-even user chunks, preserving order."""
    jobs = max(1, min(jobs, len(users)))
    size, extra = divmod(len(users), jobs)
    chunks: list[tuple[int, ...]] = []
    start = 0
    for index in range(jobs):
        stop = start + size + (1 if index < extra else 0)
        chunks.append(users[start:stop])
        start = stop
    return [chunk for chunk in chunks if chunk]


# -- the driver ------------------------------------------------------------


def run_replay(
    spec: ReplaySpec,
    jobs: int = 1,
    telemetry: Telemetry | None = None,
) -> list[ModelReplay]:
    """Replay every model of the spec over its users; returns per-model
    parity and timing results in the spec's model order.

    Serial (``jobs == 1``) runs share one pipeline, so preprocessing
    and the prepared corpus amortise across models. ``jobs > 1``
    partitions each model's users into contiguous chunks replayed by a
    process pool; with deterministic topic inference the merged results
    carry digests bit-identical to a serial run.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    configs = _resolve_configs(spec)
    if jobs == 1:
        pipeline = spec.pipeline.build(telemetry)
        corpus_users = _eligible(pipeline, spec)
        results = []
        for config in configs:
            with tel.span("replay_model", model=config.model, source=spec.source):
                users = _replay_model(pipeline, spec, config, corpus_users, corpus_users)
            replay = ModelReplay(
                model=config.model,
                source=spec.source,
                params=dict(config.params),
                users=users,
            )
            tel.count("replay.users", len(users))
            tel.count("replay.updates", sum(u.updates for u in users))
            tel.emit(
                "replay_model_done",
                model=replay.model,
                source=replay.source,
                exact=replay.exact,
                max_delta=replay.max_delta,
                speedup=replay.speedup,
            )
            results.append(replay)
        return results

    # Eligibility is deterministic in the dataset config and split
    # protocol, so the parent's partition and each worker's corpus
    # (always the full eligible set) agree by construction.
    corpus_users = _eligible(spec.pipeline.build(), spec)
    chunks = _partition(corpus_users, jobs)
    context = multiprocessing.get_context()
    results = []
    with context.Pool(processes=min(jobs, len(chunks) * len(configs))) as pool:
        pending = []
        for config in configs:
            params_key = canonical_params(config.params)
            pending.append(
                (
                    config,
                    [
                        pool.apply_async(
                            _replay_worker,
                            (spec, config.model, params_key, corpus_users, chunk),
                        )
                        for chunk in chunks
                    ],
                )
            )
        for config, handles in pending:
            with tel.span("replay_model", model=config.model, source=spec.source):
                users = tuple(
                    user
                    for handle in handles
                    for user in handle.get(timeout=REPLAY_TASK_TIMEOUT_SECONDS)
                )
            replay = ModelReplay(
                model=config.model,
                source=spec.source,
                params=dict(config.params),
                users=users,
            )
            tel.count("replay.users", len(users))
            tel.count("replay.updates", sum(u.updates for u in users))
            tel.emit(
                "replay_model_done",
                model=replay.model,
                source=replay.source,
                exact=replay.exact,
                max_delta=replay.max_delta,
                speedup=replay.speedup,
            )
            results.append(replay)
    return results
