"""Sweep runner: evaluate configuration grids over sources and user groups.

One :class:`SweepRunner` owns an
:class:`~repro.core.pipeline.ExperimentPipeline` and a user-group mapping.
``run`` walks (model config x source) pairs, evaluates each over every
requested group, and collects :class:`SweepRow` records. The aggregation
helpers then answer the paper's questions: Mean/Min/Max MAP per (model,
source, group) for Figures 3-6 and Table 6, the best configuration per
(model, source) for Table 7, and timing summaries for Figure 7.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.errors import ConfigurationError
from repro.eval.metrics import MapSummary, mean_average_precision, summarize_maps
from repro.eval.timing import TimingSummary, summarize_timings
from repro.experiments.configs import ModelConfig
from repro.obs.events import EventLog
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.twitter.entities import UserType

__all__ = ["SweepRow", "SweepResult", "SweepRunner"]


@dataclass(frozen=True)
class SweepRow:
    """One evaluated (configuration, source, group) data point."""

    model: str
    params: dict
    source: RepresentationSource
    group: UserType
    map_score: float
    per_user_ap: dict[int, float]
    training_seconds: float
    testing_seconds: float
    #: Per-phase span rollup of the evaluation that produced this row
    #: (prepare/fit/profiles/rank seconds); empty for legacy rows.
    phase_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class SweepResult:
    """All rows of a sweep plus the paper's aggregations."""

    rows: list[SweepRow]
    #: Optional provenance record (see :class:`repro.obs.manifest.RunManifest`);
    #: populated when the sweep ran under telemetry or was loaded from a
    #: manifest-bearing JSON file.
    manifest: dict | None = None

    def filtered(
        self,
        model: str | None = None,
        source: RepresentationSource | None = None,
        group: UserType | None = None,
    ) -> list[SweepRow]:
        return [
            r
            for r in self.rows
            if (model is None or r.model == model)
            and (source is None or r.source is source)
            and (group is None or r.group is group)
        ]

    def map_summary(
        self, model: str, source: RepresentationSource, group: UserType
    ) -> MapSummary:
        """Min / Mean / Max MAP across the model's configurations."""
        maps = [r.map_score for r in self.filtered(model, source, group)]
        return summarize_maps(maps)

    def source_summary(
        self, source: RepresentationSource, group: UserType
    ) -> MapSummary:
        """Table 6 cell: Min/Mean/Max MAP over *all* models' configs."""
        maps = [r.map_score for r in self.filtered(source=source, group=group)]
        return summarize_maps(maps)

    def best_configuration(
        self, model: str, source: RepresentationSource
    ) -> SweepRow:
        """Table 7 cell: the configuration with the highest MAP for a
        (model, source) pair, averaged across user groups."""
        rows = self.filtered(model=model, source=source)
        if not rows:
            raise KeyError(f"no rows for {model} on {source}")
        by_params: dict[str, list[SweepRow]] = {}
        for row in rows:
            by_params.setdefault(repr(sorted(row.params.items())), []).append(row)
        best_rows = max(
            by_params.values(),
            key=lambda rs: mean_average_precision([r.map_score for r in rs]),
        )
        return best_rows[0]

    def timing_summary(self, model: str) -> tuple[TimingSummary, TimingSummary]:
        """Figure 7 cell: (TTime, ETime) min/avg/max across all rows."""
        rows = [r for r in self.rows if r.model == model]
        if not rows:
            raise KeyError(f"no rows for model {model}")
        return (
            summarize_timings([r.training_seconds for r in rows]),
            summarize_timings([r.testing_seconds for r in rows]),
        )

    def models(self) -> tuple[str, ...]:
        return tuple(sorted({r.model for r in self.rows}))


def _console_progress(record: dict) -> None:  # pragma: no cover - console side effect
    """Event sink reproducing the legacy ``progress=True`` console line."""
    if record.get("event") == "config_result":
        print(
            f"  {record['label']} on {record['source']}: MAP={record['map']:.3f}"
        )
    elif record.get("event") == "config_skipped":
        print(f"  {record['label']} on {record['source']}: skipped ({record['reason']})")


class SweepRunner:
    """Evaluates configuration grids over sources and user groups.

    Parameters
    ----------
    pipeline:
        The shared evaluation pipeline.
    groups:
        User-group membership (user ids per :class:`UserType`).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`. Defaults to
        the pipeline's own, so instrumenting the pipeline is enough to
        get sweep-level progress events, per-config spans and skip
        counters.
    """

    def __init__(
        self,
        pipeline: ExperimentPipeline,
        groups: dict[UserType, list[int]],
        telemetry: Telemetry | None = None,
    ):
        self.pipeline = pipeline
        self.groups = groups
        self.telemetry = telemetry

    def _telemetry(self) -> Telemetry:
        if self.telemetry is not None:
            return self.telemetry
        if self.pipeline.telemetry is not None:
            return self.pipeline.telemetry
        return NULL_TELEMETRY

    def run(
        self,
        configurations: Iterable[ModelConfig],
        sources: Sequence[RepresentationSource],
        groups: Sequence[UserType] | None = None,
        progress: bool = False,
    ) -> SweepResult:
        """Evaluate every (configuration, source) over the user groups.

        Configurations invalid for a source (Rocchio without negative
        examples) are skipped, exactly as in the paper's protocol. The
        per-user APs are computed once per (config, source) on the union
        of all groups' users, then sliced per group -- the groups share
        users with the All-Users group, so this avoids recomputation.

        Progress is reported as a structured event stream
        (``sweep_start`` / ``config_result`` / ``config_skipped`` /
        ``sweep_done``); ``progress=True`` attaches a console sink to
        that stream for the duration of the run.
        """
        if groups is None:
            groups = list(self.groups)
        tel = self._telemetry()
        # With telemetry disabled events still flow to the progress
        # console sink through a throwaway local log.
        events = tel.events if tel.enabled else EventLog()
        rows: list[SweepRow] = []
        # Group membership is immutable during a sweep: materialise each
        # group's member set once instead of per (config, source, group).
        membership = {g: frozenset(self.groups[g]) for g in groups}
        union_users = sorted({uid for members in membership.values() for uid in members})
        configurations = list(configurations)

        if progress:
            events.add_sink(_console_progress)
        try:
            events.emit(
                "sweep_start",
                configurations=len(configurations),
                sources=[s.value for s in sources],
                groups=[g.value for g in groups],
                users=len(union_users),
            )
            for config in configurations:
                for source in sources:
                    if config.uses_rocchio and not source.has_negative_examples:
                        tel.count("sweep.configs.skipped_rocchio")
                        events.emit(
                            "config_skipped",
                            label=config.label(),
                            source=source.value,
                            reason="rocchio needs negative examples",
                        )
                        continue
                    model = config.build()
                    with tel.span("config", label=config.label(), source=source.value):
                        try:
                            result = self.pipeline.evaluate(model, source, union_users)
                        except ConfigurationError as error:
                            tel.count("sweep.configs.skipped_invalid")
                            events.emit(
                                "config_skipped",
                                label=config.label(),
                                source=source.value,
                                reason=str(error),
                            )
                            continue
                    tel.count("sweep.configs.evaluated")
                    events.emit(
                        "config_result",
                        label=config.label(),
                        model=config.model,
                        source=source.value,
                        map=result.map_score,
                        training_seconds=result.training_seconds,
                        testing_seconds=result.testing_seconds,
                    )
                    for group in groups:
                        members = membership[group]
                        member_ap = {
                            uid: ap
                            for uid, ap in result.per_user_ap.items()
                            if uid in members
                        }
                        if not member_ap:
                            continue
                        rows.append(
                            SweepRow(
                                model=config.model,
                                params=dict(config.params),
                                source=source,
                                group=group,
                                map_score=mean_average_precision(list(member_ap.values())),
                                per_user_ap=member_ap,
                                training_seconds=result.training_seconds,
                                testing_seconds=result.testing_seconds,
                                phase_seconds=dict(result.phase_seconds),
                            )
                        )
            events.emit("sweep_done", rows=len(rows))
        finally:
            if progress:
                events.remove_sink(_console_progress)
        manifest = tel.manifest.to_dict() if tel.enabled and tel.manifest else None
        return SweepResult(rows, manifest=manifest)

    def baselines(
        self, groups: Sequence[UserType] | None = None, random_iterations: int = 1000
    ) -> dict[UserType, dict[str, float]]:
        """CHR and RAN MAP per user group."""
        if groups is None:
            groups = list(self.groups)
        result: dict[UserType, dict[str, float]] = {}
        for group in groups:
            users = self.groups[group]
            chr_ap = self.pipeline.evaluate_chronological(users)
            ran_ap = self.pipeline.evaluate_random(users, iterations=random_iterations)
            result[group] = {
                "CHR": mean_average_precision(list(chr_ap.values())),
                "RAN": mean_average_precision(list(ran_ap.values())),
            }
        return result
