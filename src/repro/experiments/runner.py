"""Sweep runner: evaluate configuration grids over sources and user groups.

One :class:`SweepRunner` owns an
:class:`~repro.core.pipeline.ExperimentPipeline` and a user-group mapping.
``run`` walks (model config x source) pairs, evaluates each over every
requested group, and collects :class:`SweepRow` records. The aggregation
helpers then answer the paper's questions: Mean/Min/Max MAP per (model,
source, group) for Figures 3-6 and Table 6, the best configuration per
(model, source) for Table 7, and timing summaries for Figure 7.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.errors import ConfigurationError
from repro.eval.metrics import MapSummary, mean_average_precision, summarize_maps
from repro.eval.timing import TimingSummary, summarize_timings
from repro.experiments.configs import ModelConfig
from repro.twitter.entities import UserType

__all__ = ["SweepRow", "SweepResult", "SweepRunner"]


@dataclass(frozen=True)
class SweepRow:
    """One evaluated (configuration, source, group) data point."""

    model: str
    params: dict
    source: RepresentationSource
    group: UserType
    map_score: float
    per_user_ap: dict[int, float]
    training_seconds: float
    testing_seconds: float


@dataclass
class SweepResult:
    """All rows of a sweep plus the paper's aggregations."""

    rows: list[SweepRow]

    def filtered(
        self,
        model: str | None = None,
        source: RepresentationSource | None = None,
        group: UserType | None = None,
    ) -> list[SweepRow]:
        return [
            r
            for r in self.rows
            if (model is None or r.model == model)
            and (source is None or r.source is source)
            and (group is None or r.group is group)
        ]

    def map_summary(
        self, model: str, source: RepresentationSource, group: UserType
    ) -> MapSummary:
        """Min / Mean / Max MAP across the model's configurations."""
        maps = [r.map_score for r in self.filtered(model, source, group)]
        return summarize_maps(maps)

    def source_summary(
        self, source: RepresentationSource, group: UserType
    ) -> MapSummary:
        """Table 6 cell: Min/Mean/Max MAP over *all* models' configs."""
        maps = [r.map_score for r in self.filtered(source=source, group=group)]
        return summarize_maps(maps)

    def best_configuration(
        self, model: str, source: RepresentationSource
    ) -> SweepRow:
        """Table 7 cell: the configuration with the highest MAP for a
        (model, source) pair, averaged across user groups."""
        rows = self.filtered(model=model, source=source)
        if not rows:
            raise KeyError(f"no rows for {model} on {source}")
        by_params: dict[str, list[SweepRow]] = {}
        for row in rows:
            by_params.setdefault(repr(sorted(row.params.items())), []).append(row)
        best_rows = max(
            by_params.values(),
            key=lambda rs: mean_average_precision([r.map_score for r in rs]),
        )
        return best_rows[0]

    def timing_summary(self, model: str) -> tuple[TimingSummary, TimingSummary]:
        """Figure 7 cell: (TTime, ETime) min/avg/max across all rows."""
        rows = [r for r in self.rows if r.model == model]
        if not rows:
            raise KeyError(f"no rows for model {model}")
        return (
            summarize_timings([r.training_seconds for r in rows]),
            summarize_timings([r.testing_seconds for r in rows]),
        )

    def models(self) -> tuple[str, ...]:
        return tuple(sorted({r.model for r in self.rows}))


class SweepRunner:
    """Evaluates configuration grids over sources and user groups."""

    def __init__(
        self,
        pipeline: ExperimentPipeline,
        groups: dict[UserType, list[int]],
    ):
        self.pipeline = pipeline
        self.groups = groups

    def run(
        self,
        configurations: Iterable[ModelConfig],
        sources: Sequence[RepresentationSource],
        groups: Sequence[UserType] | None = None,
        progress: bool = False,
    ) -> SweepResult:
        """Evaluate every (configuration, source) over the user groups.

        Configurations invalid for a source (Rocchio without negative
        examples) are skipped, exactly as in the paper's protocol. The
        per-user APs are computed once per (config, source) on the union
        of all groups' users, then sliced per group -- the groups share
        users with the All-Users group, so this avoids recomputation.
        """
        if groups is None:
            groups = list(self.groups)
        rows: list[SweepRow] = []
        union_users = sorted({uid for g in groups for uid in self.groups[g]})

        for config in configurations:
            for source in sources:
                if config.uses_rocchio and not source.has_negative_examples:
                    continue
                model = config.build()
                try:
                    result = self.pipeline.evaluate(model, source, union_users)
                except ConfigurationError:
                    continue
                if progress:  # pragma: no cover - console side effect
                    print(f"  {config.label()} on {source}: MAP={result.map_score:.3f}")
                for group in groups:
                    member_ap = {
                        uid: ap
                        for uid, ap in result.per_user_ap.items()
                        if uid in set(self.groups[group])
                    }
                    if not member_ap:
                        continue
                    rows.append(
                        SweepRow(
                            model=config.model,
                            params=dict(config.params),
                            source=source,
                            group=group,
                            map_score=mean_average_precision(list(member_ap.values())),
                            per_user_ap=member_ap,
                            training_seconds=result.training_seconds,
                            testing_seconds=result.testing_seconds,
                        )
                    )
        return SweepResult(rows)

    def baselines(
        self, groups: Sequence[UserType] | None = None, random_iterations: int = 1000
    ) -> dict[UserType, dict[str, float]]:
        """CHR and RAN MAP per user group."""
        if groups is None:
            groups = list(self.groups)
        result: dict[UserType, dict[str, float]] = {}
        for group in groups:
            users = self.groups[group]
            chr_ap = self.pipeline.evaluate_chronological(users)
            ran_ap = self.pipeline.evaluate_random(users, iterations=random_iterations)
            result[group] = {
                "CHR": mean_average_precision(list(chr_ap.values())),
                "RAN": mean_average_precision(list(ran_ap.values())),
            }
        return result
