"""Sweep runner: evaluate configuration grids over sources and user groups.

One :class:`SweepRunner` owns an
:class:`~repro.core.pipeline.ExperimentPipeline` and a user-group mapping.
``run`` decomposes the (model config x source) grid into *cells*, hands
them to a pluggable executor (serial in-process by default, or a process
pool via :class:`~repro.experiments.executors.ProcessCellExecutor`), and
assembles :class:`SweepRow` records in canonical cell order -- so row
ordering and values are identical whichever executor ran the cells. A
:class:`~repro.experiments.persistence.SweepJournal` makes runs durable:
each completed cell is appended to a JSONL journal as it finishes, and a
resumed run restores journaled cells instead of re-evaluating them.

Failure is a first-class outcome: a cell the executor quarantined (every
supervised attempt failed -- see :mod:`repro.experiments.supervision`)
lands in :attr:`SweepResult.failures` as a :class:`FailedCell` instead
of aborting the sweep, is journaled with its post-mortem, and is
*re-queued* -- not restored -- when the journal is resumed, so
``--resume`` retries exactly the quarantined cells.

The aggregation helpers then answer the paper's questions: Mean/Min/Max
MAP per (model, source, group) for Figures 3-6 and Table 6, the best
configuration per (model, source) for Table 7, and timing summaries for
Figure 7.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.core.stages import canonical_params
from repro.eval.metrics import (
    MapSummary,
    map_over_users,
    mean_average_precision,
    summarize_maps,
)
from repro.eval.timing import TimingSummary, summarize_timings
from repro.experiments.configs import ModelConfig
from repro.experiments.executors import Cell, CellOutcome, SerialCellExecutor
from repro.experiments.supervision import CellFailure
from repro.obs.events import EventLog
from repro.obs.profiler import active_sampler
from repro.obs.progress import (
    ProgressLineSink,
    SweepProgressTracker,
    console_progress_sink,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.twitter.entities import UserType

__all__ = ["FailedCell", "SweepRow", "SweepResult", "SweepRunner"]


@dataclass(frozen=True)
class SweepRow:
    """One evaluated (configuration, source, group) data point."""

    model: str
    params: dict
    source: RepresentationSource
    group: UserType
    map_score: float
    per_user_ap: dict[int, float]
    training_seconds: float
    testing_seconds: float
    #: Per-phase span rollup of the evaluation that produced this row
    #: (prepare/fit/profiles/rank seconds); empty for legacy rows.
    phase_seconds: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class FailedCell:
    """One quarantined (configuration, source) cell of a sweep."""

    model: str
    params: dict = field(hash=False)
    source: RepresentationSource = RepresentationSource.R
    failure: CellFailure = field(
        default_factory=lambda: CellFailure("error", "", "", 1, 0.0), hash=False
    )


@dataclass
class SweepResult:
    """All rows of a sweep plus the paper's aggregations."""

    rows: list[SweepRow]
    #: Optional provenance record (see :class:`repro.obs.manifest.RunManifest`);
    #: populated when the sweep ran under telemetry or was loaded from a
    #: manifest-bearing JSON file.
    manifest: dict | None = None
    #: Cells quarantined by executor supervision, in canonical order;
    #: empty for a clean sweep. Their rows are simply absent, and every
    #: report derived from this result says so (see
    #: :meth:`failure_annotation`).
    failures: list[FailedCell] = field(default_factory=list)

    def filtered(
        self,
        model: str | None = None,
        source: RepresentationSource | None = None,
        group: UserType | None = None,
    ) -> list[SweepRow]:
        return [
            r
            for r in self.rows
            if (model is None or r.model == model)
            and (source is None or r.source is source)
            and (group is None or r.group is group)
        ]

    def map_summary(
        self, model: str, source: RepresentationSource, group: UserType
    ) -> MapSummary:
        """Min / Mean / Max MAP across the model's configurations."""
        maps = [r.map_score for r in self.filtered(model, source, group)]
        return summarize_maps(maps)

    def source_summary(
        self, source: RepresentationSource, group: UserType
    ) -> MapSummary:
        """Table 6 cell: Min/Mean/Max MAP over *all* models' configs."""
        maps = [r.map_score for r in self.filtered(source=source, group=group)]
        return summarize_maps(maps)

    def best_configuration(
        self, model: str, source: RepresentationSource
    ) -> SweepRow:
        """Table 7 cell: the configuration with the highest MAP for a
        (model, source) pair, averaged across user groups."""
        rows = self.filtered(model=model, source=source)
        if not rows:
            raise KeyError(f"no rows for {model} on {source}")
        # Group the per-group rows of one configuration under the same
        # canonical JSON key the staged engine uses for artifacts and
        # journal cells, so key equality is exactly parameter equality.
        by_params: dict[str, list[SweepRow]] = {}
        for row in rows:
            by_params.setdefault(canonical_params(row.params), []).append(row)
        best_rows = max(
            by_params.values(),
            key=lambda rs: mean_average_precision([r.map_score for r in rs]),
        )
        return best_rows[0]

    def timing_summary(self, model: str) -> tuple[TimingSummary, TimingSummary]:
        """Figure 7 cell: (TTime, ETime) min/avg/max across all rows."""
        rows = [r for r in self.rows if r.model == model]
        if not rows:
            raise KeyError(f"no rows for model {model}")
        return (
            summarize_timings([r.training_seconds for r in rows]),
            summarize_timings([r.testing_seconds for r in rows]),
        )

    def models(self) -> tuple[str, ...]:
        return tuple(sorted({r.model for r in self.rows}))

    def cell_count(self) -> int:
        """Distinct (configuration, source) cells this result covers --
        evaluated ones plus quarantined ones."""
        evaluated = {
            (r.model, canonical_params(r.params), r.source.value) for r in self.rows
        }
        return len(evaluated) + len(self.failures)

    def failure_annotation(self) -> str:
        """One-line health warning for reports; empty when nothing failed.

        Every table and figure formatter appends this, so a rendered
        report can never silently pass off a partial sweep as complete.
        """
        if not self.failures:
            return ""
        kinds = sorted({f.failure.kind for f in self.failures})
        return (
            f"WARNING: {len(self.failures)}/{self.cell_count()} cells failed "
            f"({', '.join(kinds)}) and are missing from this report; "
            "rerun with --resume to retry quarantined cells."
        )


class SweepRunner:
    """Evaluates configuration grids over sources and user groups.

    Parameters
    ----------
    pipeline:
        The shared evaluation pipeline.
    groups:
        User-group membership (user ids per :class:`UserType`).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`. Defaults to
        the pipeline's own, so instrumenting the pipeline is enough to
        get sweep-level progress events, per-config spans and skip
        counters.
    """

    def __init__(
        self,
        pipeline: ExperimentPipeline,
        groups: dict[UserType, list[int]],
        telemetry: Telemetry | None = None,
    ):
        self.pipeline = pipeline
        self.groups = groups
        self.telemetry = telemetry

    def _telemetry(self) -> Telemetry:
        if self.telemetry is not None:
            return self.telemetry
        if self.pipeline.telemetry is not None:
            return self.pipeline.telemetry
        return NULL_TELEMETRY

    def run(
        self,
        configurations: Iterable[ModelConfig],
        sources: Sequence[RepresentationSource],
        groups: Sequence[UserType] | None = None,
        progress: bool = False,
        progress_line: bool = False,
        executor=None,
        journal=None,
    ) -> SweepResult:
        """Evaluate every (configuration, source) over the user groups.

        Configurations invalid for a source (Rocchio without negative
        examples) are skipped, exactly as in the paper's protocol. The
        per-user APs are computed once per (config, source) cell on the
        union of all groups' users, then sliced per group -- the groups
        share users with the All-Users group, so this avoids
        recomputation.

        ``executor`` selects how cells run: in-process and serial by
        default, or a :class:`~repro.experiments.executors.ProcessCellExecutor`
        for parallel fan-out. Rows are assembled in canonical
        (configuration, source) order whatever the executor's completion
        order, so serial and parallel sweeps produce identical results.

        ``journal`` (a :class:`~repro.experiments.persistence.SweepJournal`)
        records each completed cell as it finishes; cells already in the
        journal are restored without re-evaluation, which is how
        ``--resume`` picks up an interrupted sweep.

        Progress is reported as a structured event stream
        (``sweep_start`` / ``cell_dispatched`` / ``cell_started`` /
        ``cell_finished`` / ``cell_joined`` / ``cell_restored`` /
        ``config_result`` / ``config_skipped`` / ``sweep_progress`` /
        ``sweep_done``). The executors attribute ``cell_started`` /
        ``cell_finished`` to a worker id and attempt, and after every
        joined cell the runner emits a ``sweep_progress`` heartbeat --
        cells done/total, per-worker occupancy, EWMA cell interval and
        ETA -- which also lands in the journal as a heartbeat line, so
        ``repro monitor`` can tail either artifact.

        ``progress=True`` attaches the verbose per-cell console sink for
        the duration of the run; ``progress_line=True`` attaches the
        minimal self-overwriting progress line instead (both may be on).
        """
        if groups is None:
            groups = list(self.groups)
        tel = self._telemetry()
        # With telemetry disabled events still flow to the progress
        # console sink through a throwaway local log.
        events = tel.events if tel.enabled else EventLog()
        # Group membership is immutable during a sweep: materialise each
        # group's member set once instead of per (config, source, group).
        membership = {g: frozenset(self.groups[g]) for g in groups}
        union_users = tuple(
            sorted({uid for members in membership.values() for uid in members})
        )
        configurations = list(configurations)
        if executor is None:
            executor = SerialCellExecutor(self.pipeline, telemetry=tel)
        elif getattr(executor, "telemetry", None) is None and hasattr(
            executor, "telemetry"
        ):
            # Caller-built executors inherit the runner's telemetry, so
            # their supervision counters and retry events land in the
            # same stream as the sweep's own.
            executor.telemetry = tel
        jobs = getattr(executor, "jobs", 1)

        # The tracker folds the event stream into live progress state;
        # its snapshots become the sweep_progress heartbeats below.
        tracker = events.add_sink(SweepProgressTracker())
        line_sink = ProgressLineSink() if progress_line else None
        if progress:
            events.add_sink(console_progress_sink)
        if line_sink is not None:
            events.add_sink(line_sink)
        try:
            events.emit(
                "sweep_start",
                configurations=len(configurations),
                sources=[s.value for s in sources],
                groups=[g.value for g in groups],
                users=len(union_users),
                jobs=jobs,
            )
            # Decompose the grid into cells in canonical order; restore
            # journaled ones, dispatch the rest.
            ordered: list[Cell] = []
            pending: list[tuple[Cell, ModelConfig]] = []
            outcomes: dict[str, CellOutcome] = {}
            for config in configurations:
                for source in sources:
                    if config.uses_rocchio and not source.has_negative_examples:
                        tel.count("sweep.configs.skipped_rocchio")
                        events.emit(
                            "config_skipped",
                            label=config.label(),
                            source=source.value,
                            reason="rocchio needs negative examples",
                        )
                        continue
                    cell = Cell(
                        model=config.model,
                        params=dict(config.params),
                        label=config.label(),
                        source=source.value,
                        users=union_users,
                    )
                    ordered.append(cell)
                    if journal is not None and cell.key in journal:
                        restored = journal.outcome(cell.key)
                        if restored.failure is None:
                            outcomes[cell.key] = restored
                            tel.count("sweep.cells.restored")
                            events.emit(
                                "cell_restored",
                                cell=cell.key,
                                label=cell.label,
                                source=cell.source,
                            )
                            continue
                        # Quarantined last run: re-queue instead of
                        # restoring, so --resume is the retry mechanism.
                        # The journal's last-record-wins semantics let a
                        # fresh outcome overwrite the failure record.
                        tel.count("sweep.cells.requeued")
                        events.emit(
                            "cell_requeued",
                            cell=cell.key,
                            label=cell.label,
                            source=cell.source,
                            kind=restored.failure.kind,
                            error=restored.failure.error,
                        )
                    pending.append((cell, config))

            with tel.span("sweep", jobs=jobs, cells=len(pending)):
                for cell, _config in pending:
                    tel.count("sweep.cells.dispatched")
                    events.emit(
                        "cell_dispatched",
                        cell=cell.key,
                        label=cell.label,
                        source=cell.source,
                    )
                # When this process is being profiled, workers sample
                # themselves at the same rate; their profiles merge into
                # the active sampler via Telemetry.absorb below.
                profiling = active_sampler()
                for cell, outcome in executor.run_cells(
                    pending,
                    collect_telemetry=tel.enabled,
                    sample_resources=tel.resources is not None,
                    profile_hz=profiling.hz if profiling is not None else None,
                ):
                    if outcome.telemetry is not None:
                        tel.absorb(outcome.telemetry)
                    tel.count("sweep.cells.joined")
                    events.emit(
                        "cell_joined",
                        cell=cell.key,
                        label=cell.label,
                        source=cell.source,
                    )
                    if outcome.failure is not None:
                        tel.count("sweep.cell.quarantined")
                        events.emit(
                            "cell_quarantined",
                            cell=cell.key,
                            label=cell.label,
                            source=cell.source,
                            kind=outcome.failure.kind,
                            error=outcome.failure.error,
                            message=outcome.failure.message,
                            attempts=outcome.failure.attempts,
                        )
                    elif outcome.skipped is not None:
                        tel.count("sweep.configs.skipped_invalid")
                        events.emit(
                            "config_skipped",
                            label=cell.label,
                            source=cell.source,
                            reason=outcome.skipped,
                        )
                    else:
                        tel.count("sweep.configs.evaluated")
                        events.emit(
                            "config_result",
                            label=cell.label,
                            model=cell.model,
                            source=cell.source,
                            map=map_over_users(outcome.per_user_ap),
                            training_seconds=outcome.training_seconds,
                            testing_seconds=outcome.testing_seconds,
                        )
                    if journal is not None:
                        journal.record(cell, outcome)
                    outcomes[cell.key] = outcome
                    heartbeat = events.emit("sweep_progress", **tracker.snapshot())
                    if journal is not None:
                        journal.heartbeat(heartbeat)

            # Assemble rows in canonical cell order: results are
            # position-independent of executor completion order and of
            # how many cells came back from the journal.
            rows: list[SweepRow] = []
            failures: list[FailedCell] = []
            for cell in ordered:
                outcome = outcomes.get(cell.key)
                if outcome is None or outcome.skipped is not None:
                    continue
                if outcome.failure is not None:
                    failures.append(
                        FailedCell(
                            model=cell.model,
                            params=dict(cell.params),
                            source=RepresentationSource(cell.source),
                            failure=outcome.failure,
                        )
                    )
                    continue
                source = RepresentationSource(cell.source)
                for group in groups:
                    members = membership[group]
                    # Ascending user-id order, so the float summation in
                    # MAP is identical whether the outcome came from the
                    # evaluation (already sorted), a worker, or the
                    # journal.
                    member_ap = {
                        uid: outcome.per_user_ap[uid]
                        for uid in sorted(outcome.per_user_ap)
                        if uid in members
                    }
                    if not member_ap:
                        continue
                    rows.append(
                        SweepRow(
                            model=cell.model,
                            params=dict(cell.params),
                            source=source,
                            group=group,
                            map_score=map_over_users(member_ap),
                            per_user_ap=member_ap,
                            training_seconds=outcome.training_seconds,
                            testing_seconds=outcome.testing_seconds,
                            phase_seconds=dict(outcome.phase_seconds),
                        )
                    )
            events.emit(
                "sweep_done",
                rows=len(rows),
                evaluated=len(pending),
                restored=len(ordered) - len(pending),
                failed=len(failures),
            )
            if journal is not None:
                # Final heartbeat: the journal's last word says finished.
                journal.heartbeat(
                    events.emit("sweep_progress", **tracker.snapshot())
                )
        finally:
            events.remove_sink(tracker)
            if progress:
                events.remove_sink(console_progress_sink)
            if line_sink is not None:
                events.remove_sink(line_sink)
        manifest = tel.manifest.to_dict() if tel.enabled and tel.manifest else None
        return SweepResult(rows, manifest=manifest, failures=failures)

    def baselines(
        self, groups: Sequence[UserType] | None = None, random_iterations: int = 1000
    ) -> dict[UserType, dict[str, float]]:
        """CHR and RAN MAP per user group."""
        if groups is None:
            groups = list(self.groups)
        result: dict[UserType, dict[str, float]] = {}
        for group in groups:
            users = self.groups[group]
            chr_ap = self.pipeline.evaluate_chronological(users)
            ran_ap = self.pipeline.evaluate_random(users, iterations=random_iterations)
            result[group] = {
                "CHR": map_over_users(chr_ap),
                "RAN": map_over_users(ran_ap),
            }
        return result
