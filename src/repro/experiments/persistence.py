"""Saving and loading sweep results; the resumable sweep journal.

Sweeps are expensive (the paper's ran for days), so their results should
be durable. :func:`save_sweep` writes a :class:`~repro.experiments.runner.SweepResult`
to JSON; :func:`load_sweep` restores it with full fidelity, so reports
can be regenerated and extended without re-running a single evaluation.

Durability *during* a run comes from :class:`SweepJournal`: the sweep
runner appends one JSON line per completed (configuration, source) cell
as it finishes, flushed immediately, so a killed sweep loses at most the
cell in flight. Reopening the journal with ``resume=True`` restores the
completed cells and the runner skips them -- that is what
``repro sweep --resume`` does. A partially-written final line (the
typical residue of a hard kill) is tolerated and ignored on load.

Sweep files are self-describing: they embed the run's provenance
manifest (seed, dataset configuration, model grid, package version --
see :class:`repro.obs.manifest.RunManifest`) and, for runs under
telemetry, each row carries its per-phase span rollup
(``phase_seconds``). Files written before these fields existed load
unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.errors import PersistenceError
from repro.core.sources import RepresentationSource
from repro.experiments.executors import Cell, CellOutcome
from repro.experiments.runner import FailedCell, SweepResult, SweepRow
from repro.experiments.supervision import CellFailure
from repro.obs.manifest import RunManifest
from repro.obs.progress import HEARTBEAT_RECORD
from repro.twitter.entities import UserType

__all__ = ["SweepJournal", "save_sweep", "load_sweep"]

#: Format marker for forward compatibility. The manifest and
#: ``phase_seconds`` fields are optional additions within version 1.
_FORMAT_VERSION = 1

#: Journal header markers (first line of every journal file).
_JOURNAL_FORMAT = "repro-sweep-journal"
_JOURNAL_VERSION = 1

#: Keys every complete journal cell record carries. A line that parses
#: as JSON but lacks one of these is *not* a completed cell -- it is
#: either a torn tail (tolerable, last line only) or corruption.
_RECORD_REQUIRED_KEYS = frozenset(
    {
        "cell",
        "model",
        "params",
        "source",
        "per_user_ap",
        "training_seconds",
        "testing_seconds",
    }
)


def _row_to_dict(row: SweepRow) -> dict:
    return {
        "model": row.model,
        "params": row.params,
        "source": row.source.value,
        "group": row.group.value,
        "map_score": row.map_score,
        "per_user_ap": {str(uid): ap for uid, ap in row.per_user_ap.items()},
        "training_seconds": row.training_seconds,
        "testing_seconds": row.testing_seconds,
        "phase_seconds": row.phase_seconds,
    }


def _per_user_ap_from_dict(payload: dict) -> dict[int, float]:
    """Rebuild a per-user AP map in ascending user-id order.

    JSON object keys are strings, and the journal/sweep files sort them
    lexicographically ("10" before "2"); restoring in numeric order
    keeps dict iteration -- and therefore float summation in MAP
    computations -- identical to the original evaluation's.
    """
    return {uid: float(payload[key]) for uid, key in sorted(
        (int(key), key) for key in payload
    )}


def _row_from_dict(entry: dict) -> SweepRow:
    return SweepRow(
        model=entry["model"],
        params=dict(entry["params"]),
        source=RepresentationSource(entry["source"]),
        group=UserType(entry["group"]),
        map_score=float(entry["map_score"]),
        per_user_ap=_per_user_ap_from_dict(entry["per_user_ap"]),
        training_seconds=float(entry["training_seconds"]),
        testing_seconds=float(entry["testing_seconds"]),
        phase_seconds={
            str(k): float(v) for k, v in entry.get("phase_seconds", {}).items()
        },
    )


def save_sweep(
    result: SweepResult,
    path: str | Path,
    manifest: RunManifest | dict | None = None,
) -> Path:
    """Serialise a sweep result to JSON at ``path``.

    ``manifest`` (a :class:`~repro.obs.manifest.RunManifest` or its
    dict form) overrides the manifest already attached to ``result``.
    """
    path = Path(path)
    if manifest is None:
        manifest_dict = result.manifest
    elif isinstance(manifest, RunManifest):
        manifest_dict = manifest.to_dict()
    else:
        manifest_dict = dict(manifest)
    payload = {
        "version": _FORMAT_VERSION,
        "manifest": manifest_dict,
        "rows": [_row_to_dict(row) for row in result.rows],
        "failures": [
            {
                "model": failed.model,
                "params": failed.params,
                "source": failed.source.value,
                "failure": failed.failure.to_dict(),
            }
            for failed in result.failures
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


def load_sweep(path: str | Path) -> SweepResult:
    """Restore a sweep result saved by :func:`save_sweep`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise PersistenceError(f"unsupported sweep file version: {version!r}")
    rows = [_row_from_dict(entry) for entry in payload["rows"]]
    failures = [
        FailedCell(
            model=entry["model"],
            params=dict(entry["params"]),
            source=RepresentationSource(entry["source"]),
            failure=CellFailure.from_dict(entry["failure"]),
        )
        for entry in payload.get("failures", [])
    ]
    return SweepResult(rows, manifest=payload.get("manifest"), failures=failures)


def _outcome_to_dict(cell: Cell, outcome: CellOutcome) -> dict:
    return {
        "cell": cell.key,
        "model": outcome.model,
        "params": outcome.params,
        "source": outcome.source,
        "skipped": outcome.skipped,
        "per_user_ap": {str(uid): ap for uid, ap in outcome.per_user_ap.items()},
        "training_seconds": outcome.training_seconds,
        "testing_seconds": outcome.testing_seconds,
        "phase_seconds": outcome.phase_seconds,
        "attempts": outcome.attempts,
        "failure": None if outcome.failure is None else outcome.failure.to_dict(),
    }


def _outcome_from_dict(entry: dict) -> CellOutcome:
    failure = entry.get("failure")
    return CellOutcome(
        model=entry["model"],
        params=dict(entry["params"]),
        source=entry["source"],
        skipped=entry.get("skipped"),
        per_user_ap=_per_user_ap_from_dict(entry["per_user_ap"]),
        training_seconds=float(entry["training_seconds"]),
        testing_seconds=float(entry["testing_seconds"]),
        phase_seconds={
            str(k): float(v) for k, v in entry.get("phase_seconds", {}).items()
        },
        attempts=int(entry.get("attempts", 1)),
        failure=None if failure is None else CellFailure.from_dict(failure),
    )


class SweepJournal:
    """Append-only JSONL record of completed sweep cells.

    The first line is a header identifying the format; each further line
    is one completed cell's outcome, written and flushed the moment the
    cell finishes. Opening with ``resume=True`` loads the completed
    cells from an existing file (tolerating a torn final line from a
    hard kill) and appends new cells after them; the default truncates
    and starts a fresh journal.

    Usage::

        with SweepJournal(path, resume=True) as journal:
            result = runner.run(configs, sources, journal=journal)
    """

    def __init__(self, path: str | Path, resume: bool = False):
        self.path = Path(path)
        self._outcomes: dict[str, CellOutcome] = {}
        self._stream: IO[str] | None = None
        self._restored = 0
        if resume and self.path.exists():
            self._load()
            self._restored = len(self._outcomes)
            self._stream = self.path.open("a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("w", encoding="utf-8")
            self._write_line(
                {"format": _JOURNAL_FORMAT, "version": _JOURNAL_VERSION}
            )

    def _load(self) -> None:
        """Scan the journal with an explicit two-state machine.

        State 1 expects the header; state 2 expects complete cell
        records. A cell counts as complete only if its line parses as
        JSON *and* carries every key in ``_RECORD_REQUIRED_KEYS`` --
        a torn tail that happens to truncate into valid JSON (or an
        interrupted writer that got the key out before the result) must
        re-run its cell, not masquerade as a finished one. Torn tails
        are tolerated on the final line only; anywhere else they are
        corruption and refuse to load.
        """
        text = self.path.read_text(encoding="utf-8")
        lines = text.splitlines()
        good: list[str] = []
        header_seen = False
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            is_last = index == len(lines) - 1
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if is_last:
                    # Torn final line: the record in flight when the
                    # previous run was killed. Drop it; its cell simply
                    # re-runs.
                    break
                raise PersistenceError(
                    f"corrupt journal line {index + 1} in {self.path}"
                ) from None
            if not header_seen:
                if (
                    not isinstance(entry, dict)
                    or entry.get("format") != _JOURNAL_FORMAT
                    or entry.get("version") != _JOURNAL_VERSION
                ):
                    raise PersistenceError(
                        f"{self.path} is not a version-{_JOURNAL_VERSION} sweep journal"
                    )
                header_seen = True
                good.append(line)
                continue
            if isinstance(entry, dict) and entry.get("record") == HEARTBEAT_RECORD:
                # Progress heartbeats are monitoring state, not cells:
                # keep the line (monitors replay them) but restore
                # nothing from it.
                good.append(line)
                continue
            if not isinstance(entry, dict) or not _RECORD_REQUIRED_KEYS <= entry.keys():
                if is_last:
                    break
                raise PersistenceError(
                    f"incomplete cell record at journal line {index + 1} "
                    f"in {self.path}"
                )
            self._outcomes[entry["cell"]] = _outcome_from_dict(entry)
            good.append(line)
        if not header_seen:
            raise PersistenceError(f"journal {self.path} has no header line")
        # Truncate the torn tail (and normalise the trailing newline)
        # before appending, or the next record would concatenate onto
        # the half-written fragment and corrupt the file for good.
        sanitized = "\n".join(good) + "\n"
        if sanitized != text:
            self.path.write_text(sanitized, encoding="utf-8")

    def _write_line(self, payload: dict) -> None:
        assert self._stream is not None
        self._stream.write(json.dumps(payload, sort_keys=True, default=str) + "\n")
        self._stream.flush()

    def __contains__(self, key: str) -> bool:
        return key in self._outcomes

    def __len__(self) -> int:
        return len(self._outcomes)

    @property
    def restored(self) -> int:
        """How many completed cells were loaded from disk at open."""
        return self._restored

    def outcome(self, key: str) -> CellOutcome:
        return self._outcomes[key]

    def quarantined(self) -> list[str]:
        """Cell keys whose latest journal record is a quarantine
        failure -- the cells a ``--resume`` run will retry."""
        return [
            key
            for key, outcome in self._outcomes.items()
            if outcome.failure is not None
        ]

    def record(self, cell: Cell, outcome: CellOutcome) -> None:
        """Append one completed cell, flushing immediately."""
        if self._stream is None:
            raise PersistenceError(f"journal {self.path} is closed")
        self._write_line(_outcome_to_dict(cell, outcome))
        self._outcomes[cell.key] = outcome

    def heartbeat(self, fields: dict) -> None:
        """Append a progress heartbeat line (monitoring state, not a cell).

        The runner passes the ``sweep_progress`` event record here after
        each journaled cell, so ``repro monitor <journal>`` can report
        done/total, worker occupancy and ETA without the event stream.
        Heartbeats are skipped (not restored) on ``resume=True``.
        """
        if self._stream is None:
            raise PersistenceError(f"journal {self.path} is closed")
        self._write_line({"record": HEARTBEAT_RECORD, **fields})

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
