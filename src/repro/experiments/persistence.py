"""Saving and loading sweep results.

Sweeps are expensive (the paper's ran for days), so their results should
be durable. :func:`save_sweep` writes a :class:`~repro.experiments.runner.SweepResult`
to JSON; :func:`load_sweep` restores it with full fidelity, so reports
can be regenerated and extended without re-running a single evaluation.

Sweep files are self-describing: they embed the run's provenance
manifest (seed, dataset configuration, model grid, package version --
see :class:`repro.obs.manifest.RunManifest`) and, for runs under
telemetry, each row carries its per-phase span rollup
(``phase_seconds``). Files written before these fields existed load
unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.sources import RepresentationSource
from repro.experiments.runner import SweepResult, SweepRow
from repro.obs.manifest import RunManifest
from repro.twitter.entities import UserType

__all__ = ["save_sweep", "load_sweep"]

#: Format marker for forward compatibility. The manifest and
#: ``phase_seconds`` fields are optional additions within version 1.
_FORMAT_VERSION = 1


def save_sweep(
    result: SweepResult,
    path: str | Path,
    manifest: RunManifest | dict | None = None,
) -> Path:
    """Serialise a sweep result to JSON at ``path``.

    ``manifest`` (a :class:`~repro.obs.manifest.RunManifest` or its
    dict form) overrides the manifest already attached to ``result``.
    """
    path = Path(path)
    if manifest is None:
        manifest_dict = result.manifest
    elif isinstance(manifest, RunManifest):
        manifest_dict = manifest.to_dict()
    else:
        manifest_dict = dict(manifest)
    payload = {
        "version": _FORMAT_VERSION,
        "manifest": manifest_dict,
        "rows": [
            {
                "model": row.model,
                "params": row.params,
                "source": row.source.value,
                "group": row.group.value,
                "map_score": row.map_score,
                "per_user_ap": {str(uid): ap for uid, ap in row.per_user_ap.items()},
                "training_seconds": row.training_seconds,
                "testing_seconds": row.testing_seconds,
                "phase_seconds": row.phase_seconds,
            }
            for row in result.rows
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


def load_sweep(path: str | Path) -> SweepResult:
    """Restore a sweep result saved by :func:`save_sweep`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported sweep file version: {version!r}")
    rows = [
        SweepRow(
            model=entry["model"],
            params=dict(entry["params"]),
            source=RepresentationSource(entry["source"]),
            group=UserType(entry["group"]),
            map_score=float(entry["map_score"]),
            per_user_ap={int(k): float(v) for k, v in entry["per_user_ap"].items()},
            training_seconds=float(entry["training_seconds"]),
            testing_seconds=float(entry["testing_seconds"]),
            phase_seconds={
                str(k): float(v)
                for k, v in entry.get("phase_seconds", {}).items()
            },
        )
        for entry in payload["rows"]
    ]
    return SweepResult(rows, manifest=payload.get("manifest"))
