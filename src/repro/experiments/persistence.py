"""Saving and loading sweep results; the resumable sweep journal.

Sweeps are expensive (the paper's ran for days), so their results should
be durable. :func:`save_sweep` writes a :class:`~repro.experiments.runner.SweepResult`
to JSON; :func:`load_sweep` restores it with full fidelity, so reports
can be regenerated and extended without re-running a single evaluation.

Durability *during* a run comes from :class:`SweepJournal`: the sweep
runner appends one JSON line per completed (configuration, source) cell
as it finishes, flushed immediately, so a killed sweep loses at most the
cell in flight. Reopening the journal with ``resume=True`` restores the
completed cells and the runner skips them -- that is what
``repro sweep --resume`` does. A partially-written final line (the
typical residue of a hard kill) is tolerated and ignored on load.

Sweep files are self-describing: they embed the run's provenance
manifest (seed, dataset configuration, model grid, package version --
see :class:`repro.obs.manifest.RunManifest`) and, for runs under
telemetry, each row carries its per-phase span rollup
(``phase_seconds``). Files written before these fields existed load
unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.errors import PersistenceError
from repro.core.sources import RepresentationSource
from repro.experiments.executors import Cell, CellOutcome
from repro.experiments.runner import SweepResult, SweepRow
from repro.obs.manifest import RunManifest
from repro.twitter.entities import UserType

__all__ = ["SweepJournal", "save_sweep", "load_sweep"]

#: Format marker for forward compatibility. The manifest and
#: ``phase_seconds`` fields are optional additions within version 1.
_FORMAT_VERSION = 1

#: Journal header markers (first line of every journal file).
_JOURNAL_FORMAT = "repro-sweep-journal"
_JOURNAL_VERSION = 1


def _row_to_dict(row: SweepRow) -> dict:
    return {
        "model": row.model,
        "params": row.params,
        "source": row.source.value,
        "group": row.group.value,
        "map_score": row.map_score,
        "per_user_ap": {str(uid): ap for uid, ap in row.per_user_ap.items()},
        "training_seconds": row.training_seconds,
        "testing_seconds": row.testing_seconds,
        "phase_seconds": row.phase_seconds,
    }


def _per_user_ap_from_dict(payload: dict) -> dict[int, float]:
    """Rebuild a per-user AP map in ascending user-id order.

    JSON object keys are strings, and the journal/sweep files sort them
    lexicographically ("10" before "2"); restoring in numeric order
    keeps dict iteration -- and therefore float summation in MAP
    computations -- identical to the original evaluation's.
    """
    return {uid: float(payload[key]) for uid, key in sorted(
        (int(key), key) for key in payload
    )}


def _row_from_dict(entry: dict) -> SweepRow:
    return SweepRow(
        model=entry["model"],
        params=dict(entry["params"]),
        source=RepresentationSource(entry["source"]),
        group=UserType(entry["group"]),
        map_score=float(entry["map_score"]),
        per_user_ap=_per_user_ap_from_dict(entry["per_user_ap"]),
        training_seconds=float(entry["training_seconds"]),
        testing_seconds=float(entry["testing_seconds"]),
        phase_seconds={
            str(k): float(v) for k, v in entry.get("phase_seconds", {}).items()
        },
    )


def save_sweep(
    result: SweepResult,
    path: str | Path,
    manifest: RunManifest | dict | None = None,
) -> Path:
    """Serialise a sweep result to JSON at ``path``.

    ``manifest`` (a :class:`~repro.obs.manifest.RunManifest` or its
    dict form) overrides the manifest already attached to ``result``.
    """
    path = Path(path)
    if manifest is None:
        manifest_dict = result.manifest
    elif isinstance(manifest, RunManifest):
        manifest_dict = manifest.to_dict()
    else:
        manifest_dict = dict(manifest)
    payload = {
        "version": _FORMAT_VERSION,
        "manifest": manifest_dict,
        "rows": [_row_to_dict(row) for row in result.rows],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


def load_sweep(path: str | Path) -> SweepResult:
    """Restore a sweep result saved by :func:`save_sweep`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise PersistenceError(f"unsupported sweep file version: {version!r}")
    rows = [_row_from_dict(entry) for entry in payload["rows"]]
    return SweepResult(rows, manifest=payload.get("manifest"))


def _outcome_to_dict(cell: Cell, outcome: CellOutcome) -> dict:
    return {
        "cell": cell.key,
        "model": outcome.model,
        "params": outcome.params,
        "source": outcome.source,
        "skipped": outcome.skipped,
        "per_user_ap": {str(uid): ap for uid, ap in outcome.per_user_ap.items()},
        "training_seconds": outcome.training_seconds,
        "testing_seconds": outcome.testing_seconds,
        "phase_seconds": outcome.phase_seconds,
    }


def _outcome_from_dict(entry: dict) -> CellOutcome:
    return CellOutcome(
        model=entry["model"],
        params=dict(entry["params"]),
        source=entry["source"],
        skipped=entry.get("skipped"),
        per_user_ap=_per_user_ap_from_dict(entry["per_user_ap"]),
        training_seconds=float(entry["training_seconds"]),
        testing_seconds=float(entry["testing_seconds"]),
        phase_seconds={
            str(k): float(v) for k, v in entry.get("phase_seconds", {}).items()
        },
    )


class SweepJournal:
    """Append-only JSONL record of completed sweep cells.

    The first line is a header identifying the format; each further line
    is one completed cell's outcome, written and flushed the moment the
    cell finishes. Opening with ``resume=True`` loads the completed
    cells from an existing file (tolerating a torn final line from a
    hard kill) and appends new cells after them; the default truncates
    and starts a fresh journal.

    Usage::

        with SweepJournal(path, resume=True) as journal:
            result = runner.run(configs, sources, journal=journal)
    """

    def __init__(self, path: str | Path, resume: bool = False):
        self.path = Path(path)
        self._outcomes: dict[str, CellOutcome] = {}
        self._stream: IO[str] | None = None
        self._restored = 0
        if resume and self.path.exists():
            self._load()
            self._restored = len(self._outcomes)
            self._stream = self.path.open("a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("w", encoding="utf-8")
            self._write_line(
                {"format": _JOURNAL_FORMAT, "version": _JOURNAL_VERSION}
            )

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        entries: list[dict] = []
        good: list[str] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # Torn final line: the record in flight when the
                    # previous run was killed. Drop it; its cell simply
                    # re-runs.
                    break
                raise PersistenceError(
                    f"corrupt journal line {index + 1} in {self.path}"
                ) from None
            good.append(line)
        if not entries:
            raise PersistenceError(f"journal {self.path} has no header line")
        header = entries[0]
        if (
            header.get("format") != _JOURNAL_FORMAT
            or header.get("version") != _JOURNAL_VERSION
        ):
            raise PersistenceError(f"{self.path} is not a version-{_JOURNAL_VERSION} sweep journal")
        for entry in entries[1:]:
            self._outcomes[entry["cell"]] = _outcome_from_dict(entry)
        # Truncate the torn tail (and normalise the trailing newline)
        # before appending, or the next record would concatenate onto
        # the half-written fragment and corrupt the file for good.
        sanitized = "\n".join(good) + "\n"
        if sanitized != self.path.read_text(encoding="utf-8"):
            self.path.write_text(sanitized, encoding="utf-8")

    def _write_line(self, payload: dict) -> None:
        assert self._stream is not None
        self._stream.write(json.dumps(payload, sort_keys=True, default=str) + "\n")
        self._stream.flush()

    def __contains__(self, key: str) -> bool:
        return key in self._outcomes

    def __len__(self) -> int:
        return len(self._outcomes)

    @property
    def restored(self) -> int:
        """How many completed cells were loaded from disk at open."""
        return self._restored

    def outcome(self, key: str) -> CellOutcome:
        return self._outcomes[key]

    def record(self, cell: Cell, outcome: CellOutcome) -> None:
        """Append one completed cell, flushing immediately."""
        if self._stream is None:
            raise PersistenceError(f"journal {self.path} is closed")
        self._write_line(_outcome_to_dict(cell, outcome))
        self._outcomes[cell.key] = outcome

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
