"""Experiment harness: configuration grids, sweep runner, reports."""

from repro.experiments.configs import MODEL_NAMES, ConfigGrid, ModelConfig
from repro.experiments.executors import (
    Cell,
    CellOutcome,
    GridSpec,
    PipelineSpec,
    ProcessCellExecutor,
    SerialCellExecutor,
    SweepSpec,
    evaluate_cell,
)
from repro.experiments.persistence import SweepJournal, load_sweep, save_sweep
from repro.experiments.replay import (
    ModelReplay,
    ReplaySpec,
    UserReplay,
    profile_delta,
    profile_digest,
    run_replay,
)
from repro.experiments.report import (
    format_figure7,
    format_figure_map,
    format_table2,
    format_table3,
    format_table6,
    format_table7,
)
from repro.experiments.runner import SweepResult, SweepRow, SweepRunner
from repro.experiments.significance import (
    compare_models,
    format_significance_matrix,
    significance_matrix,
)
from repro.experiments.standard import (
    FIGURE_SOURCES,
    BenchSetup,
    bench_dataset,
    bench_grid,
    bench_setup,
    fast_grid,
)

__all__ = [
    "BenchSetup",
    "Cell",
    "CellOutcome",
    "compare_models",
    "evaluate_cell",
    "format_significance_matrix",
    "load_sweep",
    "save_sweep",
    "significance_matrix",
    "ConfigGrid",
    "FIGURE_SOURCES",
    "GridSpec",
    "MODEL_NAMES",
    "ModelConfig",
    "ModelReplay",
    "PipelineSpec",
    "ProcessCellExecutor",
    "ReplaySpec",
    "SerialCellExecutor",
    "SweepJournal",
    "SweepResult",
    "SweepRow",
    "SweepRunner",
    "SweepSpec",
    "UserReplay",
    "bench_dataset",
    "bench_grid",
    "bench_setup",
    "fast_grid",
    "format_figure7",
    "format_figure_map",
    "format_table2",
    "format_table3",
    "format_table6",
    "format_table7",
    "profile_delta",
    "profile_digest",
    "run_replay",
]
