"""Pluggable sweep executors: serial default, supervised process fan-out.

A sweep is a grid of *cells* -- one (configuration, source) pair
evaluated over the union of the user groups. :class:`SerialCellExecutor`
walks them in-process on the runner's own pipeline (the historical
behaviour). :class:`ProcessCellExecutor` farms them out to a supervised
pool of worker processes: each worker reconstructs an equivalent
pipeline from a picklable :class:`SweepSpec` (dataset config + split
protocol + grid scaling), evaluates its cells, and ships the result --
plus its telemetry spans, events and metric snapshots -- back to the
parent, which merges them into its own stream.

Both executors yield ``(cell, outcome)`` pairs in *submission order*
regardless of completion order, and every model is seeded through the
grid spec, so the rows a sweep produces are bit-identical whichever
executor ran them.

Both executors also *supervise* their cells (see
:mod:`repro.experiments.supervision`): a failed attempt is retried with
seeded-jitter exponential backoff, and a cell that exhausts its attempts
comes back as a quarantined outcome carrying a typed
:class:`~repro.experiments.supervision.CellFailure` instead of raising.
The process executor additionally enforces per-attempt wall-clock
timeouts and detects dead workers -- each worker has its own task and
result queues, so a crash or a terminated hang loses one cell attempt,
never the run, and the pool replaces the casualty with a fresh process.

``ModelConfig`` factories are closures and cannot cross a process
boundary; instead a cell names its configuration by (model, canonical
parameter JSON) and the worker rebuilds the grid from the
:class:`GridSpec` and looks the configuration up. The grid spec must
therefore describe the *same* grid the parent enumerated -- including
scaling knobs that do not appear in the parameters, like
``infer_iterations``.
"""

from __future__ import annotations

import heapq
import multiprocessing
import pickle
import queue
import time
from collections.abc import Iterator, Sequence
from contextlib import ExitStack
from dataclasses import dataclass, field

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.core.stages import canonical_params
from repro.core.temporal import TemporalWeighting
from repro.errors import ConfigurationError
from repro.experiments.configs import ConfigGrid, ModelConfig
from repro.experiments.supervision import CellFailure, SupervisionPolicy
from repro.faults.injector import maybe_armed
from repro.faults.plan import FaultPlan
from repro.obs.events import EventLog, MemorySink
from repro.obs.profiler import StackSampler
from repro.obs.resources import ResourceSampler
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

from repro.twitter.dataset import DatasetConfig, generate_dataset

__all__ = [
    "Cell",
    "CellOutcome",
    "GridSpec",
    "PipelineSpec",
    "ProcessCellExecutor",
    "SerialCellExecutor",
    "SweepSpec",
    "evaluate_cell",
]


@dataclass(frozen=True)
class GridSpec:
    """Picklable description of a :class:`ConfigGrid`.

    ``temporal_axis`` rides along as a tuple of frozen
    :class:`~repro.core.temporal.TemporalWeighting` points, so a worker
    rebuilding the grid enumerates the same temporally crossed cells the
    parent submitted.
    """

    topic_scale: float = 1.0
    iteration_scale: float = 1.0
    infer_iterations: int = 20
    btm_max_biterms: int | None = None
    seed: int = 0
    temporal_axis: tuple[TemporalWeighting, ...] = ()

    @classmethod
    def from_grid(cls, grid: ConfigGrid) -> "GridSpec":
        return cls(
            topic_scale=grid.topic_scale,
            iteration_scale=grid.iteration_scale,
            infer_iterations=grid.infer_iterations,
            btm_max_biterms=grid.btm_max_biterms,
            seed=grid.seed,
            temporal_axis=tuple(grid.temporal_axis),
        )

    def build(self) -> ConfigGrid:
        return ConfigGrid(
            topic_scale=self.topic_scale,
            iteration_scale=self.iteration_scale,
            infer_iterations=self.infer_iterations,
            btm_max_biterms=self.btm_max_biterms,
            seed=self.seed,
            temporal_axis=self.temporal_axis,
        )


@dataclass(frozen=True)
class PipelineSpec:
    """Picklable recipe for reconstructing an equivalent pipeline."""

    dataset: DatasetConfig
    test_fraction: float = 0.2
    negatives_per_positive: int = 4
    seed: int = 0
    max_train_docs_per_user: int | None = None
    top_k_stop_words: int = 100

    def build(self, telemetry: Telemetry | None = None) -> ExperimentPipeline:
        return ExperimentPipeline(
            generate_dataset(self.dataset),
            test_fraction=self.test_fraction,
            negatives_per_positive=self.negatives_per_positive,
            seed=self.seed,
            max_train_docs_per_user=self.max_train_docs_per_user,
            top_k_stop_words=self.top_k_stop_words,
            telemetry=telemetry,
        )


@dataclass(frozen=True)
class SweepSpec:
    """Everything a worker needs to evaluate any cell of one sweep."""

    pipeline: PipelineSpec
    grid: GridSpec


@dataclass(frozen=True)
class Cell:
    """One (configuration, source) evaluation unit of a sweep."""

    model: str
    params: dict = field(hash=False)
    label: str = field(hash=False)
    source: str = field(hash=False)
    users: tuple[int, ...] = field(hash=False)

    @property
    def params_key(self) -> str:
        return canonical_params(self.params)

    @property
    def key(self) -> str:
        """Stable cell identity: journal key and event correlation id."""
        return f"{self.model}|{self.source}|{self.params_key}"


@dataclass
class CellOutcome:
    """What one cell evaluation produced (or why it didn't produce)."""

    model: str
    params: dict
    source: str
    skipped: str | None = None
    per_user_ap: dict[int, float] = field(default_factory=dict)
    training_seconds: float = 0.0
    testing_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Worker telemetry to merge at join time: {"spans": [...],
    #: "events": [...], "metrics": {...}}. None for in-process cells,
    #: whose telemetry flowed to the parent stream directly.
    telemetry: dict | None = None
    #: How many supervised attempts the cell took (1 = first try).
    attempts: int = 1
    #: Set when the cell was quarantined: every attempt failed, and this
    #: records the final attempt's taxonomy class and post-mortem.
    failure: CellFailure | None = None


#: One pipeline / config index per worker process, keyed by spec; a
#: worker evaluates many cells of the same sweep and must prepare each
#: source's corpus only once (the whole point of the staged engine).
_WORKER_PIPELINES: dict[PipelineSpec, ExperimentPipeline] = {}
_WORKER_INDEXES: dict[GridSpec, dict[tuple[str, str], ModelConfig]] = {}


def _worker_pipeline(spec: PipelineSpec) -> ExperimentPipeline:
    pipeline = _WORKER_PIPELINES.get(spec)
    if pipeline is None:
        pipeline = spec.build()
        _WORKER_PIPELINES[spec] = pipeline  # repro: allow[RPR012] -- per-process memo of a pure rebuild from the picklable spec; never flows back to the parent
    return pipeline


def _worker_index(spec: GridSpec) -> dict[tuple[str, str], ModelConfig]:
    index = _WORKER_INDEXES.get(spec)
    if index is None:
        index = {
            (config.model, canonical_params(config.params)): config
            for config in spec.build().iter_all()
        }
        _WORKER_INDEXES[spec] = index  # repro: allow[RPR012] -- per-process memo derived deterministically from the grid spec; identical in every worker
    return index


def evaluate_cell(
    spec: SweepSpec,
    cell: Cell,
    collect_telemetry: bool = False,
    sample_resources: bool = False,
    attempt: int = 1,
    fault_plan: FaultPlan | None = None,
    profile_hz: float | None = None,
) -> CellOutcome:
    """Evaluate one cell against a worker-local pipeline.

    Runs in a pool worker (but is an ordinary function: the serial
    parity tests call it in-process). The pipeline and the grid's
    configuration index are cached per process, so corpus preparation
    and preprocessing amortise across all cells a worker receives.

    With ``sample_resources`` a worker-local
    :class:`~repro.obs.resources.ResourceSampler` runs for the duration
    of the cell, so the spans shipped back in ``outcome.telemetry``
    carry this *worker process's* RSS peaks -- the parent's own sampler
    cannot see across the process boundary. ``profile_hz`` does the
    same for stack sampling: a worker-local
    :class:`~repro.obs.profiler.StackSampler` runs at that rate and the
    resulting profile document ships back under
    ``outcome.telemetry["profile"]`` for
    :meth:`~repro.obs.telemetry.Telemetry.absorb` to merge.

    ``attempt`` and ``fault_plan`` belong to supervision: the attempt
    number flows from the supervisor (it survives worker replacement, so
    ``times``-bounded flaky faults recover deterministically), and the
    plan -- explicit, or ambient via ``REPRO_FAULT_PLAN`` -- is armed
    around the evaluation so stage checkpoints can fire its faults.
    """
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    with ExitStack() as stack:
        telemetry = None
        profiler = None
        if collect_telemetry:
            sampler = (
                stack.enter_context(ResourceSampler()) if sample_resources else None
            )
            telemetry = Telemetry(resources=sampler)
            if profile_hz is not None:
                profiler = stack.enter_context(StackSampler(hz=profile_hz))
        events = MemorySink()
        if telemetry is not None:
            telemetry.events.add_sink(events)
        pipeline = _worker_pipeline(spec.pipeline)
        pipeline.telemetry = telemetry
        config = _worker_index(spec.grid).get((cell.model, cell.params_key))
        if config is None:
            raise ConfigurationError(
                f"cell {cell.key} has no matching configuration in the worker grid; "
                "the sweep spec's GridSpec must describe the grid the parent enumerated"
            )
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        outcome = CellOutcome(
            model=cell.model,
            params=dict(cell.params),
            source=cell.source,
            attempts=attempt,
        )
        try:
            with tel.span("config", label=cell.label, source=cell.source):
                try:
                    with maybe_armed(
                        fault_plan, cell.model, cell.source, cell.params_key, attempt
                    ):
                        result = pipeline.evaluate(
                            config.build(), RepresentationSource(cell.source), list(cell.users)
                        )
                except ConfigurationError as error:
                    outcome.skipped = str(error)
                else:
                    outcome.per_user_ap = dict(result.per_user_ap)
                    outcome.training_seconds = result.training_seconds
                    outcome.testing_seconds = result.testing_seconds
                    outcome.phase_seconds = dict(result.phase_seconds)
        finally:
            pipeline.telemetry = None
    # Assembled after the ExitStack closes: the samplers' final
    # accounting (resource windows, profile wall_seconds) lands on
    # __exit__, so snapshotting earlier would under-report.
    if telemetry is not None:
        outcome.telemetry = {
            "spans": telemetry.tracer.to_payload(),
            "events": list(events.records),
            "metrics": telemetry.metrics.snapshot(),
        }
        if profiler is not None:
            outcome.telemetry["profile"] = profiler.profile.to_dict()
    return outcome


#: A unit of executor work: the picklable cell plus (for in-process
#: executors) the parent's own ModelConfig, whose factory closure cannot
#: cross a process boundary.
CellTask = tuple[Cell, ModelConfig | None]


class SerialCellExecutor:
    """Default executor: evaluates cells in-process, in order.

    Uses the runner's own pipeline, so split/document/corpus caches and
    live telemetry behave exactly as they always have. Supervision is
    retry-only: an in-process cell cannot be preempted, so the policy's
    ``timeout_seconds`` is not enforced here (run with ``--jobs`` when
    hangs are on the menu), and an injected ``crash`` fault genuinely
    takes the process down, exactly as a real crash would.
    """

    jobs = 1

    def __init__(
        self,
        pipeline: ExperimentPipeline,
        telemetry: Telemetry | None = None,
        policy: SupervisionPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.pipeline = pipeline
        self.telemetry = telemetry
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.fault_plan = fault_plan

    def run_cells(
        self,
        tasks: Sequence[CellTask],
        collect_telemetry: bool = False,
        sample_resources: bool = False,
        profile_hz: float | None = None,
    ) -> Iterator[tuple[Cell, CellOutcome]]:
        # ``sample_resources`` and ``profile_hz`` are accepted for
        # executor-interface parity but need no action here: in-process
        # cells record through the parent tracer, whose own resource
        # sampler / stack profiler (if any) already covers them.
        tel = self.telemetry if self.telemetry is not None else NULL_TELEMETRY
        events = tel.events if tel.enabled else EventLog()
        plan = self.fault_plan if self.fault_plan is not None else FaultPlan.from_env()
        for cell, config in tasks:
            if config is None:
                raise ConfigurationError(
                    f"serial executor needs the ModelConfig for cell {cell.key}"
                )
            yield cell, self._supervised(cell, config, tel, events, plan)

    def _supervised(
        self,
        cell: Cell,
        config: ModelConfig,
        tel: Telemetry,
        events: EventLog,
        plan: FaultPlan | None,
    ) -> CellOutcome:
        retry = self.policy.retry
        started = time.monotonic()
        for attempt in range(1, retry.max_attempts + 1):
            outcome = CellOutcome(
                model=cell.model,
                params=dict(cell.params),
                source=cell.source,
                attempts=attempt,
            )
            # Heartbeat attribution: the serial executor is its own,
            # only worker, so every attempt runs on worker 0.
            events.emit("cell_started", cell=cell.key, worker=0, attempt=attempt)
            attempt_started = time.monotonic()
            with tel.span("config", label=cell.label, source=cell.source):
                try:
                    with maybe_armed(plan, cell.model, cell.source, cell.params_key, attempt):
                        result = self.pipeline.evaluate(
                            config.build(),
                            RepresentationSource(cell.source),
                            list(cell.users),
                        )
                except ConfigurationError as error:
                    # Invalid (config, source) pairings are protocol
                    # skips, not faults: no retry, no quarantine.
                    outcome.skipped = str(error)
                    self._finished(events, cell, attempt, attempt_started, "skipped")
                    return outcome
                except Exception as error:
                    self._finished(events, cell, attempt, attempt_started, "error")
                    if attempt < retry.max_attempts:
                        tel.count("sweep.cell.retry")
                        events.emit(
                            "cell_retry",
                            cell=cell.key,
                            attempt=attempt,
                            kind="error",
                            error=type(error).__name__,
                            message=str(error),
                        )
                        time.sleep(retry.delay(cell.key, attempt))
                        continue
                    outcome.failure = CellFailure(
                        kind="error",
                        error=type(error).__name__,
                        message=str(error),
                        attempts=attempt,
                        elapsed_seconds=time.monotonic() - started,
                    )
                    return outcome
                else:
                    outcome.per_user_ap = dict(result.per_user_ap)
                    outcome.training_seconds = result.training_seconds
                    outcome.testing_seconds = result.testing_seconds
                    outcome.phase_seconds = dict(result.phase_seconds)
                    self._finished(events, cell, attempt, attempt_started, "ok")
                    return outcome
        raise AssertionError("unreachable: retry loop always returns")

    @staticmethod
    def _finished(
        events: EventLog, cell: Cell, attempt: int, started: float, status: str
    ) -> None:
        events.emit(
            "cell_finished",
            cell=cell.key,
            worker=0,
            attempt=attempt,
            status=status,
            seconds=time.monotonic() - started,
        )


def _pool_worker(task_queue, result_queue) -> None:
    """Worker main loop: unpickle task, evaluate, ship outcome.

    Plain function at module scope so it survives any start method. The
    loop polls with a bounded timeout (never an unbounded ``get``) and
    exits on the empty-bytes sentinel; any evaluation error is reported
    as a typed tuple, never allowed to kill the worker -- only a hard
    crash (``os._exit``, OOM kill, segfault) takes it down, and the
    supervisor detects that through ``is_alive``/``exitcode``.
    """
    while True:
        try:
            blob = task_queue.get(timeout=1.0)
        except queue.Empty:
            continue
        if blob == b"":
            break
        try:
            (
                index,
                attempt,
                spec,
                cell,
                collect_telemetry,
                sample_resources,
                plan,
                profile_hz,
            ) = pickle.loads(blob)
        except Exception as error:
            result_queue.put(("error", -1, type(error).__name__, str(error)))
            continue
        try:
            outcome = evaluate_cell(
                spec,
                cell,
                collect_telemetry,
                sample_resources,
                attempt=attempt,
                fault_plan=plan,
                profile_hz=profile_hz,
            )
        except Exception as error:
            result_queue.put(("error", index, type(error).__name__, str(error)))
        else:
            result_queue.put(("ok", index, outcome))


class _PoolWorker:
    """One supervised worker process with private task/result queues.

    Private queues are the crash-isolation boundary: terminating a
    process that shares a queue with its siblings can corrupt the
    queue's pipe mid-message, so each worker gets its own pair and a
    replacement worker gets fresh ones.
    """

    __slots__ = ("process", "tasks", "results", "current")

    def __init__(self) -> None:
        context = multiprocessing.get_context()
        self.tasks = context.Queue()
        self.results = context.Queue()
        self.process = context.Process(
            target=_pool_worker, args=(self.tasks, self.results), daemon=True
        )
        self.process.start()
        #: (cell index, attempt, monotonic start) of the in-flight task.
        self.current: tuple[int, int, float] | None = None

    def submit(self, blob: bytes, index: int, attempt: int) -> None:
        self.tasks.put(blob)
        self.current = (index, attempt, time.monotonic())

    def stop(self, grace_seconds: float = 1.0) -> None:
        """Best-effort orderly exit, escalating to terminate then kill."""
        try:
            self.tasks.put_nowait(b"")
        except (queue.Full, ValueError, OSError):
            pass
        self.process.join(timeout=grace_seconds)
        self.discard()

    def discard(self) -> None:
        """Force the process down and release its queues."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=1.0)
        for channel in (self.tasks, self.results):
            channel.close()
            channel.cancel_join_thread()


class ProcessCellExecutor:
    """Farms cells out to a supervised worker pool, preserving order.

    Workers rebuild the pipeline from ``spec`` (synthetic datasets are
    deterministic in their config, so every worker sees the same data)
    and return outcomes whose rows are bit-identical to a serial run.
    Results are joined in submission order so downstream row assembly is
    deterministic.

    Supervision: every attempt gets the policy's wall-clock budget (the
    worker is terminated and replaced on overrun), a dead worker --
    detected via ``is_alive``/``exitcode`` after its result queue drains
    empty -- costs one attempt of one cell, and failed attempts retry
    with seeded-jitter backoff until the policy's budget is exhausted,
    at which point the cell is quarantined behind a
    :class:`~repro.experiments.supervision.CellFailure` outcome.
    """

    def __init__(
        self,
        spec: SweepSpec,
        jobs: int,
        policy: SupervisionPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
    ):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.jobs = jobs
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.fault_plan = fault_plan
        self.telemetry = telemetry

    def run_cells(
        self,
        tasks: Sequence[CellTask],
        collect_telemetry: bool = False,
        sample_resources: bool = False,
        profile_hz: float | None = None,
    ) -> Iterator[tuple[Cell, CellOutcome]]:
        cells = [cell for cell, _config in tasks]
        if not cells:
            return
        plan = self.fault_plan if self.fault_plan is not None else FaultPlan.from_env()
        # Pickle every payload before a single worker exists: a cell
        # whose params cannot cross the process boundary fails loudly
        # here, with no pool spawned and nothing to leak.
        for cell in cells:
            try:
                pickle.dumps(cell)
            except Exception as error:
                raise ConfigurationError(
                    f"cell {cell.key} is not picklable and cannot be shipped "
                    f"to a worker process: {error}"
                ) from error
        supervisor = _Supervisor(
            executor=self,
            cells=cells,
            collect_telemetry=collect_telemetry,
            sample_resources=sample_resources,
            plan=plan,
            profile_hz=profile_hz,
        )
        workers = [_PoolWorker() for _ in range(min(self.jobs, len(cells)))]
        try:
            yield from supervisor.run(workers)
        finally:
            # The happy path, a raise, and an abandoned generator all
            # land here: no worker may outlive its sweep.
            for worker in workers:
                worker.stop()


class _Supervisor:
    """The scheduling state of one ``run_cells`` call."""

    def __init__(
        self, executor, cells, collect_telemetry, sample_resources, plan,
        profile_hz=None,
    ):
        self.executor = executor
        self.cells = cells
        self.collect_telemetry = collect_telemetry
        self.sample_resources = sample_resources
        self.plan = plan
        self.profile_hz = profile_hz
        tel = executor.telemetry if executor.telemetry is not None else NULL_TELEMETRY
        self.tel = tel
        self.events = tel.events if tel.enabled else EventLog()
        #: Min-heap of (not-before monotonic time, cell index, attempt).
        self.ready: list[tuple[float, int, int]] = [
            (0.0, index, 1) for index in range(len(cells))
        ]
        self.completed: dict[int, CellOutcome] = {}
        #: Wall-clock already spent per cell across failed attempts.
        self.elapsed: dict[int, float] = {}

    def _payload(self, index: int, attempt: int) -> bytes:
        return pickle.dumps(
            (
                index,
                attempt,
                self.executor.spec,
                self.cells[index],
                self.collect_telemetry,
                self.sample_resources,
                self.plan,
                self.profile_hz,
            )
        )

    def run(self, workers: list[_PoolWorker]) -> Iterator[tuple[Cell, CellOutcome]]:
        next_yield = 0
        while next_yield < len(self.cells):
            progress = self._assign(workers)
            for slot, worker in enumerate(workers):
                if worker.current is None:
                    continue
                if self._poll(slot, worker):
                    progress = True
                    continue
                replacement = self._check_dead(slot, worker) or self._check_timeout(
                    slot, worker
                )
                if replacement is not None:
                    workers[slot] = replacement
                    progress = True
            while next_yield in self.completed:
                yield self.cells[next_yield], self.completed.pop(next_yield)
                next_yield += 1
                progress = True
            if not progress:
                time.sleep(0.02)

    def _assign(self, workers: list[_PoolWorker]) -> bool:
        assigned = False
        now = time.monotonic()
        for slot, worker in enumerate(workers):
            if worker.current is not None or not self.ready:
                continue
            if self.ready[0][0] > now:
                break  # heap is time-ordered: nothing is due yet
            _not_before, index, attempt = heapq.heappop(self.ready)
            worker.submit(self._payload(index, attempt), index, attempt)
            self.events.emit(
                "cell_started",
                cell=self.cells[index].key,
                worker=slot,
                attempt=attempt,
            )
            assigned = True
        return assigned

    def _poll(self, slot: int, worker: _PoolWorker) -> bool:
        try:
            message = worker.results.get_nowait()
        except queue.Empty:
            return False
        self._handle(slot, worker, message)
        return True

    def _check_dead(self, slot: int, worker: _PoolWorker) -> _PoolWorker | None:
        if worker.process.is_alive():
            return None
        # The result may still be in the queue's feeder pipe; give it a
        # bounded grace period before declaring the attempt lost.
        try:
            message = worker.results.get(timeout=0.2)
        except queue.Empty:
            message = None
        if message is not None:
            self._handle(slot, worker, message)
        else:
            index, attempt, started = worker.current
            self._finished(slot, index, attempt, started, "crash")
            self._attempt_failed(
                index,
                attempt,
                time.monotonic() - started,
                kind="crash",
                error="WorkerCrashError",
                message=(
                    f"worker process died with exit code "
                    f"{worker.process.exitcode} during attempt {attempt}"
                ),
            )
        worker.discard()
        return _PoolWorker()

    def _check_timeout(self, slot: int, worker: _PoolWorker) -> _PoolWorker | None:
        budget = self.executor.policy.timeout_seconds
        if budget is None:
            return None
        index, attempt, started = worker.current
        overrun = time.monotonic() - started
        if overrun <= budget:
            return None
        self.tel.count("sweep.cell.timeout")
        worker.discard()
        self._finished(slot, index, attempt, started, "timeout")
        self._attempt_failed(
            index,
            attempt,
            overrun,
            kind="timeout",
            error="CellTimeoutError",
            message=(
                f"cell exceeded its {budget:g}s wall-clock budget on "
                f"attempt {attempt}; worker terminated"
            ),
        )
        return _PoolWorker()

    def _finished(
        self, slot: int, index: int, attempt: int, started: float, status: str
    ) -> None:
        self.events.emit(
            "cell_finished",
            cell=self.cells[index].key,
            worker=slot,
            attempt=attempt,
            status=status,
            seconds=time.monotonic() - started,
        )

    def _handle(self, slot: int, worker: _PoolWorker, message: tuple) -> None:
        index, attempt, started = worker.current
        worker.current = None
        if message[0] == "ok":
            outcome: CellOutcome = message[2]
            if outcome.telemetry is not None:
                # Join-time attribution: the worker process cannot know
                # its slot, so the supervisor stamps it here and
                # Telemetry.absorb carries it onto spans and events.
                outcome.telemetry.setdefault("worker", slot)
                outcome.telemetry.setdefault("attempt", attempt)
            status = "skipped" if outcome.skipped is not None else "ok"
            self._finished(slot, index, attempt, started, status)
            self.completed[index] = outcome
            return
        _kind, _index, error_name, error_message = message
        self._finished(slot, index, attempt, started, "error")
        self._attempt_failed(
            index,
            attempt,
            time.monotonic() - started,
            kind="error",
            error=error_name,
            message=error_message,
        )

    def _attempt_failed(
        self,
        index: int,
        attempt: int,
        attempt_seconds: float,
        kind: str,
        error: str,
        message: str,
    ) -> None:
        cell = self.cells[index]
        self.elapsed[index] = self.elapsed.get(index, 0.0) + attempt_seconds
        retry = self.executor.policy.retry
        if attempt < retry.max_attempts:
            self.tel.count("sweep.cell.retry")
            self.events.emit(
                "cell_retry",
                cell=cell.key,
                attempt=attempt,
                kind=kind,
                error=error,
                message=message,
            )
            heapq.heappush(
                self.ready,
                (time.monotonic() + retry.delay(cell.key, attempt), index, attempt + 1),
            )
            return
        self.completed[index] = CellOutcome(
            model=cell.model,
            params=dict(cell.params),
            source=cell.source,
            attempts=attempt,
            failure=CellFailure(
                kind=kind,
                error=error,
                message=message,
                attempts=attempt,
                elapsed_seconds=self.elapsed[index],
            ),
        )
