"""Pluggable sweep executors: serial default, process-pool fan-out.

A sweep is a grid of *cells* -- one (configuration, source) pair
evaluated over the union of the user groups. :class:`SerialCellExecutor`
walks them in-process on the runner's own pipeline (the historical
behaviour). :class:`ProcessCellExecutor` farms them out to a process
pool: each worker reconstructs an equivalent pipeline from a picklable
:class:`SweepSpec` (dataset config + split protocol + grid scaling),
evaluates its cells, and ships the result -- plus its telemetry spans,
events and metric snapshots -- back to the parent, which merges them
into its own stream.

Both executors yield ``(cell, outcome)`` pairs in *submission order*
regardless of completion order, and every model is seeded through the
grid spec, so the rows a sweep produces are bit-identical whichever
executor ran them.

``ModelConfig`` factories are closures and cannot cross a process
boundary; instead a cell names its configuration by (model, canonical
parameter JSON) and the worker rebuilds the grid from the
:class:`GridSpec` and looks the configuration up. The grid spec must
therefore describe the *same* grid the parent enumerated -- including
scaling knobs that do not appear in the parameters, like
``infer_iterations``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.core.stages import canonical_params
from repro.errors import ConfigurationError
from repro.experiments.configs import ConfigGrid, ModelConfig
from repro.obs.events import MemorySink
from repro.obs.resources import ResourceSampler
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.twitter.dataset import DatasetConfig, generate_dataset

__all__ = [
    "Cell",
    "CellOutcome",
    "GridSpec",
    "PipelineSpec",
    "ProcessCellExecutor",
    "SerialCellExecutor",
    "SweepSpec",
    "evaluate_cell",
]


@dataclass(frozen=True)
class GridSpec:
    """Picklable description of a :class:`ConfigGrid`."""

    topic_scale: float = 1.0
    iteration_scale: float = 1.0
    infer_iterations: int = 20
    btm_max_biterms: int | None = None
    seed: int = 0

    @classmethod
    def from_grid(cls, grid: ConfigGrid) -> "GridSpec":
        return cls(
            topic_scale=grid.topic_scale,
            iteration_scale=grid.iteration_scale,
            infer_iterations=grid.infer_iterations,
            btm_max_biterms=grid.btm_max_biterms,
            seed=grid.seed,
        )

    def build(self) -> ConfigGrid:
        return ConfigGrid(
            topic_scale=self.topic_scale,
            iteration_scale=self.iteration_scale,
            infer_iterations=self.infer_iterations,
            btm_max_biterms=self.btm_max_biterms,
            seed=self.seed,
        )


@dataclass(frozen=True)
class PipelineSpec:
    """Picklable recipe for reconstructing an equivalent pipeline."""

    dataset: DatasetConfig
    test_fraction: float = 0.2
    negatives_per_positive: int = 4
    seed: int = 0
    max_train_docs_per_user: int | None = None
    top_k_stop_words: int = 100

    def build(self, telemetry: Telemetry | None = None) -> ExperimentPipeline:
        return ExperimentPipeline(
            generate_dataset(self.dataset),
            test_fraction=self.test_fraction,
            negatives_per_positive=self.negatives_per_positive,
            seed=self.seed,
            max_train_docs_per_user=self.max_train_docs_per_user,
            top_k_stop_words=self.top_k_stop_words,
            telemetry=telemetry,
        )


@dataclass(frozen=True)
class SweepSpec:
    """Everything a worker needs to evaluate any cell of one sweep."""

    pipeline: PipelineSpec
    grid: GridSpec


@dataclass(frozen=True)
class Cell:
    """One (configuration, source) evaluation unit of a sweep."""

    model: str
    params: dict = field(hash=False)
    label: str = field(hash=False)
    source: str = field(hash=False)
    users: tuple[int, ...] = field(hash=False)

    @property
    def params_key(self) -> str:
        return canonical_params(self.params)

    @property
    def key(self) -> str:
        """Stable cell identity: journal key and event correlation id."""
        return f"{self.model}|{self.source}|{self.params_key}"


@dataclass
class CellOutcome:
    """What one cell evaluation produced (or why it was skipped)."""

    model: str
    params: dict
    source: str
    skipped: str | None = None
    per_user_ap: dict[int, float] = field(default_factory=dict)
    training_seconds: float = 0.0
    testing_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Worker telemetry to merge at join time: {"spans": [...],
    #: "events": [...], "metrics": {...}}. None for in-process cells,
    #: whose telemetry flowed to the parent stream directly.
    telemetry: dict | None = None


#: One pipeline / config index per worker process, keyed by spec; a
#: worker evaluates many cells of the same sweep and must prepare each
#: source's corpus only once (the whole point of the staged engine).
_WORKER_PIPELINES: dict[PipelineSpec, ExperimentPipeline] = {}
_WORKER_INDEXES: dict[GridSpec, dict[tuple[str, str], ModelConfig]] = {}


def _worker_pipeline(spec: PipelineSpec) -> ExperimentPipeline:
    pipeline = _WORKER_PIPELINES.get(spec)
    if pipeline is None:
        pipeline = spec.build()
        _WORKER_PIPELINES[spec] = pipeline
    return pipeline


def _worker_index(spec: GridSpec) -> dict[tuple[str, str], ModelConfig]:
    index = _WORKER_INDEXES.get(spec)
    if index is None:
        index = {
            (config.model, canonical_params(config.params)): config
            for config in spec.build().iter_all()
        }
        _WORKER_INDEXES[spec] = index
    return index


def evaluate_cell(
    spec: SweepSpec,
    cell: Cell,
    collect_telemetry: bool = False,
    sample_resources: bool = False,
) -> CellOutcome:
    """Evaluate one cell against a worker-local pipeline.

    Runs in a pool worker (but is an ordinary function: the serial
    parity tests call it in-process). The pipeline and the grid's
    configuration index are cached per process, so corpus preparation
    and preprocessing amortise across all cells a worker receives.

    With ``sample_resources`` a worker-local
    :class:`~repro.obs.resources.ResourceSampler` runs for the duration
    of the cell, so the spans shipped back in ``outcome.telemetry``
    carry this *worker process's* RSS peaks -- the parent's own sampler
    cannot see across the process boundary.
    """
    with ExitStack() as stack:
        telemetry = None
        if collect_telemetry:
            sampler = (
                stack.enter_context(ResourceSampler()) if sample_resources else None
            )
            telemetry = Telemetry(resources=sampler)
        events = MemorySink()
        if telemetry is not None:
            telemetry.events.add_sink(events)
        pipeline = _worker_pipeline(spec.pipeline)
        pipeline.telemetry = telemetry
        config = _worker_index(spec.grid).get((cell.model, cell.params_key))
        if config is None:
            raise ConfigurationError(
                f"cell {cell.key} has no matching configuration in the worker grid; "
                "the sweep spec's GridSpec must describe the grid the parent enumerated"
            )
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        outcome = CellOutcome(
            model=cell.model, params=dict(cell.params), source=cell.source
        )
        try:
            with tel.span("config", label=cell.label, source=cell.source):
                try:
                    result = pipeline.evaluate(
                        config.build(), RepresentationSource(cell.source), list(cell.users)
                    )
                except ConfigurationError as error:
                    outcome.skipped = str(error)
                else:
                    outcome.per_user_ap = dict(result.per_user_ap)
                    outcome.training_seconds = result.training_seconds
                    outcome.testing_seconds = result.testing_seconds
                    outcome.phase_seconds = dict(result.phase_seconds)
        finally:
            pipeline.telemetry = None
        if telemetry is not None:
            outcome.telemetry = {
                "spans": telemetry.tracer.to_payload(),
                "events": list(events.records),
                "metrics": telemetry.metrics.snapshot(),
            }
    return outcome


#: A unit of executor work: the picklable cell plus (for in-process
#: executors) the parent's own ModelConfig, whose factory closure cannot
#: cross a process boundary.
CellTask = tuple[Cell, ModelConfig | None]


class SerialCellExecutor:
    """Default executor: evaluates cells in-process, in order.

    Uses the runner's own pipeline, so split/document/corpus caches and
    live telemetry behave exactly as they always have.
    """

    jobs = 1

    def __init__(self, pipeline: ExperimentPipeline, telemetry: Telemetry | None = None):
        self.pipeline = pipeline
        self.telemetry = telemetry

    def run_cells(
        self,
        tasks: Sequence[CellTask],
        collect_telemetry: bool = False,
        sample_resources: bool = False,
    ) -> Iterator[tuple[Cell, CellOutcome]]:
        # ``sample_resources`` is accepted for executor-interface parity
        # but needs no action here: in-process cells record through the
        # parent tracer, whose own sampler (if any) already covers them.
        tel = self.telemetry if self.telemetry is not None else NULL_TELEMETRY
        for cell, config in tasks:
            if config is None:
                raise ConfigurationError(
                    f"serial executor needs the ModelConfig for cell {cell.key}"
                )
            outcome = CellOutcome(
                model=cell.model, params=dict(cell.params), source=cell.source
            )
            with tel.span("config", label=cell.label, source=cell.source):
                try:
                    result = self.pipeline.evaluate(
                        config.build(),
                        RepresentationSource(cell.source),
                        list(cell.users),
                    )
                except ConfigurationError as error:
                    outcome.skipped = str(error)
                else:
                    outcome.per_user_ap = dict(result.per_user_ap)
                    outcome.training_seconds = result.training_seconds
                    outcome.testing_seconds = result.testing_seconds
                    outcome.phase_seconds = dict(result.phase_seconds)
            yield cell, outcome


class ProcessCellExecutor:
    """Farms cells out to a process pool, preserving submission order.

    Workers rebuild the pipeline from ``spec`` (synthetic datasets are
    deterministic in their config, so every worker sees the same data)
    and return outcomes whose rows are bit-identical to a serial run.
    All cells are submitted up front; results are joined in submission
    order so downstream row assembly is deterministic.
    """

    def __init__(self, spec: SweepSpec, jobs: int):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.jobs = jobs

    def run_cells(
        self,
        tasks: Sequence[CellTask],
        collect_telemetry: bool = False,
        sample_resources: bool = False,
    ) -> Iterator[tuple[Cell, CellOutcome]]:
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            submitted: list[tuple[Cell, Future]] = [
                (
                    cell,
                    pool.submit(
                        evaluate_cell,
                        self.spec,
                        cell,
                        collect_telemetry,
                        sample_resources,
                    ),
                )
                for cell, _config in tasks
            ]
            for cell, future in submitted:
                yield cell, future.result()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
