"""Report builders: render sweep results as the paper's tables/figures.

Every function returns a plain string table so benchmarks and examples
can ``print`` the same rows/series the paper reports. Figures 3-6 are
bar charts in the paper; here each becomes a text matrix of Mean
(Min-Max) MAP per model x source.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.sources import RepresentationSource
from repro.experiments.runner import SweepResult
from repro.twitter.entities import UserType
from repro.twitter.stats import GroupStats

__all__ = [
    "format_table2",
    "format_table3",
    "format_figure_map",
    "format_table6",
    "format_table7",
    "format_figure7",
]


def _fmt_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def _annotate(lines: list[str], result: SweepResult) -> list[str]:
    """Append the result's failure annotation, if it has one.

    Every sweep-derived formatter ends with this, so a table rendered
    from a partial sweep (quarantined cells -- see
    :attr:`~repro.experiments.runner.SweepResult.failures`) always says
    how much of the grid it is missing.
    """
    annotation = result.failure_annotation()
    if annotation:
        lines.append(annotation)
    return lines


def format_table2(stats: dict[UserType, GroupStats]) -> str:
    """Table 2: per-group dataset statistics."""
    order = [
        UserType.INFORMATION_SEEKER,
        UserType.BALANCED_USER,
        UserType.INFORMATION_PRODUCER,
        UserType.ALL,
    ]
    groups = [g for g in order if g in stats]
    lines = ["Table 2: statistics per user group"]
    header = ["", *(g.value for g in groups)]
    widths = [24] + [12] * len(groups)
    lines.append(_fmt_row(header, widths))
    lines.append(_fmt_row(["Users", *(stats[g].n_users for g in groups)], widths))

    blocks = [
        ("Outgoing tweets (TR)", "outgoing"),
        ("Retweets (R)", "retweets"),
        ("Incoming tweets (E)", "incoming"),
        ("Followers' tweets (F)", "followers_tweets"),
    ]
    for title, attr in blocks:
        lines.append(_fmt_row(
            [title, *(getattr(stats[g], attr).total for g in groups)], widths))
        lines.append(_fmt_row(
            ["  Minimum per user", *(getattr(stats[g], attr).minimum for g in groups)],
            widths))
        lines.append(_fmt_row(
            ["  Mean per user",
             *(f"{getattr(stats[g], attr).mean:.0f}" for g in groups)], widths))
        lines.append(_fmt_row(
            ["  Maximum per user", *(getattr(stats[g], attr).maximum for g in groups)],
            widths))
    return "\n".join(lines)


def format_table3(census: dict[str, int], top_k: int = 10) -> str:
    """Table 3: the most frequent languages."""
    total = sum(census.values())  # repro: allow[RPR002] -- integer tweet counts: exact in any order
    ranked = sorted(census.items(), key=lambda kv: -kv[1])[:top_k]
    lines = ["Table 3: most frequent languages"]
    widths = [14, 12, 10]
    lines.append(_fmt_row(["language", "tweets", "share"], widths))
    for lang, count in ranked:
        share = 100.0 * count / total if total else 0.0
        lines.append(_fmt_row([lang, count, f"{share:.2f}%"], widths))
    return "\n".join(lines)


def format_figure_map(
    result: SweepResult,
    group: UserType,
    sources: Sequence[RepresentationSource],
    baselines: dict[str, float] | None = None,
    title: str = "",
) -> str:
    """Figures 3-6: Mean (Min-Max) MAP per model x source for one group."""
    models = result.models()
    lines = [title or f"MAP per model and source, group={group.value}"]
    widths = [6] + [21] * len(sources)
    lines.append(_fmt_row(["model", *(s.value for s in sources)], widths))
    for model in models:
        cells = [model]
        for source in sources:
            try:
                summary = result.map_summary(model, source, group)
            except ValueError:
                cells.append("-")
                continue
            cells.append(
                f"{summary.mean:.3f} ({summary.minimum:.3f}-{summary.maximum:.3f})"
            )
        lines.append(_fmt_row(cells, widths))
    if baselines:
        for name, value in baselines.items():
            lines.append(f"baseline {name}: MAP={value:.3f}")
    return "\n".join(_annotate(lines, result))


def format_table6(
    result: SweepResult,
    sources: Sequence[RepresentationSource],
    groups: Sequence[UserType],
) -> str:
    """Table 6: Min/Mean/Max MAP of every source over every user type."""
    lines = ["Table 6: representation-source performance per user type"]
    widths = [10, 10] + [8] * (len(sources) + 1)
    lines.append(_fmt_row(["group", "stat", *(s.value for s in sources), "Average"], widths))
    for group in groups:
        for stat in ("minimum", "mean", "maximum"):
            cells = [group.value, {"minimum": "Min", "mean": "Mean", "maximum": "Max"}[stat]]
            values = []
            for source in sources:
                try:
                    summary = result.source_summary(source, group)
                except ValueError:
                    cells.append("-")
                    continue
                value = getattr(summary, stat)
                values.append(value)
                cells.append(f"{value:.3f}")
            cells.append(f"{sum(values) / len(values):.3f}" if values else "-")
            lines.append(_fmt_row(cells, widths))
    return "\n".join(_annotate(lines, result))


def format_table7(
    result: SweepResult, sources: Sequence[RepresentationSource]
) -> str:
    """Table 7: the best configuration per model and source."""
    lines = ["Table 7: best configuration per model and representation source"]
    for model in result.models():
        lines.append(f"\n{model}:")
        for source in sources:
            try:
                best = result.best_configuration(model, source)
            except KeyError:
                continue
            params = ", ".join(f"{k}={v}" for k, v in sorted(best.params.items()))
            lines.append(f"  {source.value:>3}: {params}")
    return "\n".join(_annotate(lines, result))


def format_figure7(result: SweepResult) -> str:
    """Figure 7: TTime and ETime (min/avg/max seconds) per model."""
    lines = ["Figure 7: time efficiency per representation model (seconds)"]
    widths = [6, 26, 26]
    lines.append(_fmt_row(["model", "TTime min/avg/max", "ETime min/avg/max"], widths))
    for model in result.models():
        ttime, etime = result.timing_summary(model)
        lines.append(_fmt_row(
            [
                model,
                f"{ttime.minimum:.3f}/{ttime.average:.3f}/{ttime.maximum:.3f}",
                f"{etime.minimum:.3f}/{etime.average:.3f}/{etime.maximum:.3f}",
            ],
            widths,
        ))
    return "\n".join(_annotate(lines, result))
