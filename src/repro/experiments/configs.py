"""The paper's 223 parameter configurations (Tables 4 and 5).

Context-based models (Table 5):

* TN  -- n ∈ {1,2,3} x {BF,TF,TF-IDF} x {sum,centroid,Rocchio} x
  {CS,JS,GJS}, minus the invalid combinations = 36 configurations;
* CN  -- n ∈ {2,3,4}, no TF-IDF = 21;
* TNG -- n ∈ {1,2,3} x {CoS,VS,NS} = 9;
* CNG -- n ∈ {2,3,4} x {CoS,VS,NS} = 9.

Topic models (Table 4):

* LDA  -- topics {50,100,150,200} x iterations {1000,2000} x pooling
  {NP,UP,HP} x aggregation {centroid,Rocchio} = 48 (α = 50/K, β = 0.01);
* LLDA -- same grid = 48;
* BTM  -- topics x pooling x aggregation, 1000 iterations, r = 30 = 24;
* HDP  -- pooling x β {0.1,0.5} x aggregation = 12 (α = γ = 1);
* HLDA -- α {10,20} x β {0.1,0.5} x γ {0.5,1.0} x aggregation = 16
  (UP pooling, 3 levels).

Total: 223. PLSA is excluded from the default grid, as in the paper
(it violated the paper's memory constraint).

Because the Gibbs samplers cannot realistically run 1,000+ iterations
inside a test-suite benchmark, :class:`ConfigGrid` exposes ``topic_scale``
and ``iteration_scale`` knobs that shrink the *values* while keeping the
grid *structure* (the number of configurations and which parameters vary)
identical to the paper's.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.temporal import TemporalWeighting
from repro.errors import ValidationError
from repro.models.aggregation import AggregationFunction
from repro.models.bag import CharacterNGramModel, TokenNGramModel
from repro.models.base import RepresentationModel
from repro.models.graph import (
    CharacterNGramGraphModel,
    GraphSimilarity,
    TokenNGramGraphModel,
)
from repro.models.similarity import VectorSimilarity
from repro.models.topic.btm import BitermTopicModel
from repro.models.topic.hdp import HdpModel
from repro.models.topic.hlda import HldaModel
from repro.models.topic.lda import LdaModel
from repro.models.topic.llda import LabeledLdaModel
from repro.models.weighting import WeightingScheme
from repro.text.pooling import PoolingScheme

__all__ = ["ModelConfig", "ConfigGrid", "MODEL_NAMES", "cross_temporal"]

MODEL_NAMES: tuple[str, ...] = (
    "TN", "CN", "TNG", "CNG", "LDA", "LLDA", "BTM", "HDP", "HLDA",
)


@dataclass(frozen=True)
class ModelConfig:
    """One point of the configuration grid.

    ``build()`` constructs a *fresh* model instance, so sweeps never leak
    fitted state between evaluations.
    """

    model: str
    params: dict = field(hash=False)
    factory: Callable[[], RepresentationModel] = field(hash=False, compare=False)

    def build(self) -> RepresentationModel:
        return self.factory()

    @property
    def uses_rocchio(self) -> bool:
        return self.params.get("aggregation") == AggregationFunction.ROCCHIO.value

    def label(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.model}({inner})"


def cross_temporal(
    configs: Sequence[ModelConfig],
    temporal_axis: Sequence[TemporalWeighting],
) -> list[ModelConfig]:
    """Cross configurations with the temporal-weighting axis.

    Each non-identity weighting yields a variant whose params carry a
    ``temporal`` label (so cell identities, journal ids and profile
    cache keys all distinguish the axis points) and whose factory
    attaches the weighting to the freshly built model. The identity
    weighting leaves the configuration untouched -- its params stay
    byte-identical to the undecayed grid's. An empty axis is the
    identity crossing: the configurations come back as they are.
    """
    if not temporal_axis:
        return list(configs)
    crossed: list[ModelConfig] = []
    for config in configs:
        for temporal in temporal_axis:
            if temporal.is_identity:
                crossed.append(config)
                continue
            params = dict(config.params)
            params["temporal"] = temporal.label()
            crossed.append(
                ModelConfig(
                    model=config.model,
                    params=params,
                    factory=lambda base=config.factory, tw=temporal: base().with_temporal(tw),
                )
            )
    return crossed


class ConfigGrid:
    """The paper's grid, optionally scaled down for tractable sweeps.

    Parameters
    ----------
    topic_scale:
        Multiplier on the topic counts {50,100,150,200}; e.g. 0.1 yields
        {5,10,15,20}.
    iteration_scale:
        Multiplier on the Gibbs/EM iteration counts {1000,2000}.
    infer_iterations:
        Fold-in iterations for topic-model inference.
    seed:
        Seed forwarded to every stochastic model.
    temporal_axis:
        Optional temporal-weighting axis
        (:class:`~repro.core.temporal.TemporalWeighting` points). When
        given, every model family's configurations are crossed with the
        axis -- an identity point keeps the original configuration, the
        others add a ``temporal`` parameter and decay-weighted profiles.
    """

    def __init__(
        self,
        topic_scale: float = 1.0,
        iteration_scale: float = 1.0,
        infer_iterations: int = 20,
        btm_max_biterms: int | None = None,
        seed: int = 0,
        temporal_axis: Sequence[TemporalWeighting] | None = None,
    ):
        if topic_scale <= 0 or iteration_scale <= 0:
            raise ValidationError("scales must be positive")
        self.topic_scale = topic_scale
        self.iteration_scale = iteration_scale
        self.infer_iterations = infer_iterations
        self.btm_max_biterms = btm_max_biterms
        self.seed = seed
        self.temporal_axis: tuple[TemporalWeighting, ...] = tuple(temporal_axis or ())

    def _cross(self, configs: list[ModelConfig]) -> list[ModelConfig]:
        if not self.temporal_axis:
            return configs
        return cross_temporal(configs, self.temporal_axis)

    # -- scaling helpers -------------------------------------------------------

    def _topics(self) -> list[int]:
        return [max(2, round(k * self.topic_scale)) for k in (50, 100, 150, 200)]

    def _iterations(self, base: int) -> int:
        return max(1, round(base * self.iteration_scale))

    # -- context-based models (Table 5) -----------------------------------------

    def tn_configurations(self) -> list[ModelConfig]:
        """The 36 valid TN configurations."""
        configs: list[ModelConfig] = []
        for n in (1, 2, 3):
            for ws, af, sm in _valid_bag_combos(character_based=False):
                configs.append(_bag_config(TokenNGramModel, "TN", n, ws, af, sm))
        return configs

    def cn_configurations(self) -> list[ModelConfig]:
        """The 21 valid CN configurations (no TF-IDF)."""
        configs: list[ModelConfig] = []
        for n in (2, 3, 4):
            for ws, af, sm in _valid_bag_combos(character_based=True):
                configs.append(_bag_config(CharacterNGramModel, "CN", n, ws, af, sm))
        return configs

    def tng_configurations(self) -> list[ModelConfig]:
        """The 9 TNG configurations."""
        return [
            _graph_config(TokenNGramGraphModel, "TNG", n, sm)
            for n in (1, 2, 3)
            for sm in GraphSimilarity
        ]

    def cng_configurations(self) -> list[ModelConfig]:
        """The 9 CNG configurations."""
        return [
            _graph_config(CharacterNGramGraphModel, "CNG", n, sm)
            for n in (2, 3, 4)
            for sm in GraphSimilarity
        ]

    # -- topic models (Table 4) ---------------------------------------------------

    def lda_configurations(self) -> list[ModelConfig]:
        """The 48 LDA configurations."""
        configs: list[ModelConfig] = []
        for k in self._topics():
            for base_iters in (1000, 2000):
                for pooling in PoolingScheme:
                    for agg in (AggregationFunction.CENTROID, AggregationFunction.ROCCHIO):
                        configs.append(self._topic_config(
                            "LDA",
                            dict(n_topics=k, iterations=self._iterations(base_iters),
                                 pooling=pooling.value, aggregation=agg.value),
                            lambda k=k, i=base_iters, p=pooling, a=agg: LdaModel(
                                n_topics=k, beta=0.01,
                                iterations=self._iterations(i),
                                infer_iterations=self.infer_iterations,
                                pooling=p, aggregation=a, seed=self.seed,
                            ),
                        ))
        return configs

    def llda_configurations(self) -> list[ModelConfig]:
        """The 48 Labeled LDA configurations."""
        configs: list[ModelConfig] = []
        for k in self._topics():
            for base_iters in (1000, 2000):
                for pooling in PoolingScheme:
                    for agg in (AggregationFunction.CENTROID, AggregationFunction.ROCCHIO):
                        configs.append(self._topic_config(
                            "LLDA",
                            dict(n_topics=k, iterations=self._iterations(base_iters),
                                 pooling=pooling.value, aggregation=agg.value),
                            lambda k=k, i=base_iters, p=pooling, a=agg: LabeledLdaModel(
                                n_latent_topics=k, beta=0.01,
                                iterations=self._iterations(i),
                                infer_iterations=self.infer_iterations,
                                pooling=p, aggregation=a, seed=self.seed,
                            ),
                        ))
        return configs

    def btm_configurations(self) -> list[ModelConfig]:
        """The 24 BTM configurations (1,000 iterations, r = 30)."""
        configs: list[ModelConfig] = []
        for k in self._topics():
            for pooling in PoolingScheme:
                for agg in (AggregationFunction.CENTROID, AggregationFunction.ROCCHIO):
                    configs.append(self._topic_config(
                        "BTM",
                        dict(n_topics=k, pooling=pooling.value, aggregation=agg.value),
                        lambda k=k, p=pooling, a=agg: BitermTopicModel(
                            n_topics=k, beta=0.01, window=30,
                            max_biterms=self.btm_max_biterms,
                            iterations=self._iterations(1000),
                            infer_iterations=self.infer_iterations,
                            pooling=p, aggregation=a, seed=self.seed,
                        ),
                    ))
        return configs

    def hdp_configurations(self) -> list[ModelConfig]:
        """The 12 HDP configurations (α = γ = 1, 1,000 iterations)."""
        configs: list[ModelConfig] = []
        for pooling in PoolingScheme:
            for beta in (0.1, 0.5):
                for agg in (AggregationFunction.CENTROID, AggregationFunction.ROCCHIO):
                    configs.append(self._topic_config(
                        "HDP",
                        dict(pooling=pooling.value, beta=beta, aggregation=agg.value),
                        lambda p=pooling, b=beta, a=agg: HdpModel(
                            alpha=1.0, gamma=1.0, eta=b,
                            iterations=self._iterations(1000),
                            infer_iterations=self.infer_iterations,
                            pooling=p, aggregation=a, seed=self.seed,
                        ),
                    ))
        return configs

    def hlda_configurations(self) -> list[ModelConfig]:
        """The 16 HLDA configurations (UP pooling, 3 levels)."""
        configs: list[ModelConfig] = []
        for alpha in (10.0, 20.0):
            for beta in (0.1, 0.5):
                for gamma in (0.5, 1.0):
                    for agg in (AggregationFunction.CENTROID, AggregationFunction.ROCCHIO):
                        configs.append(self._topic_config(
                            "HLDA",
                            dict(alpha=alpha, beta=beta, gamma=gamma,
                                 aggregation=agg.value),
                            lambda al=alpha, b=beta, g=gamma, a=agg: HldaModel(
                                levels=3, alpha=al, beta=b, gamma=g,
                                iterations=self._iterations(1000),
                                infer_iterations=self.infer_iterations,
                                pooling=PoolingScheme.USER, aggregation=a,
                                seed=self.seed,
                            ),
                        ))
        return configs

    def _topic_config(self, name, params, factory) -> ModelConfig:
        return ModelConfig(model=name, params=params, factory=factory)

    # -- the full grid ---------------------------------------------------------------

    def all_configurations(self) -> dict[str, list[ModelConfig]]:
        """The complete 223-configuration grid, keyed by model name.

        With a ``temporal_axis``, each family is crossed with the axis
        here -- the single choke point, so sweeps, workers and reports
        all see the same crossed grid.
        """
        return {
            "TN": self._cross(self.tn_configurations()),
            "CN": self._cross(self.cn_configurations()),
            "TNG": self._cross(self.tng_configurations()),
            "CNG": self._cross(self.cng_configurations()),
            "LDA": self._cross(self.lda_configurations()),
            "LLDA": self._cross(self.llda_configurations()),
            "BTM": self._cross(self.btm_configurations()),
            "HDP": self._cross(self.hdp_configurations()),
            "HLDA": self._cross(self.hlda_configurations()),
        }

    def iter_all(self) -> Iterator[ModelConfig]:
        for configs in self.all_configurations().values():
            yield from configs

    def total_configurations(self) -> int:
        return sum(len(v) for v in self.all_configurations().values())


# -- bag/graph construction helpers ----------------------------------------------


def _valid_bag_combos(
    character_based: bool,
) -> Iterator[tuple[WeightingScheme, AggregationFunction, VectorSimilarity]]:
    """Enumerate the valid (weighting, aggregation, similarity) triples."""
    weightings = [WeightingScheme.BF, WeightingScheme.TF]
    if not character_based:
        weightings.append(WeightingScheme.TF_IDF)
    for ws in weightings:
        if ws is WeightingScheme.BF:
            # BF only with sum aggregation; GJS invalid with BF.
            for sm in (VectorSimilarity.COSINE, VectorSimilarity.JACCARD):
                yield ws, AggregationFunction.SUM, sm
        else:
            for af in AggregationFunction:
                if af is AggregationFunction.ROCCHIO:
                    yield ws, af, VectorSimilarity.COSINE
                else:
                    for sm in (VectorSimilarity.COSINE, VectorSimilarity.GENERALIZED_JACCARD):
                        yield ws, af, sm


def _bag_config(cls, name, n, ws, af, sm) -> ModelConfig:
    params = dict(n=n, weighting=ws.value, aggregation=af.value, similarity=sm.value)
    return ModelConfig(
        model=name,
        params=params,
        factory=lambda: cls(n=n, weighting=ws, aggregation=af, similarity=sm),
    )


def _graph_config(cls, name, n, sm) -> ModelConfig:
    return ModelConfig(
        model=name,
        params=dict(n=n, similarity=sm.value),
        factory=lambda: cls(n=n, similarity=sm),
    )
