"""Tweet text generation with Twitter's noise channels.

Produces the surface text of tweets from a user's latent interests,
reproducing the paper's four challenges:

* **C1 sparsity** -- tweets are a handful of words long;
* **C2 noise** -- a misspelling channel swaps or drops characters;
* **C3 multilingualism** -- text is rendered in the author's language,
  including spaceless scripts;
* **C4 non-standard language** -- emphatic lengthening ("yeeees"),
  vowel-dropping abbreviations, emoticons, hashtags, mentions and URLs.

Hashtags are rendered from a *global* per-topic tag list shared across
languages (as on real Twitter, where tags like ``#worldcup`` transcend
language), which is what makes hashtag pooling (HP) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.twitter.entities import UserProfile
from repro.twitter.language import LanguageInventory

__all__ = ["NoiseChannel", "TweetComposer", "ComposedText"]

_EMOTICON_POOL = (":)", ":(", ";)", ":d", ":p", "<3", ":o", ":/", ":s")

_VOWELS = set("aeiou")


@dataclass(frozen=True)
class NoiseChannel:
    """Stochastic corruption applied to individual words.

    Rates are per-word probabilities; the channels are mutually
    exclusive per word (at most one corruption), drawn in the order
    misspell, lengthen, abbreviate.
    """

    misspell_rate: float = 0.05
    lengthen_rate: float = 0.04
    abbreviate_rate: float = 0.03

    def __post_init__(self) -> None:
        total = self.misspell_rate + self.lengthen_rate + self.abbreviate_rate
        if not 0.0 <= total <= 1.0:
            raise ValidationError(f"noise rates must sum to <= 1, got {total}")

    def corrupt(self, word: str, rng: np.random.Generator) -> str:
        """Return ``word``, possibly damaged by one noise channel."""
        if len(word) < 2:
            return word
        draw = rng.random()
        if draw < self.misspell_rate:
            return self._misspell(word, rng)
        draw -= self.misspell_rate
        if draw < self.lengthen_rate:
            return self._lengthen(word, rng)
        draw -= self.lengthen_rate
        if draw < self.abbreviate_rate:
            return self._abbreviate(word)
        return word

    @staticmethod
    def _misspell(word: str, rng: np.random.Generator) -> str:
        """Swap two adjacent characters or drop one (C2)."""
        i = int(rng.integers(len(word) - 1))
        if rng.random() < 0.5:
            return word[:i] + word[i + 1] + word[i] + word[i + 2 :]
        return word[:i] + word[i + 1 :]

    @staticmethod
    def _lengthen(word: str, rng: np.random.Generator) -> str:
        """Repeat one character 3-5 times (C4 emphatic lengthening)."""
        i = int(rng.integers(len(word)))
        repeats = int(rng.integers(3, 6))
        return word[:i] + word[i] * repeats + word[i + 1 :]

    @staticmethod
    def _abbreviate(word: str) -> str:
        """Drop interior vowels, e.g. "goodnight" -> "gdnght" (C4)."""
        if len(word) < 4:
            return word
        inner = "".join(c for c in word[1:-1] if c not in _VOWELS)
        abbreviated = word[0] + inner + word[-1]
        return abbreviated if len(abbreviated) >= 2 else word


@dataclass(frozen=True)
class ComposedText:
    """The output of :meth:`TweetComposer.compose`."""

    text: str
    topic_mix: tuple[float, ...]


class TweetComposer:
    """Renders tweets from user interests.

    Parameters
    ----------
    inventory:
        The language/topic vocabulary inventory.
    noise:
        The corruption channels (C2/C4).
    min_words, max_words:
        Tweet length range in content words (C1 sparsity).
    common_word_rate:
        Probability that a content word is a function word instead of a
        topical one.
    hashtag_rate, mention_rate, url_rate, emoticon_rate, question_rate:
        Decoration probabilities per tweet.
    topic_concentration:
        Dirichlet concentration of the per-tweet topic mix around the
        user's sampled focus topic; higher values give purer tweets.
    phrase_rate:
        Probability that a topical word is emitted as one of the topic's
        two-word collocations instead of a single word; collocations are
        the local-context signal that bigram and graph models exploit.
    """

    def __init__(
        self,
        inventory: LanguageInventory,
        noise: NoiseChannel | None = None,
        min_words: int = 5,
        max_words: int = 12,
        common_word_rate: float = 0.25,
        hashtag_rate: float = 0.25,
        mention_rate: float = 0.12,
        url_rate: float = 0.10,
        emoticon_rate: float = 0.15,
        question_rate: float = 0.08,
        topic_concentration: float = 8.0,
        phrase_rate: float = 0.25,
    ):
        if not 1 <= min_words <= max_words:
            raise ValidationError(f"need 1 <= min_words <= max_words, got {min_words}, {max_words}")
        self.inventory = inventory
        self.noise = noise if noise is not None else NoiseChannel()
        self.min_words = min_words
        self.max_words = max_words
        self.common_word_rate = common_word_rate
        self.hashtag_rate = hashtag_rate
        self.mention_rate = mention_rate
        self.url_rate = url_rate
        self.emoticon_rate = emoticon_rate
        self.question_rate = question_rate
        self.topic_concentration = topic_concentration
        self.phrase_rate = phrase_rate
        # Global hashtags: one per topic, shared across all languages,
        # rendered in the inventory's dominant language (English on real
        # Twitter, where tags like #worldcup transcend language).
        tag_language = inventory.language_names[0]
        self._hashtags = [
            "#" + inventory.topic_words(tag_language, topic)[0]
            for topic in range(inventory.n_topics)
        ]

    def hashtag_for_topic(self, topic: int) -> str:
        return self._hashtags[topic]

    def sample_topic_mix(self, profile: UserProfile, rng: np.random.Generator) -> np.ndarray:
        """One tweet's topic mixture: the user's interests, sharpened
        around a sampled focus topic."""
        k = self.inventory.n_topics
        focus = int(rng.choice(k, p=profile.interests))
        alpha = np.full(k, 0.1)
        alpha[focus] += self.topic_concentration
        return rng.dirichlet(alpha)

    def compose(
        self,
        profile: UserProfile,
        rng: np.random.Generator,
        mentionable: tuple[int, ...] = (),
        topic_mix: np.ndarray | None = None,
    ) -> ComposedText:
        """Generate one tweet's text for ``profile``.

        ``mentionable`` supplies user ids eligible for @-mentions
        (typically the author's followees). A precomputed ``topic_mix``
        may be passed (used when reconstructing quote-like rewrites);
        otherwise one is sampled from the profile.
        """
        lang_name = profile.language
        language = self.inventory.language(lang_name)
        if topic_mix is None:
            topic_mix = self.sample_topic_mix(profile, rng)

        n_words = int(rng.integers(self.min_words, self.max_words + 1))
        words: list[str] = []
        while len(words) < n_words:
            if rng.random() < self.common_word_rate:
                words.append(self.noise.corrupt(
                    self.inventory.sample_common_word(lang_name, rng), rng))
                continue
            # Topical content arrives as a chain run: a walk over the
            # topic's successor graph, giving text the pervasive local
            # bigram structure of natural language.
            topic = int(rng.choice(len(topic_mix), p=topic_mix))
            chain = self.inventory.sample_chain(
                lang_name, topic, rng, continue_probability=self.phrase_rate
            )
            words.extend(self.noise.corrupt(w, rng) for w in chain)

        body = language.join(words)
        pieces: list[str] = []

        if mentionable and rng.random() < self.mention_rate:
            target = int(rng.choice(len(mentionable)))
            pieces.append(f"@user{mentionable[target]}")
        pieces.append(body)
        if rng.random() < self.hashtag_rate:
            dominant = int(np.argmax(topic_mix))
            pieces.append(self._hashtags[dominant])
        if rng.random() < self.url_rate:
            pieces.append(f"http://t.co/{rng.integers(10**6):06d}")
        if rng.random() < self.emoticon_rate:
            pieces.append(_EMOTICON_POOL[int(rng.integers(len(_EMOTICON_POOL)))])
        if rng.random() < self.question_rate:
            pieces.append("?")

        return ComposedText(" ".join(pieces), tuple(float(x) for x in topic_mix))
