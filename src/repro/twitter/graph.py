"""The directed follow graph of the Twitter substrate.

Twitter's social graph is directed: ``u1`` may follow ``u2`` unilaterally
(``u1`` is a *follower* of ``u2``, ``u2`` a *followee* of ``u1``); if
``u2`` follows back, the two are *reciprocally* connected. The paper's
representation sources E(u), F(u) and C(u) are defined over exactly these
three relations.

:class:`SocialGraph` stores the adjacency in both directions for O(1)
queries. :func:`generate_follow_graph` wires a synthetic graph whose
degree structure supports all three user types: designated
information-seeker roles get many followees, producer roles get many
followers, and a preferential-attachment term produces the heavy-tailed
in-degree distribution of real social networks.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import DataGenerationError, ValidationError

__all__ = ["SocialGraph", "generate_follow_graph"]


class SocialGraph:
    """Directed follow relationships with O(1) two-way adjacency."""

    def __init__(self, n_users: int):
        if n_users < 0:
            raise ValidationError(f"n_users must be >= 0, got {n_users}")
        self._n_users = n_users
        self._followees: list[set[int]] = [set() for _ in range(n_users)]
        self._followers: list[set[int]] = [set() for _ in range(n_users)]

    @property
    def n_users(self) -> int:
        return self._n_users

    def add_follow(self, follower: int, followee: int) -> None:
        """Record that ``follower`` follows ``followee``."""
        if follower == followee:
            raise ValidationError(f"user {follower} cannot follow themselves")
        self._check(follower)
        self._check(followee)
        self._followees[follower].add(followee)
        self._followers[followee].add(follower)

    def follows(self, follower: int, followee: int) -> bool:
        return followee in self._followees[follower]

    def followees(self, user: int) -> frozenset[int]:
        """e(u): the accounts ``user`` follows."""
        self._check(user)
        return frozenset(self._followees[user])

    def followers(self, user: int) -> frozenset[int]:
        """f(u): the accounts following ``user``."""
        self._check(user)
        return frozenset(self._followers[user])

    def reciprocal(self, user: int) -> frozenset[int]:
        """The accounts connected to ``user`` in both directions."""
        self._check(user)
        return frozenset(self._followees[user] & self._followers[user])

    def n_edges(self) -> int:
        return sum(len(s) for s in self._followees)

    def _check(self, user: int) -> None:
        if not 0 <= user < self._n_users:
            raise KeyError(f"unknown user id {user} (graph has {self._n_users} users)")

    def __repr__(self) -> str:
        return f"SocialGraph({self._n_users} users, {self.n_edges()} follows)"


def generate_follow_graph(
    roles: Sequence[str],
    rng: np.random.Generator,
    interests: Sequence[np.ndarray] | None = None,
    homophily: float = 2.0,
    languages: Sequence[str] | None = None,
    language_affinity: float = 0.1,
    followee_counts: dict[str, int] | None = None,
    producer_extra_followers: int = 8,
    reciprocity: float = 0.3,
    min_followers: int = 3,
    min_followees: int = 3,
) -> SocialGraph:
    """Generate a follow graph matching the requested user roles.

    The posting ratio that classifies users (paper Section 2) is
    ``|outgoing| / |E(u)|``, so the graph controls user types through
    *whom* each user follows:

    * **seekers** follow many accounts, preferring popular producers, so
      their incoming stream E(u) dwarfs their own output;
    * **balanced** users follow a small mix of quiet accounts, keeping
      E(u) comparable to their output;
    * **producers** follow almost nobody noisy -- mostly lurkers plus at
      most one balanced account -- so E(u) stays far below their output;
    * **lurkers** barely post; they exist so the other roles have quiet
      accounts to follow (real Twitter is full of them).

    Parameters
    ----------
    roles:
        One of ``"seeker"``, ``"producer"``, ``"balanced"``, ``"lurker"``
        per user.
    rng:
        Random source.
    languages:
        Optional per-user language names; when given, follow targets in
        a different language are down-weighted by ``language_affinity``
        (people mostly follow accounts they can read).
    interests:
        Optional per-user topic-interest vectors; when given, follow
        targets are additionally weighted by interest similarity raised
        to ``homophily``, so a user\'s incoming stream is biased towards
        content she actually cares about (users pick whom to follow by
        interest on real Twitter, and the retweet relevance signal in
        E(u) depends on it).
    homophily:
        Exponent on the interest-similarity weight; 0 disables it.
    followee_counts:
        Followees wired per role; defaults to
        ``{"seeker": 12, "balanced": 4, "producer": 3, "lurker": 4}``.
    producer_extra_followers:
        Extra followers wired towards each producer.
    reciprocity:
        Probability that a new follow is reciprocated, yielding C(u).
        Follows towards producers are never reciprocated (a producer
        following back would inflate her E(u) out of the IP regime).
    min_followers, min_followees:
        The paper\'s dataset filter (each user kept >= 3 of both); the
        generator tops up until the constraint holds.
    """
    n = len(roles)
    if n < max(min_followers, min_followees) + 1:
        raise DataGenerationError(
            f"need at least {max(min_followers, min_followees) + 1} users, got {n}"
        )
    valid_roles = {"seeker", "producer", "balanced", "lurker"}
    unknown = set(roles) - valid_roles
    if unknown:
        raise DataGenerationError(f"unknown roles: {sorted(unknown)}")
    if interests is not None and len(interests) != n:
        raise DataGenerationError(
            f"{len(interests)} interest vectors for {n} users"
        )
    if languages is not None and len(languages) != n:
        raise DataGenerationError(f"{len(languages)} languages for {n} users")
    if followee_counts is None:
        followee_counts = {"seeker": 12, "balanced": 4, "producer": 3, "lurker": 4}

    graph = SocialGraph(n)
    in_degree = np.ones(n)  # +1 smoothing for preferential attachment

    if interests is not None:
        stacked = np.stack([np.asarray(v, dtype=float) for v in interests])
        norms = np.linalg.norm(stacked, axis=1, keepdims=True)
        normed = stacked / np.where(norms > 0, norms, 1.0)
        similarity = normed @ normed.T  # cosine of interest vectors
    else:
        similarity = None

    def follow(follower: int, followee: int) -> None:
        if follower == followee or graph.follows(follower, followee):
            return
        graph.add_follow(follower, followee)
        in_degree[followee] += 1
        back_p = 0.0 if roles[followee] == "producer" else reciprocity
        if rng.random() < back_p and not graph.follows(followee, follower):
            graph.add_follow(followee, follower)
            in_degree[follower] += 1

    def pick_targets(user: int, count: int, weights: np.ndarray) -> Iterable[int]:
        weights = weights.astype(float).copy()
        if similarity is not None and homophily > 0:
            weights = weights * np.clip(similarity[user], 0.0, None) ** homophily
        if languages is not None:
            # Language homophily: users overwhelmingly follow accounts
            # they can read. Cross-language follows still happen (the
            # paper's corpus has them), just rarely.
            same = np.array([languages[v] == languages[user] for v in range(n)])
            weights = weights * np.where(same, 1.0, language_affinity)
        weights[user] = 0.0
        total = weights.sum()
        if total <= 0:
            return []
        count = min(count, int((weights > 0).sum()))
        if count <= 0:
            return []
        return rng.choice(n, size=count, replace=False, p=weights / total)

    # Per-follower-role weights over followee roles. Seekers additionally
    # get the preferential-attachment in-degree factor.
    role_weights = {
        "seeker": {"seeker": 0.5, "balanced": 1.0, "producer": 5.0, "lurker": 0.2},
        "balanced": {"seeker": 0.5, "balanced": 3.0, "producer": 0.1, "lurker": 6.0},
        "producer": {"seeker": 0.5, "balanced": 6.0, "producer": 0.1, "lurker": 8.0},
        "lurker": {"seeker": 1.0, "balanced": 2.0, "producer": 3.0, "lurker": 0.5},
    }

    for user, role in enumerate(roles):
        weights = np.array([role_weights[role][r] for r in roles])
        if role == "seeker":
            weights = weights * in_degree
        for target in pick_targets(user, followee_counts[role], weights):
            follow(user, int(target))

    follower_weights = np.array(
        [{"seeker": 5.0, "balanced": 2.0, "producer": 0.2, "lurker": 1.0}[r] for r in roles]
    )
    for user, role in enumerate(roles):
        if role != "producer":
            continue
        for source in pick_targets(user, producer_extra_followers, follower_weights):
            follow(int(source), user)

    # Top-up pass: enforce the paper's >=3 followers / >=3 followees filter.
    for user in range(n):
        while len(graph.followees(user)) < min_followees:
            candidates = [v for v in range(n) if v != user and not graph.follows(user, v)]
            if not candidates:
                raise DataGenerationError(f"cannot satisfy min_followees for user {user}")
            follow(user, int(rng.choice(candidates)))
        while len(graph.followers(user)) < min_followers:
            candidates = [v for v in range(n) if v != user and not graph.follows(v, user)]
            if not candidates:
                raise DataGenerationError(f"cannot satisfy min_followers for user {user}")
            follow(int(rng.choice(candidates)), user)

    return graph
