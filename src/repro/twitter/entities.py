"""Core entities of the Twitter substrate: users, tweets, user types.

The simulator replaces the paper's 2009 Twitter corpus (see DESIGN.md,
"Substitutions"). Entities carry exactly the fields the paper's protocol
needs: authorship and timestamps (to reconstruct per-user timelines and
train/test phases), retweet provenance (to define R(u) and relevance
labels), and raw text (for the representation models).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError

__all__ = ["Tweet", "UserProfile", "UserType"]


class UserType(str, enum.Enum):
    """The paper's three user categories plus the umbrella group.

    Classified by the *posting ratio* -- outgoing tweets ``|R(u) ∪ T(u)|``
    divided by incoming tweets ``|E(u)|``:

    * IP (information producer): ratio > 2;
    * IS (information seeker):   ratio < 0.5;
    * BU (balanced user):        everything in between.
    """

    INFORMATION_PRODUCER = "IP"
    INFORMATION_SEEKER = "IS"
    BALANCED_USER = "BU"
    ALL = "All Users"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def from_posting_ratio(cls, ratio: float) -> "UserType":
        """Classify a posting ratio per the paper's thresholds."""
        if ratio > 2.0:
            return cls.INFORMATION_PRODUCER
        if ratio < 0.5:
            return cls.INFORMATION_SEEKER
        return cls.BALANCED_USER


@dataclass(frozen=True)
class Tweet:
    """One (re)tweet.

    Attributes
    ----------
    tweet_id:
        Unique id, dense integers in posting order.
    author_id:
        The posting user.
    text:
        Raw text as "typed" -- including hashtags, mentions, URLs,
        emoticons and the noise channels' damage.
    timestamp:
        Simulation tick; strictly non-decreasing with ``tweet_id``.
    retweet_of:
        The original tweet's id when this is a retweet, else ``None``.
    original_author_id:
        The original author when this is a retweet, else ``None``.
    topic_mix:
        The latent topic mixture the text was generated from. This is
        *ground truth held out from every model* -- only the synthetic
        substrate and its tests may look at it.
    """

    tweet_id: int
    author_id: int
    text: str
    timestamp: int
    retweet_of: int | None = None
    original_author_id: int | None = None
    topic_mix: tuple[float, ...] = field(default=(), compare=False)

    @property
    def is_retweet(self) -> bool:
        return self.retweet_of is not None


@dataclass
class UserProfile:
    """A simulated user and her latent preferences.

    Attributes
    ----------
    user_id:
        Dense integer id.
    interests:
        Distribution over the substrate's latent topics; drives both
        what she tweets about and what she retweets.
    language:
        Name of her primary :class:`~repro.twitter.language.SyntheticLanguage`.
    tweet_rate:
        Expected number of original tweets per simulation tick.
    retweet_affinity:
        Multiplier on her base retweet propensity; higher means she
        reposts more of what matches her interests.
    """

    user_id: int
    interests: np.ndarray
    language: str
    tweet_rate: float
    retweet_affinity: float = 1.0

    def __post_init__(self) -> None:
        total = float(np.sum(self.interests))
        if total <= 0:
            raise ValidationError(f"user {self.user_id}: interests must have positive mass")
        self.interests = np.asarray(self.interests, dtype=float) / total
