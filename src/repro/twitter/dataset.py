"""Dataset assembly: simulate the network and index the result.

:func:`generate_dataset` runs the full simulation -- build user profiles,
wire the follow graph, then tick through time letting users tweet and
retweet -- and returns a :class:`MicroblogDataset` exposing the paper's
five atomic representation-source views:

* ``T(u)`` -- the user's original tweets;
* ``R(u)`` -- her retweets;
* ``E(u)`` -- all (re)tweets of her followees (her incoming stream);
* ``F(u)`` -- all (re)tweets of her followers;
* ``C(u)`` -- all (re)tweets of her reciprocal connections.

It also computes posting ratios and reproduces the paper's user-group
selection (20 IS with the lowest ratios, 20 BU closest to 1, IP with
ratio > 2, and an All-Users group padded with the remaining highest
ratios).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataGenerationError
from repro.twitter.behavior import RetweetPolicy
from repro.twitter.entities import Tweet, UserProfile, UserType
from repro.twitter.generator import NoiseChannel, TweetComposer
from repro.twitter.graph import SocialGraph, generate_follow_graph
from repro.twitter.language import LanguageInventory, default_inventory

__all__ = ["DatasetConfig", "MicroblogDataset", "generate_dataset", "select_user_groups"]


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of the synthetic dataset.

    The defaults produce a small but structurally faithful corpus in a
    few seconds; benchmarks scale ``n_users`` and ``n_ticks`` up.
    """

    n_users: int = 30
    n_ticks: int = 120
    n_topics: int = 12
    seed: int = 0

    #: Fractions of users assigned the seeker / balanced / producer roles;
    #: the remainder become lurkers -- near-silent accounts that exist so
    #: balanced users and producers have quiet followees (see
    #: :func:`repro.twitter.graph.generate_follow_graph`).
    seeker_fraction: float = 0.30
    balanced_fraction: float = 0.25
    producer_fraction: float = 0.15

    #: Original tweets per tick by role.
    seeker_tweet_rate: float = 0.12
    balanced_tweet_rate: float = 0.9
    producer_tweet_rate: float = 4.5
    lurker_tweet_rate: float = 0.03

    #: Retweet-affinity multiplier by role (lurkers rarely repost).
    lurker_retweet_affinity: float = 0.3

    #: Interest-homophily exponent for follow wiring.
    homophily: float = 2.0

    #: Multiplier on the retweet probability when the tweet's author
    #: writes in a different language than the reader -- people rarely
    #: repost content they cannot read.
    cross_language_retweet_rate: float = 0.05

    #: How many fresh followee tweets a user considers for retweeting per
    #: tick. Users have finite attention; without this cap, seekers (who
    #: follow many prolific accounts) would retweet so much that their
    #: own outgoing stream dwarfs everyone's posting-ratio structure.
    attention_budget: int = 4

    #: Interest concentration: users draw interests from Dirichlet(k)
    #: with this concentration on a few focus topics.
    interests_per_user: int = 3

    #: Text-surface knobs forwarded to the TweetComposer. Natural
    #: language is heavily collocational, which is what the context-aware
    #: models exploit; phrase_rate encodes that property.
    phrase_rate: float = 0.55
    common_word_rate: float = 0.25
    topic_concentration: float = 8.0

    retweet_policy: RetweetPolicy = field(default_factory=RetweetPolicy)
    noise: NoiseChannel = field(default_factory=NoiseChannel)

    def __post_init__(self) -> None:
        if self.n_users < 4:
            raise DataGenerationError(f"need at least 4 users, got {self.n_users}")
        if self.n_ticks < 1:
            raise DataGenerationError(f"need at least 1 tick, got {self.n_ticks}")
        total = self.seeker_fraction + self.balanced_fraction + self.producer_fraction
        if total > 1.0:
            raise DataGenerationError("role fractions must sum to <= 1")


class MicroblogDataset:
    """The simulated corpus plus O(1) per-user source views."""

    def __init__(
        self,
        users: Sequence[UserProfile],
        tweets: Sequence[Tweet],
        graph: SocialGraph,
        inventory: LanguageInventory,
        seen: dict[int, set[int]] | None = None,
    ):
        self.users = list(users)
        self.tweets = sorted(tweets, key=lambda t: (t.timestamp, t.tweet_id))
        self.graph = graph
        self.inventory = inventory
        #: Tweets each user actually read (attention is finite; the feed
        #: is bigger than what anyone looks at). Retweet decisions only
        #: happen on seen tweets, so negative test examples are sampled
        #: from here -- a seen-but-not-retweeted tweet is a genuine
        #: implicit rejection, an unseen one is not.
        self.seen: dict[int, set[int]] = seen if seen is not None else {}

        self._originals_by_author: dict[int, list[Tweet]] = {u.user_id: [] for u in users}
        self._retweets_by_author: dict[int, list[Tweet]] = {u.user_id: [] for u in users}
        self._by_id: dict[int, Tweet] = {}
        for tweet in self.tweets:
            self._by_id[tweet.tweet_id] = tweet
            bucket = self._retweets_by_author if tweet.is_retweet else self._originals_by_author
            bucket[tweet.author_id].append(tweet)

    # -- basics ------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return len(self.users)

    def user(self, user_id: int) -> UserProfile:
        return self.users[user_id]

    def tweet(self, tweet_id: int) -> Tweet:
        return self._by_id[tweet_id]

    # -- the five atomic representation sources ------------------------------

    def tweets_of(self, user_id: int) -> list[Tweet]:
        """T(u): the user's original tweets (retweets excluded)."""
        return list(self._originals_by_author[user_id])

    def retweets_of(self, user_id: int) -> list[Tweet]:
        """R(u): the user's retweets."""
        return list(self._retweets_by_author[user_id])

    def outgoing(self, user_id: int) -> list[Tweet]:
        """R(u) ∪ T(u): everything the user posted, in time order."""
        merged = self._originals_by_author[user_id] + self._retweets_by_author[user_id]
        return sorted(merged, key=lambda t: (t.timestamp, t.tweet_id))

    def _posts_of_users(self, user_ids: frozenset[int]) -> list[Tweet]:
        posts: list[Tweet] = []
        for uid in user_ids:
            posts.extend(self._originals_by_author[uid])
            posts.extend(self._retweets_by_author[uid])
        return sorted(posts, key=lambda t: (t.timestamp, t.tweet_id))

    def incoming(self, user_id: int) -> list[Tweet]:
        """E(u): all (re)tweets of the user's followees."""
        return self._posts_of_users(self.graph.followees(user_id))

    def followers_tweets(self, user_id: int) -> list[Tweet]:
        """F(u): all (re)tweets of the user's followers."""
        return self._posts_of_users(self.graph.followers(user_id))

    def reciprocal_tweets(self, user_id: int) -> list[Tweet]:
        """C(u): all (re)tweets of the user's reciprocal connections."""
        return self._posts_of_users(self.graph.reciprocal(user_id))

    # -- user classification ---------------------------------------------------

    def posting_ratio(self, user_id: int) -> float:
        """Outgoing / incoming tweet count; ``inf`` with no incoming."""
        outgoing = len(self._originals_by_author[user_id]) + len(
            self._retweets_by_author[user_id]
        )
        incoming = len(self.incoming(user_id))
        if incoming == 0:
            return float("inf")
        return outgoing / incoming

    def user_type(self, user_id: int) -> UserType:
        return UserType.from_posting_ratio(self.posting_ratio(user_id))

    def __repr__(self) -> str:
        n_retweets = sum(len(v) for v in self._retweets_by_author.values())
        return (
            f"MicroblogDataset({self.n_users} users, {len(self.tweets)} tweets, "
            f"{n_retweets} retweets)"
        )


def _build_profiles(
    config: DatasetConfig, inventory: LanguageInventory, rng: np.random.Generator
) -> tuple[list[UserProfile], list[str]]:
    """User profiles and their generator roles."""
    n = config.n_users
    n_seekers = int(round(n * config.seeker_fraction))
    n_balanced = int(round(n * config.balanced_fraction))
    n_producers = int(round(n * config.producer_fraction))
    n_lurkers = n - n_seekers - n_balanced - n_producers
    roles = (
        ["seeker"] * n_seekers
        + ["balanced"] * n_balanced
        + ["producer"] * n_producers
        + ["lurker"] * n_lurkers
    )
    rng.shuffle(roles)

    rates = {
        "seeker": config.seeker_tweet_rate,
        "balanced": config.balanced_tweet_rate,
        "producer": config.producer_tweet_rate,
        "lurker": config.lurker_tweet_rate,
    }
    profiles: list[UserProfile] = []
    languages = inventory.allocate_languages(n, rng)
    for user_id, role in enumerate(roles):
        focus = rng.choice(config.n_topics, size=config.interests_per_user, replace=False)
        alpha = np.full(config.n_topics, 0.05)
        alpha[focus] += 2.0
        interests = rng.dirichlet(alpha)
        language = languages[user_id]
        # Log-normal jitter keeps rates positive while varying users.
        rate = rates[role] * float(rng.lognormal(0.0, 0.25))
        affinity = float(rng.uniform(0.8, 1.2))
        if role == "lurker":
            affinity *= config.lurker_retweet_affinity
        profiles.append(
            UserProfile(
                user_id=user_id,
                interests=interests,
                language=language.name,
                tweet_rate=rate,
                retweet_affinity=affinity,
            )
        )
    return profiles, roles


def generate_dataset(
    config: DatasetConfig = DatasetConfig(),
    inventory: LanguageInventory | None = None,
) -> MicroblogDataset:
    """Run the simulation and return the indexed dataset.

    The simulation ticks through time. Each tick every user posts a
    Poisson number of original tweets; each fresh tweet is then offered
    to the author's followers, who retweet it according to the
    content-dependent :class:`~repro.twitter.behavior.RetweetPolicy`.
    Retweet cascades are one hop deep (followers of a retweeter see the
    retweet in their E(u) stream but do not re-retweet), which keeps the
    relevance labels tied to the *original* content.
    """
    rng = np.random.default_rng(config.seed)
    if inventory is None:
        inventory = default_inventory(seed=config.seed, n_topics=config.n_topics)
    elif inventory.n_topics != config.n_topics:
        raise DataGenerationError(
            f"inventory has {inventory.n_topics} topics but config wants {config.n_topics}"
        )

    profiles, roles = _build_profiles(config, inventory, rng)
    graph = generate_follow_graph(
        roles,
        rng,
        interests=[p.interests for p in profiles],
        homophily=config.homophily,
        languages=[p.language for p in profiles],
    )
    composer = TweetComposer(
        inventory,
        noise=config.noise,
        phrase_rate=config.phrase_rate,
        common_word_rate=config.common_word_rate,
        topic_concentration=config.topic_concentration,
    )
    policy = config.retweet_policy

    tweets: list[Tweet] = []
    already_retweeted: set[tuple[int, int]] = set()  # (user, original tweet)
    seen: dict[int, set[int]] = {p.user_id: set() for p in profiles}
    next_id = 0

    for tick in range(config.n_ticks):
        fresh: list[Tweet] = []
        for profile in profiles:
            for _ in range(int(rng.poisson(profile.tweet_rate))):
                mentionable = tuple(graph.followees(profile.user_id))
                composed = composer.compose(profile, rng, mentionable=mentionable)
                tweet = Tweet(
                    tweet_id=next_id,
                    author_id=profile.user_id,
                    text=composed.text,
                    timestamp=tick,
                    topic_mix=composed.topic_mix,
                )
                next_id += 1
                fresh.append(tweet)

        tweets.extend(fresh)

        # Retweet decisions: each user reads up to attention_budget fresh
        # tweets from her followees this tick and reposts per the policy.
        fresh_by_author: dict[int, list[Tweet]] = {}
        for tweet in fresh:
            fresh_by_author.setdefault(tweet.author_id, []).append(tweet)

        for profile in profiles:
            readable: list[Tweet] = []
            for followee in graph.followees(profile.user_id):
                readable.extend(fresh_by_author.get(followee, ()))
            if not readable:
                continue
            if len(readable) > config.attention_budget:
                picks = rng.choice(len(readable), size=config.attention_budget, replace=False)
                readable = [readable[i] for i in picks]
            for tweet in readable:
                seen[profile.user_id].add(tweet.tweet_id)
                key = (profile.user_id, tweet.tweet_id)
                if key in already_retweeted:
                    continue
                p = policy.probability(profile, np.array(tweet.topic_mix))
                if profiles[tweet.author_id].language != profile.language:
                    p *= config.cross_language_retweet_rate
                if rng.random() < p:
                    already_retweeted.add(key)
                    tweets.append(
                        Tweet(
                            tweet_id=next_id,
                            author_id=profile.user_id,
                            text=tweet.text,
                            timestamp=tick,
                            retweet_of=tweet.tweet_id,
                            original_author_id=tweet.author_id,
                            topic_mix=tweet.topic_mix,
                        )
                    )
                    next_id += 1

    return MicroblogDataset(profiles, tweets, graph, inventory, seen=seen)


def select_user_groups(
    dataset: MicroblogDataset,
    group_size: int = 20,
    min_retweets: int = 10,
    producer_ratio_threshold: float = 2.0,
) -> dict[UserType, list[int]]:
    """Reproduce the paper's user-group selection (Section 4).

    Eligible users (enough retweets for a meaningful test set) are ranked
    by posting ratio. The ``group_size`` lowest ratios form IS; the
    ``group_size`` ratios closest to 1 form BU; users with ratio above
    ``producer_ratio_threshold`` form IP (capped at ``group_size``, as the
    paper found only 9 such users); the All-Users group unites the three
    plus the remaining highest-ratio users, as in the paper.
    """
    eligible = [
        u.user_id
        for u in dataset.users
        if len(dataset.retweets_of(u.user_id)) >= min_retweets
    ]
    if len(eligible) < 3:
        raise DataGenerationError(
            f"only {len(eligible)} users have >= {min_retweets} retweets; "
            "generate a bigger dataset or lower min_retweets"
        )
    ratios = {uid: dataset.posting_ratio(uid) for uid in eligible}
    by_ratio = sorted(eligible, key=lambda uid: ratios[uid])

    group_size = min(group_size, max(1, len(eligible) // 3))
    seekers = by_ratio[:group_size]
    rest = [uid for uid in by_ratio if uid not in set(seekers)]
    balanced = sorted(rest, key=lambda uid: abs(ratios[uid] - 1.0))[:group_size]
    remaining = [uid for uid in rest if uid not in set(balanced)]
    producers = [uid for uid in remaining if ratios[uid] > producer_ratio_threshold]
    producers = sorted(producers, key=lambda uid: -ratios[uid])[:group_size]

    leftovers = [uid for uid in remaining if uid not in set(producers)]
    all_users = sorted(set(seekers) | set(balanced) | set(producers) | set(leftovers))

    return {
        UserType.INFORMATION_SEEKER: seekers,
        UserType.BALANCED_USER: balanced,
        UserType.INFORMATION_PRODUCER: producers,
        UserType.ALL: all_users,
    }
