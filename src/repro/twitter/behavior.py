"""Retweet behaviour: the content-dependent relevance mechanism.

The paper's evaluation hinges on one assumption: *a user retweets what
she finds relevant*, so retweets are implicit relevance labels. For the
synthetic substrate to exercise the same code paths, retweet decisions
must depend on tweet **content** -- then, and only then, can a
content-based recommender out-rank chronological or random ordering.

:class:`RetweetPolicy` implements the decision: the probability that
user ``u`` retweets a tweet with topic mixture ``m`` is

    p = base · affinity_u · (⟨interests_u, m⟩ / max(interests_u))^sharpness

clipped to ``[0, max_probability]``. The normalised dot product is 1 for
a pure tweet on the user's top interest and near 0 for off-interest
content; ``sharpness`` controls how deterministic relevance is (the
ablation bench sweeps it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.twitter.entities import UserProfile

__all__ = ["RetweetPolicy"]


@dataclass(frozen=True)
class RetweetPolicy:
    """Content-driven retweet decisions.

    Parameters
    ----------
    base_probability:
        Probability of retweeting a maximally on-interest tweet for a
        user with affinity 1.
    sharpness:
        Exponent on the normalised interest/content match. Higher values
        make relevance more deterministic and widen the gap between
        content-based models and the RAN baseline.
    social_noise:
        Probability that a decision ignores content entirely (retweeting
        a friend's post out of courtesy, missing a relevant one). Real
        retweet behaviour is not purely content-driven, which is why no
        model reaches MAP = 1 in the paper; this is the knob that puts
        the same irreducible noise into the substrate.
    max_probability:
        Safety cap for users with large affinities.
    """

    base_probability: float = 0.9
    sharpness: float = 4.0
    social_noise: float = 0.1
    max_probability: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.base_probability <= 1.0:
            raise ValidationError(f"base_probability must be in (0, 1], got {self.base_probability}")
        if self.sharpness < 0.0:
            raise ValidationError(f"sharpness must be >= 0, got {self.sharpness}")
        if not 0.0 <= self.social_noise <= 1.0:
            raise ValidationError(f"social_noise must be in [0, 1], got {self.social_noise}")

    def match_score(self, profile: UserProfile, topic_mix: np.ndarray) -> float:
        """Normalised interest/content match in ``[0, 1]``."""
        top = float(np.max(profile.interests))
        if top <= 0.0:
            return 0.0
        raw = float(np.dot(profile.interests, topic_mix))
        return min(1.0, raw / top)

    def probability(self, profile: UserProfile, topic_mix: np.ndarray) -> float:
        """Probability that ``profile`` retweets content with ``topic_mix``.

        A ``social_noise`` fraction of the decision mass is
        content-independent: its retweet probability is the *average*
        content-driven probability (approximated by the base probability
        scaled to a mid match), so noise changes who gets retweeted but
        not how much gets retweeted overall.
        """
        score = self.match_score(profile, topic_mix)
        content_p = self.base_probability * profile.retweet_affinity * score**self.sharpness
        noise_p = self.base_probability * profile.retweet_affinity * 0.5**self.sharpness
        p = (1.0 - self.social_noise) * content_p + self.social_noise * noise_p
        return min(self.max_probability, p)

    def decide(
        self, profile: UserProfile, topic_mix: np.ndarray, rng: np.random.Generator
    ) -> bool:
        """Sample the retweet decision."""
        return bool(rng.random() < self.probability(profile, topic_mix))
