"""Synthetic languages with topic-specific vocabularies.

The paper's corpus is highly multilingual (Table 3): ~83% English plus a
long tail led by Japanese, Chinese, Portuguese, Thai, French, Korean,
German, Indonesian and Spanish -- with three Asian scripts in the top
five. That multilingualism (Challenge C3) forbids language-specific
preprocessing and stresses tokenization, because CJK/Thai scripts do not
separate words with spaces.

This module synthesises languages that reproduce those properties:

* each language has its own **script** (a Unicode alphabet) and its own
  **syllable shapes**, so character n-gram profiles are separable (that
  is what real language detectors exploit);
* *spaceless* languages join all words of a sentence without separators,
  recreating the CJK/Thai tokenization hazard;
* each language materialises a vocabulary of **topic words** for every
  latent topic plus a shared pool of **common words** (function words) --
  the topical words are what make content-based recommendation possible,
  the common words are the noise the stop-word filter and IDF must fight.

Word frequencies inside a topic follow a Zipf law, matching natural
language and giving TF-IDF something real to do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenerationError, ValidationError

__all__ = ["SyntheticLanguage", "LanguageInventory", "DEFAULT_LANGUAGES", "default_inventory"]


@dataclass(frozen=True)
class SyntheticLanguage:
    """The static definition of one synthetic language.

    Attributes
    ----------
    name:
        Language name (used by the Table 3 census).
    consonants, vowels:
        Character inventories for syllable construction. For syllabic /
        ideographic scripts, ``vowels`` may be empty and ``consonants``
        act as the full symbol inventory.
    spaceless:
        Words are concatenated without spaces (CJK/Thai behaviour).
    min_syllables, max_syllables:
        Word length range in syllables.
    """

    name: str
    consonants: str
    vowels: str
    spaceless: bool = False
    min_syllables: int = 1
    max_syllables: int = 3

    def make_word(self, rng: np.random.Generator) -> str:
        """Sample one word from this language's syllable model."""
        n_syllables = int(rng.integers(self.min_syllables, self.max_syllables + 1))
        pieces: list[str] = []
        for _ in range(n_syllables):
            pieces.append(self.consonants[int(rng.integers(len(self.consonants)))])
            if self.vowels:
                pieces.append(self.vowels[int(rng.integers(len(self.vowels)))])
        return "".join(pieces)

    def join(self, words: list[str]) -> str:
        """Assemble words into running text under the script's rules."""
        separator = "" if self.spaceless else " "
        return separator.join(words)


def _script_range(start: int, count: int) -> str:
    return "".join(chr(start + i) for i in range(count))


#: Languages mirroring the paper's Table 3 top-10, with the same relative
#: frequencies. Scripts use the real Unicode blocks so that the C3
#: challenges (spaceless text, non-Latin characters) are faithfully
#: exercised.
DEFAULT_LANGUAGES: tuple[tuple[SyntheticLanguage, float], ...] = (
    (SyntheticLanguage("english", "bcdfghjklmnpqrstvwz", "aeiou"), 0.8271),
    (SyntheticLanguage("japanese", _script_range(0x3042, 40), "", spaceless=True), 0.0344),
    (SyntheticLanguage("chinese", _script_range(0x4E00, 80), "", spaceless=True,
                       min_syllables=1, max_syllables=2), 0.0171),
    (SyntheticLanguage("portuguese", "bcdfglmnprstvz", "aeiouãõ"), 0.0070),
    (SyntheticLanguage("thai", _script_range(0x0E01, 30), _script_range(0x0E30, 8),
                       spaceless=True), 0.0068),
    (SyntheticLanguage("french", "bcdfglmnprstvz", "aeiouéè"), 0.0062),
    (SyntheticLanguage("korean", _script_range(0xAC00, 60), "", spaceless=True), 0.0049),
    (SyntheticLanguage("german", "bcdfghklmnprstwz", "aeiouäöü"), 0.0024),
    (SyntheticLanguage("indonesian", "bcdghjklmnprstwy", "aeiou"), 0.0021),
    (SyntheticLanguage("spanish", "bcdfglmnprstvz", "aeiouñ"), 0.0005),
)


class LanguageInventory:
    """Materialised vocabularies for a set of languages over shared topics.

    The latent topics are language-independent concepts; every language
    renders each topic with its own words. A user tweeting about topic 3
    in Japanese and one tweeting about topic 3 in English produce
    different surface text for the same underlying interest, exactly as
    in the real multilingual corpus.

    Parameters
    ----------
    languages:
        ``(language, probability)`` pairs; probabilities are normalised.
    n_topics:
        Number of shared latent topics.
    words_per_topic:
        Vocabulary size per (language, topic) pair.
    n_common_words:
        Number of topic-independent function words per language.
    zipf_exponent:
        Exponent of the within-topic word frequency law.
    shared_word_fraction:
        Fraction of every topic's vocabulary drawn from a language-wide
        *shared* pool. Shared words are ambiguous -- they appear in
        several topics -- so unigram evidence alone cannot fully separate
        topics, exactly as in natural language.
    collocations_per_topic:
        Number of two-word collocations per topic, built from the
        topic's *unique* words. Collocations are what give the
        context-aware models (token bigrams, n-gram graphs) their edge
        over unigram evidence.
    seed:
        Reproducibility seed for vocabulary materialisation.
    """

    def __init__(
        self,
        languages: tuple[tuple[SyntheticLanguage, float], ...] = DEFAULT_LANGUAGES,
        n_topics: int = 12,
        words_per_topic: int = 120,
        n_common_words: int = 60,
        zipf_exponent: float = 0.9,
        shared_word_fraction: float = 0.5,
        collocations_per_topic: int = 20,
        seed: int = 0,
    ):
        if n_topics < 1:
            raise ValidationError(f"n_topics must be >= 1, got {n_topics}")
        if words_per_topic < 1:
            raise ValidationError(f"words_per_topic must be >= 1, got {words_per_topic}")
        if not 0.0 <= shared_word_fraction < 1.0:
            raise ValidationError(
                f"shared_word_fraction must be in [0, 1), got {shared_word_fraction}"
            )
        self.n_topics = n_topics
        self.words_per_topic = words_per_topic
        self.n_common_words = n_common_words
        self.shared_word_fraction = shared_word_fraction
        self.collocations_per_topic = collocations_per_topic
        rng = np.random.default_rng(seed)

        total = sum(p for _, p in languages)
        self._languages = [lang for lang, _ in languages]
        self._probabilities = np.array([p / total for _, p in languages])
        self._by_name = {lang.name: lang for lang in self._languages}

        ranks = np.arange(1, words_per_topic + 1, dtype=float)
        weights = ranks ** (-zipf_exponent)
        self._zipf = weights / weights.sum()

        # topic_words[lang][topic] -> list of words; common_words[lang] -> list
        self._topic_words: dict[str, list[list[str]]] = {}
        self._common_words: dict[str, list[str]] = {}
        self._collocations: dict[str, list[list[tuple[str, str]]]] = {}
        self._successors: dict[str, list[dict[str, tuple[str, str]]]] = {}
        n_shared = int(round(words_per_topic * shared_word_fraction))
        n_unique = words_per_topic - n_shared
        for lang in self._languages:
            seen: set[str] = set()

            def fresh_word() -> str:
                # Rejection-sample until the word is new in this language,
                # so unique vocabularies do not alias each other.
                for _ in range(1000):
                    word = lang.make_word(rng)
                    if word not in seen:
                        seen.add(word)
                        return word
                raise DataGenerationError(
                    f"language {lang.name!r}: could not generate enough distinct words"
                )

            # The pool must be large enough that no single shared word is
            # frequent enough to fall to the corpus stop-word cut (the
            # pipeline removes the top-100 tokens); topics sample their
            # ambiguous slice from it and collocations reuse it.
            shared_pool = [fresh_word() for _ in range(max(n_shared, 1) * n_topics)]
            topics: list[list[str]] = []
            collocations: list[list[tuple[str, str]]] = []
            successors: list[dict[str, tuple[str, str]]] = []
            for _ in range(n_topics):
                unique = [fresh_word() for _ in range(n_unique)]
                ambiguous = (
                    [shared_pool[i] for i in rng.choice(len(shared_pool), size=n_shared,
                                                        replace=False)]
                    if n_shared
                    else []
                )
                vocab = unique + ambiguous
                # Shuffle so shared words are spread across Zipf ranks.
                rng.shuffle(vocab)
                topics.append(vocab)
                # Each topic gets a successor chain over its vocabulary:
                # every word is assigned two topic-specific successors.
                # Text generated by walking the chain has pervasive local
                # bigram structure, like natural language -- and because
                # shared words get *different* successors in different
                # topics, word order carries information that unigram
                # evidence cannot ("Bob sues Jim" vs "Jim sues Bob").
                succ: dict[str, tuple[str, str]] = {}
                for word in vocab:
                    # A single successor per word keeps the topic's edge
                    # inventory small enough that a user's training
                    # stream actually covers it (tweet-scale corpora are
                    # too small for richly branching chains).
                    a = vocab[int(rng.integers(len(vocab)))]
                    succ[word] = (a, a)
                successors.append(succ)
                # Collocations remain available as the chain's strongest
                # pairs (word -> first successor), capped per topic.
                pairs = [(w, s[0]) for w, s in succ.items()][:collocations_per_topic]
                collocations.append(pairs)
            self._topic_words[lang.name] = topics
            self._collocations[lang.name] = collocations
            self._successors[lang.name] = successors
            self._common_words[lang.name] = [fresh_word() for _ in range(n_common_words)]

    # -- lookups ---------------------------------------------------------------

    @property
    def languages(self) -> tuple[SyntheticLanguage, ...]:
        return tuple(self._languages)

    @property
    def language_names(self) -> tuple[str, ...]:
        return tuple(lang.name for lang in self._languages)

    def language(self, name: str) -> SyntheticLanguage:
        return self._by_name[name]

    def sample_language(self, rng: np.random.Generator) -> SyntheticLanguage:
        """Draw a language by its corpus frequency."""
        idx = int(rng.choice(len(self._languages), p=self._probabilities))
        return self._languages[idx]

    def allocate_languages(
        self, n_users: int, rng: np.random.Generator
    ) -> list[SyntheticLanguage]:
        """Assign languages to ``n_users`` by largest-remainder quotas.

        IID sampling at small ``n`` routinely drops the long multilingual
        tail entirely; quota allocation keeps per-language counts as close
        to the configured frequencies as integers allow (so a 60-user
        corpus still reproduces the paper's Table 3 tail). The returned
        list is shuffled.
        """
        if n_users < 0:
            raise ValidationError(f"n_users must be >= 0, got {n_users}")
        quotas = self._probabilities * n_users
        counts = np.floor(quotas).astype(int)
        remainder = n_users - int(counts.sum())
        if remainder > 0:
            order = np.argsort(-(quotas - counts))
            for idx in order[:remainder]:
                counts[idx] += 1
        assigned = [
            lang
            for lang, count in zip(self._languages, counts)
            for _ in range(count)
        ]
        rng.shuffle(assigned)
        return assigned

    def topic_words(self, language: str, topic: int) -> list[str]:
        return self._topic_words[language][topic]

    def common_words(self, language: str) -> list[str]:
        return self._common_words[language]

    def sample_topic_word(self, language: str, topic: int, rng: np.random.Generator) -> str:
        """Draw a word from the (language, topic) Zipf distribution."""
        words = self._topic_words[language][topic]
        return words[int(rng.choice(len(words), p=self._zipf))]

    def sample_common_word(self, language: str, rng: np.random.Generator) -> str:
        words = self._common_words[language]
        return words[int(rng.integers(len(words)))]

    def successors(self, language: str, topic: int, word: str) -> tuple[str, str] | None:
        """The two chain successors of ``word`` in a topic, if any."""
        return self._successors[language][topic].get(word)

    def sample_chain(
        self,
        language: str,
        topic: int,
        rng: np.random.Generator,
        continue_probability: float = 0.55,
        max_length: int = 4,
    ) -> list[str]:
        """Walk the topic's successor chain from a Zipf-sampled start.

        Each step continues with ``continue_probability`` (geometric run
        lengths, as in natural phrases), picking one of the two
        topic-specific successors uniformly.
        """
        word = self.sample_topic_word(language, topic, rng)
        chain = [word]
        while len(chain) < max_length and rng.random() < continue_probability:
            nxt = self._successors[language][topic].get(chain[-1])
            if nxt is None:
                break
            chain.append(nxt[int(rng.integers(2))])
        return chain

    def collocations(self, language: str, topic: int) -> list[tuple[str, str]]:
        """The topic's fixed two-word collocations (may be empty)."""
        return list(self._collocations[language][topic])

    def sample_collocation(
        self, language: str, topic: int, rng: np.random.Generator
    ) -> tuple[str, str] | None:
        """Draw one collocation of a topic, or ``None`` if it has none."""
        pairs = self._collocations[language][topic]
        if not pairs:
            return None
        return pairs[int(rng.integers(len(pairs)))]

    def sample_texts(
        self, language: str, n_texts: int, words_per_text: int, rng: np.random.Generator
    ) -> list[str]:
        """Plain sample sentences, used to train the language detector."""
        lang = self._by_name[language]
        texts = []
        for _ in range(n_texts):
            words = [
                self.sample_topic_word(language, int(rng.integers(self.n_topics)), rng)
                if rng.random() < 0.7
                else self.sample_common_word(language, rng)
                for _ in range(words_per_text)
            ]
            texts.append(lang.join(words))
        return texts


def default_inventory(seed: int = 0, n_topics: int = 12) -> LanguageInventory:
    """The inventory used across examples and benchmarks."""
    return LanguageInventory(seed=seed, n_topics=n_topics)
