"""Synthetic Twitter substrate.

Replaces the paper's (unavailable) 2009 Twitter corpus and social-graph
snapshot with a simulator that preserves the behaviours the evaluation
depends on; see DESIGN.md ("Substitutions") for the full rationale.
"""

from repro.twitter.behavior import RetweetPolicy
from repro.twitter.dataset import (
    DatasetConfig,
    MicroblogDataset,
    generate_dataset,
    select_user_groups,
)
from repro.twitter.entities import Tweet, UserProfile, UserType
from repro.twitter.generator import ComposedText, NoiseChannel, TweetComposer
from repro.twitter.graph import SocialGraph, generate_follow_graph
from repro.twitter.language import (
    DEFAULT_LANGUAGES,
    LanguageInventory,
    SyntheticLanguage,
    default_inventory,
)
from repro.twitter.stats import GroupStats, SourceStats, group_statistics, language_census

__all__ = [
    "ComposedText",
    "DEFAULT_LANGUAGES",
    "DatasetConfig",
    "GroupStats",
    "LanguageInventory",
    "MicroblogDataset",
    "NoiseChannel",
    "RetweetPolicy",
    "SocialGraph",
    "SourceStats",
    "SyntheticLanguage",
    "Tweet",
    "TweetComposer",
    "UserProfile",
    "UserType",
    "default_inventory",
    "generate_dataset",
    "generate_follow_graph",
    "group_statistics",
    "language_census",
    "select_user_groups",
]
