"""Dataset statistics: the machinery behind Tables 2 and 3.

Table 2 reports, per user group, the totals and per-user min/mean/max of
outgoing tweets (TR), retweets (R), incoming tweets (E) and followers'
tweets (F). Table 3 is a language census: tweets are cleaned, pooled per
user, the prevalent language of each pseudo-document is detected, and all
of the user's tweets are assigned to it.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from repro.text.langdetect import LanguageDetector
from repro.text.preprocess import clean_for_langdetect
from repro.twitter.dataset import MicroblogDataset
from repro.twitter.entities import UserType

__all__ = ["SourceStats", "GroupStats", "group_statistics", "language_census"]


@dataclass(frozen=True)
class SourceStats:
    """Total / min / mean / max tweet counts over a user group."""

    total: int
    minimum: int
    mean: float
    maximum: int

    @classmethod
    def from_counts(cls, counts: Sequence[int]) -> "SourceStats":
        if not counts:
            return cls(0, 0, 0.0, 0)
        return cls(
            total=sum(counts),
            minimum=min(counts),
            mean=sum(counts) / len(counts),
            maximum=max(counts),
        )


@dataclass(frozen=True)
class GroupStats:
    """One user group's row block of Table 2."""

    group: UserType
    n_users: int
    outgoing: SourceStats
    retweets: SourceStats
    incoming: SourceStats
    followers_tweets: SourceStats


def group_statistics(
    dataset: MicroblogDataset, groups: dict[UserType, list[int]]
) -> dict[UserType, GroupStats]:
    """Compute the Table 2 statistics for every user group."""
    result: dict[UserType, GroupStats] = {}
    for group, user_ids in groups.items():
        outgoing = [len(dataset.outgoing(uid)) for uid in user_ids]
        retweets = [len(dataset.retweets_of(uid)) for uid in user_ids]
        incoming = [len(dataset.incoming(uid)) for uid in user_ids]
        followers = [len(dataset.followers_tweets(uid)) for uid in user_ids]
        result[group] = GroupStats(
            group=group,
            n_users=len(user_ids),
            outgoing=SourceStats.from_counts(outgoing),
            retweets=SourceStats.from_counts(retweets),
            incoming=SourceStats.from_counts(incoming),
            followers_tweets=SourceStats.from_counts(followers),
        )
    return result


def language_census(
    dataset: MicroblogDataset,
    detector: LanguageDetector | None = None,
    detector_samples: int = 50,
    detector_seed: int = 0,
) -> dict[str, int]:
    """Tweets per detected language -- the paper's Table 3 protocol.

    Every tweet is cleaned (hashtags, mentions, URLs and emoticons
    stripped), tweets are pooled per user, the pseudo-document's language
    is detected, and all the user's tweets count towards that language.

    A detector trained on the dataset's own language inventory is built
    when none is supplied; ``detector_seed`` pins the training-sample
    draw so a census is reproducible across runs.
    """
    if detector is None:
        import numpy as np

        inventory = dataset.inventory
        rng = np.random.default_rng(detector_seed)
        samples = {
            name: inventory.sample_texts(name, detector_samples, 8, rng)
            for name in inventory.language_names
        }
        detector = LanguageDetector().fit(samples)

    census: Counter[str] = Counter()
    for user in dataset.users:
        posts = dataset.outgoing(user.user_id)
        if not posts:
            continue
        pooled = " ".join(clean_for_langdetect(t.text) for t in posts)
        detected = detector.detect(pooled)
        if detected is not None:
            census[detected] += len(posts)
    return dict(census)
