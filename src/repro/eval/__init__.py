"""Evaluation: effectiveness metrics, significance tests and timing."""

from repro.eval.metrics import (
    MapSummary,
    average_precision,
    mean_average_precision,
    precision_at,
    summarize_maps,
)
from repro.eval.significance import TestResult, paired_t_test, wilcoxon_signed_rank
from repro.eval.timing import Stopwatch, TimingSummary, summarize_timings

__all__ = [
    "MapSummary",
    "Stopwatch",
    "TestResult",
    "TimingSummary",
    "average_precision",
    "mean_average_precision",
    "paired_t_test",
    "precision_at",
    "summarize_maps",
    "summarize_timings",
    "wilcoxon_signed_rank",
]
