"""Time-efficiency measurement: TTime and ETime.

The paper's two efficiency measures (Section 4):

* **TTime** (training time) -- modelling time for all users, including,
  for topic models, the one-off training of the shared model M(s);
* **ETime** (testing time) -- time to compare every user model with her
  test tweets and rank them.

:class:`Stopwatch` accumulates wall-clock segments so a pipeline can
attribute its phases to the right bucket, and :class:`TimingSummary`
aggregates min/avg/max across runs for the Figure 7 report.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Stopwatch", "TimingSummary", "summarize_timings"]


class Stopwatch:
    """Accumulates wall-clock time across multiple measured segments."""

    def __init__(self) -> None:
        self._elapsed = 0.0

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager: adds the enclosed block's duration."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._elapsed += time.perf_counter() - start

    @property
    def elapsed(self) -> float:
        """Total measured seconds."""
        return self._elapsed

    def reset(self) -> None:
        self._elapsed = 0.0


@dataclass(frozen=True)
class TimingSummary:
    """Min / average / max seconds over a set of measured runs."""

    minimum: float
    average: float
    maximum: float


def summarize_timings(samples: Sequence[float]) -> TimingSummary:
    """Aggregate run durations into a Figure 7 style summary.

    Raises
    ------
    ConfigurationError
        If ``samples`` is empty -- a summary over zero runs is a caller
        configuration bug, and it surfaces as a library error so callers
        can catch the :class:`~repro.errors.ReproError` family.
    """
    if not samples:
        raise ConfigurationError("cannot summarise zero timing samples")
    return TimingSummary(
        minimum=min(samples),
        average=sum(samples) / len(samples),
        maximum=max(samples),
    )
