"""Paired statistical significance tests.

The paper reports statistical significance (p < 0.05) for pairwise model
comparisons over the same users. The natural test for paired per-user AP
values is the Wilcoxon signed-rank test (no normality assumption); a
paired t-test is also provided. Both are implemented from scratch on top
of a normal approximation so the library has no hard scipy dependency;
the implementations match scipy for the sample sizes used here.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["TestResult", "paired_t_test", "wilcoxon_signed_rank"]


@dataclass(frozen=True)
class TestResult:
    """Outcome of a two-sided paired test."""

    statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def _t_sf(t: float, df: int) -> float:
    """Survival function of Student's t via the regularised incomplete beta.

    Uses a continued-fraction evaluation of I_x(a, b) (Lentz's method),
    accurate to ~1e-10 for the df encountered in practice.
    """
    if df < 1:
        raise ValidationError(f"df must be >= 1, got {df}")
    x = df / (df + t * t)
    prob = 0.5 * _reg_incomplete_beta(df / 2.0, 0.5, x)
    return prob if t > 0 else 1.0 - prob


def _reg_incomplete_beta(a: float, b: float, x: float) -> float:
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    # Continued fraction for I_x(a, b); converges fastest when
    # x < (a + 1) / (a + b + 2), so use the symmetry otherwise.
    if x > (a + 1.0) / (a + b + 2.0):
        return 1.0 - _reg_incomplete_beta(b, a, 1.0 - x)
    tiny = 1e-30
    c = 1.0
    d = 1.0 - (a + b) * x / (a + 1.0)
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    result = d
    for m in range(1, 200):
        m2 = 2 * m
        # even step
        numerator = m * (b - m) * x / ((a + m2 - 1.0) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        result *= d * c
        # odd step
        numerator = -(a + m) * (a + b + m) * x / ((a + m2) * (a + m2 + 1.0))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        result *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return front * result / a


def paired_t_test(sample_a: Sequence[float], sample_b: Sequence[float]) -> TestResult:
    """Two-sided paired t-test on matched samples."""
    if len(sample_a) != len(sample_b):
        raise ValidationError(f"sample sizes differ: {len(sample_a)} vs {len(sample_b)}")
    n = len(sample_a)
    if n < 2:
        raise ValidationError("need at least 2 pairs")
    diffs = [a - b for a, b in zip(sample_a, sample_b)]
    mean = sum(diffs) / n
    var = sum((d - mean) ** 2 for d in diffs) / (n - 1)
    if var == 0.0:
        # All differences identical: either exactly zero (no effect,
        # p = 1) or uniformly shifted (maximal evidence, p = 0).
        return TestResult(statistic=0.0 if mean == 0 else math.inf,
                          p_value=1.0 if mean == 0 else 0.0)
    t = mean / math.sqrt(var / n)
    p = 2.0 * _t_sf(abs(t), n - 1)
    return TestResult(statistic=t, p_value=min(1.0, p))


def wilcoxon_signed_rank(
    sample_a: Sequence[float], sample_b: Sequence[float]
) -> TestResult:
    """Two-sided Wilcoxon signed-rank test (normal approximation).

    Zero differences are dropped (the standard Wilcoxon treatment); tied
    absolute differences share averaged ranks, with the matching tie
    correction in the variance.
    """
    if len(sample_a) != len(sample_b):
        raise ValidationError(f"sample sizes differ: {len(sample_a)} vs {len(sample_b)}")
    diffs = [a - b for a, b in zip(sample_a, sample_b) if a != b]
    n = len(diffs)
    if n == 0:
        return TestResult(statistic=0.0, p_value=1.0)

    by_magnitude = sorted(range(n), key=lambda i: abs(diffs[i]))
    ranks = [0.0] * n
    i = 0
    tie_correction = 0.0
    while i < n:
        j = i
        while j + 1 < n and abs(diffs[by_magnitude[j + 1]]) == abs(diffs[by_magnitude[i]]):
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        count = j - i + 1
        if count > 1:
            tie_correction += count**3 - count
        for k in range(i, j + 1):
            ranks[by_magnitude[k]] = average_rank
        i = j + 1

    w_plus = sum(r for d, r in zip(diffs, ranks) if d > 0)
    mean_w = n * (n + 1) / 4.0
    var_w = n * (n + 1) * (2 * n + 1) / 24.0 - tie_correction / 48.0
    if var_w <= 0:
        return TestResult(statistic=w_plus, p_value=1.0)
    # Continuity correction of 0.5 towards the mean.
    z = (w_plus - mean_w - 0.5 * math.copysign(1.0, w_plus - mean_w)) / math.sqrt(var_w)
    p = 2.0 * _normal_sf(abs(z))
    return TestResult(statistic=w_plus, p_value=min(1.0, p))
