"""Effectiveness metrics: P@n, Average Precision, MAP, MAP deviation.

The paper's definitions (Section 4, "Performance Measures"):

* ``P@n`` -- fraction of the top-n ranked tweets that are relevant
  (retweeted);
* ``AP`` -- ``1/|R| · Σ_n P@n · RT(n)`` where ``RT(n)`` flags a relevant
  tweet at rank ``n`` and ``|R|`` is the number of relevant tweets in the
  test set;
* ``MAP`` -- mean AP over a user group;
* ``MAP deviation`` -- max MAP minus min MAP across a model's
  configurations; the robustness measure (lower is more robust).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = [
    "precision_at",
    "average_precision",
    "mean_average_precision",
    "map_over_users",
    "MapSummary",
    "summarize_maps",
]


def precision_at(relevance: Sequence[bool], n: int) -> float:
    """P@n: fraction of the first ``n`` ranked items that are relevant."""
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    head = relevance[:n]
    if not head:
        return 0.0
    return sum(head) / len(head)


def average_precision(relevance: Sequence[bool]) -> float:
    """AP of one ranked list.

    ``relevance[i]`` flags whether the item ranked at position ``i``
    (0-based) is relevant. Returns 0 for lists without relevant items.
    """
    n_relevant = sum(relevance)
    if n_relevant == 0:
        return 0.0
    total = 0.0
    hits = 0
    for rank, flag in enumerate(relevance, start=1):
        if flag:
            hits += 1
            total += hits / rank
    return total / n_relevant


def mean_average_precision(aps: Sequence[float]) -> float:
    """MAP: the mean of per-user AP values; 0 for an empty group."""
    if not aps:
        return 0.0
    return sum(aps) / len(aps)


def map_over_users(per_user_ap: Mapping[int, float]) -> float:
    """MAP over a per-user AP mapping, summed in ascending user-id order.

    Float addition is not associative, so a MAP computed straight off
    ``dict.values()`` inherits the mapping's insertion order -- which
    differs between a live evaluation and a journal-restored one. Pinning
    the summation order to sorted user ids makes the figure identical
    wherever the mapping came from (reprolint rule RPR002).
    """
    return mean_average_precision([per_user_ap[uid] for uid in sorted(per_user_ap)])


@dataclass(frozen=True)
class MapSummary:
    """Min / mean / max MAP over a set of configurations.

    ``deviation`` (max - min) is the paper's robustness measure.
    """

    minimum: float
    mean: float
    maximum: float

    @property
    def deviation(self) -> float:
        return self.maximum - self.minimum


def summarize_maps(maps: Sequence[float]) -> MapSummary:
    """Aggregate per-configuration MAP values into a summary."""
    if not maps:
        raise ValidationError("cannot summarise zero MAP values")
    return MapSummary(minimum=min(maps), mean=sum(maps) / len(maps), maximum=max(maps))
