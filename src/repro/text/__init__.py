"""Text-processing substrate: tokenization, n-grams, pooling, language id.

Public surface:

* :class:`~repro.text.tokenizer.TweetTokenizer` -- tweet-aware tokenizer;
* :func:`~repro.text.ngrams.token_ngrams` / :func:`~repro.text.ngrams.char_ngrams`;
* :class:`~repro.text.vocabulary.Vocabulary`;
* :class:`~repro.text.preprocess.StopWordFilter` / :class:`~repro.text.preprocess.Preprocessor`;
* :class:`~repro.text.pooling.PoolingScheme` / :func:`~repro.text.pooling.pool_documents`;
* :class:`~repro.text.langdetect.LanguageDetector`.
"""

from repro.text.langdetect import LanguageDetector
from repro.text.ngrams import char_ngrams, ngram_counts, token_ngrams
from repro.text.pooling import PooledDocument, PoolingScheme, pool_documents
from repro.text.preprocess import Preprocessor, StopWordFilter, clean_for_langdetect
from repro.text.tokenizer import EMOTICONS, TweetTokenizer, squeeze_repeats
from repro.text.vocabulary import Vocabulary

__all__ = [
    "EMOTICONS",
    "LanguageDetector",
    "PooledDocument",
    "PoolingScheme",
    "Preprocessor",
    "StopWordFilter",
    "TweetTokenizer",
    "Vocabulary",
    "char_ngrams",
    "clean_for_langdetect",
    "ngram_counts",
    "pool_documents",
    "squeeze_repeats",
    "token_ngrams",
]
