"""Tweet-aware tokenization.

The paper's protocol (Section 4, "Experimental Setup") prescribes a
language-agnostic pipeline applied to every tweet:

* lowercase the raw text;
* tokenize on white space and punctuation;
* keep URLs, hashtags, mentions and emoticons together as single tokens;
* squeeze repeated letters (emphatic lengthening, Challenge C4), e.g.
  ``"yeeees"`` becomes ``"yes"`` -- implemented as capping any run of the
  same character at two occurrences, the common Twitter-NLP convention;
* no stemming/lemmatization/POS tagging (the corpus is multilingual,
  Challenge C3).

The tokenizer in this module implements exactly that contract and nothing
more. Stop-word removal is a separate corpus-level concern handled by
:mod:`repro.text.preprocess`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["TweetTokenizer", "TOKEN_PATTERN", "squeeze_repeats", "EMOTICONS"]

#: Emoticons recognised as atomic tokens. The nine classes used for the
#: Labeled LDA labels (paper Section 4) are all covered here; the mapping
#: from emoticon to class lives in :mod:`repro.models.topic.labels`.
EMOTICONS: tuple[str, ...] = (
    ":)", ":-)", ":d", ":-d", ";)", ";-)", ":(", ":-(", ":p", ":-p",
    "<3", ":o", ":-o", ":/", ":-/", ":s", ":-s", "^_^", "xd", "=)",
)

# The alternation order matters: URLs and emoticons must win over bare
# punctuation; hashtags/mentions must win over word characters.
_EMOTICON_ALT = "|".join(re.escape(e) for e in sorted(EMOTICONS, key=len, reverse=True))
TOKEN_PATTERN = re.compile(
    r"(?:https?://\S+|www\.\S+)"      # URLs
    r"|(?:[#@][\w_]+)"                 # hashtags and mentions
    rf"|(?:{_EMOTICON_ALT})"           # emoticons
    r"|(?:\w+)"                        # word characters (unicode-aware)
    r"|(?:\?)"                         # question mark (an LLDA label)
)

_REPEAT_RUN = re.compile(r"(\w)\1{2,}", re.UNICODE)


def squeeze_repeats(token: str, max_run: int = 2) -> str:
    """Cap runs of a repeated character at ``max_run`` occurrences.

    >>> squeeze_repeats("yeeees")
    'yees'
    >>> squeeze_repeats("good")
    'good'
    """
    if max_run < 1:
        raise ValidationError(f"max_run must be >= 1, got {max_run}")
    return re.sub(r"(\w)\1{%d,}" % max_run, r"\1" * max_run, token)


@dataclass(frozen=True)
class TweetTokenizer:
    """Language-agnostic tokenizer for microblog posts.

    Parameters
    ----------
    lowercase:
        Lowercase the text before tokenizing (paper default: True).
    squeeze:
        Squeeze emphatic character repetitions (paper default: True).
    max_run:
        Maximum allowed run of a repeated character when squeezing.
    """

    lowercase: bool = True
    squeeze: bool = True
    max_run: int = 2
    _pattern: re.Pattern = field(default=TOKEN_PATTERN, repr=False, compare=False)

    def tokenize(self, text: str) -> list[str]:
        """Return the list of tokens for ``text``.

        URLs, hashtags, mentions and emoticons survive as single tokens;
        everything else is split on whitespace and punctuation. The
        question mark is kept (it is one of the LLDA labels); all other
        bare punctuation is dropped.
        """
        if self.lowercase:
            text = text.lower()
        tokens = self._pattern.findall(text)
        if self.squeeze:
            tokens = [
                tok if _is_special(tok) else squeeze_repeats(tok, self.max_run)
                for tok in tokens
            ]
        return tokens

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)


def _is_special(token: str) -> bool:
    """True for tokens whose internal characters must not be squeezed."""
    return token.startswith(("#", "@", "http", "www.")) or token in EMOTICONS
