"""Vocabulary: a bidirectional mapping between terms and integer ids.

Topic models and vectorized bag models need dense integer term ids.
:class:`Vocabulary` provides a frozen-after-build mapping with O(1)
lookups in both directions.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from repro.errors import EmptyCorpusError, ValidationError

__all__ = ["Vocabulary"]


class Vocabulary:
    """An immutable term <-> id mapping built from a token stream.

    Parameters
    ----------
    terms:
        The distinct terms, in the order their ids are assigned.

    Use :meth:`from_documents` to build one from tokenized documents with
    frequency-based filtering.
    """

    __slots__ = ("_terms", "_index")

    def __init__(self, terms: Iterable[str]):
        self._terms: tuple[str, ...] = tuple(terms)
        self._index: dict[str, int] = {t: i for i, t in enumerate(self._terms)}
        if len(self._index) != len(self._terms):
            raise ValidationError("duplicate terms passed to Vocabulary")

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[Iterable[str]],
        min_count: int = 1,
        max_terms: int | None = None,
    ) -> "Vocabulary":
        """Build a vocabulary from tokenized documents.

        Terms are ordered by decreasing corpus frequency (ties broken
        lexicographically) so that truncation by ``max_terms`` keeps the
        most frequent ones.
        """
        counts: Counter[str] = Counter()
        n_docs = 0
        for doc in documents:
            counts.update(doc)
            n_docs += 1
        if n_docs == 0:
            raise EmptyCorpusError("cannot build a vocabulary from zero documents")
        kept = [t for t, c in counts.items() if c >= min_count]
        kept.sort(key=lambda t: (-counts[t], t))
        if max_terms is not None:
            kept = kept[:max_terms]
        return cls(kept)

    def id_of(self, term: str) -> int:
        """Return the id of ``term``; raises ``KeyError`` if absent."""
        return self._index[term]

    def get(self, term: str, default: int | None = None) -> int | None:
        return self._index.get(term, default)

    def term_of(self, term_id: int) -> str:
        return self._terms[term_id]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map tokens to ids, silently dropping out-of-vocabulary tokens."""
        index = self._index
        return [index[t] for t in tokens if t in index]

    def __contains__(self, term: str) -> bool:
        return term in self._index

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[str]:
        return iter(self._terms)

    def __repr__(self) -> str:
        return f"Vocabulary({len(self)} terms)"
