"""Corpus-level preprocessing.

The paper removes the 100 most frequent tokens across all *training*
tweets ("as they practically correspond to stop words", Section 4) and
otherwise applies only the tokenizer-level normalisation. This module
implements that corpus-driven stop-word logic plus the tweet-cleaning
helper used before language detection (strip hashtags, mentions, URLs and
emoticons).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.text.tokenizer import EMOTICONS, TweetTokenizer

__all__ = ["StopWordFilter", "clean_for_langdetect", "Preprocessor"]


class StopWordFilter:
    """Removes the top-``k`` most frequent tokens of a training corpus.

    The filter must be :meth:`fit` on tokenized training documents before
    use; applying an unfitted filter is a no-op by design (so pipelines can
    be composed before data exists) -- but :attr:`stop_words` makes the
    fitted state inspectable.
    """

    def __init__(self, top_k: int = 100):
        if top_k < 0:
            raise ValidationError(f"top_k must be >= 0, got {top_k}")
        self.top_k = top_k
        self._stop_words: frozenset[str] = frozenset()

    def fit(self, documents: Iterable[Sequence[str]]) -> "StopWordFilter":
        """Learn the ``top_k`` most frequent tokens across ``documents``."""
        counts: Counter[str] = Counter()
        for doc in documents:
            counts.update(doc)
        self._stop_words = frozenset(t for t, _ in counts.most_common(self.top_k))
        return self

    @property
    def stop_words(self) -> frozenset[str]:
        return self._stop_words

    def apply(self, tokens: Sequence[str]) -> list[str]:
        """Return ``tokens`` with the learned stop words removed."""
        stop = self._stop_words
        return [t for t in tokens if t not in stop]

    def __call__(self, tokens: Sequence[str]) -> list[str]:
        return self.apply(tokens)


def clean_for_langdetect(text: str) -> str:
    """Strip hashtags, mentions, URLs and emoticons from raw tweet text.

    The paper does exactly this before language detection "in order to
    reduce the noise of non-English tweets" (Section 4).
    """
    tokenizer = TweetTokenizer(lowercase=True, squeeze=False)
    kept = [
        tok
        for tok in tokenizer.tokenize(text)
        if not tok.startswith(("#", "@", "http", "www."))
        and tok not in EMOTICONS
        and tok != "?"
    ]
    return " ".join(kept)


@dataclass
class Preprocessor:
    """The full tokenize-then-filter pipeline used throughout the repo.

    Combines a :class:`~repro.text.tokenizer.TweetTokenizer` with a
    :class:`StopWordFilter`. ``fit`` learns the stop words from raw
    training texts; ``process`` converts one raw text into its final token
    list.
    """

    tokenizer: TweetTokenizer
    stop_filter: StopWordFilter

    @classmethod
    def default(cls, top_k_stop_words: int = 100) -> "Preprocessor":
        return cls(TweetTokenizer(), StopWordFilter(top_k=top_k_stop_words))

    def fit(self, raw_texts: Iterable[str]) -> "Preprocessor":
        self.stop_filter.fit(self.tokenizer.tokenize(t) for t in raw_texts)
        return self

    def process(self, raw_text: str) -> list[str]:
        return self.stop_filter.apply(self.tokenizer.tokenize(raw_text))

    def __call__(self, raw_text: str) -> list[str]:
        return self.process(raw_text)
