"""Character n-gram language detection.

The paper identifies the prevalent language of every user's pooled tweets
with the optimaize language detector (a character n-gram Naive Bayes
classifier) to produce its Table 3 census. That tool is a closed
dependency here, so this module implements the same algorithmic family
from scratch: per-language character n-gram profiles with additive
smoothing, scored by log-likelihood.

Profiles are trained from sample text (in this repo: the synthetic
languages of :mod:`repro.twitter.language`), so the detector works for
any language inventory.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping

from repro.errors import EmptyCorpusError, NotFittedError, ValidationError
from repro.text.ngrams import char_ngrams

__all__ = ["LanguageDetector"]


def _profile_grams(text: str, n: int) -> list[str]:
    """All character n-grams of orders 1..n.

    Including the lower orders keeps the detector robust on small
    profiles: script membership is decided at the single-character
    level, while higher orders separate languages within a script.
    """
    grams: list[str] = []
    for order in range(1, n + 1):
        grams.extend(char_ngrams(text, order))
    return grams


class LanguageDetector:
    """Naive Bayes over character n-grams.

    Parameters
    ----------
    n:
        Character n-gram order (default 2; bigrams are robust for short
        noisy text and cheap to train).
    smoothing:
        Additive (Laplace) smoothing mass for unseen n-grams.
    """

    def __init__(self, n: int = 2, smoothing: float = 1.0):
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        if smoothing <= 0:
            raise ValidationError(f"smoothing must be > 0, got {smoothing}")
        self.n = n
        self.smoothing = smoothing
        self._log_probs: dict[str, dict[str, float]] = {}
        self._fallback: dict[str, float] = {}

    def fit(self, samples: Mapping[str, Iterable[str]]) -> "LanguageDetector":
        """Train one profile per language.

        Parameters
        ----------
        samples:
            Maps a language name to an iterable of sample texts in that
            language.
        """
        if not samples:
            raise EmptyCorpusError("no language samples provided")
        vocab: set[str] = set()
        counts_by_lang: dict[str, Counter[str]] = {}
        for lang, texts in samples.items():
            counts: Counter[str] = Counter()
            for text in texts:
                counts.update(_profile_grams(text.lower(), self.n))
            if not counts:
                raise EmptyCorpusError(f"language {lang!r} has no usable sample text")
            counts_by_lang[lang] = counts
            vocab.update(counts)

        vocab_size = len(vocab)
        self._log_probs = {}
        self._fallback = {}
        for lang, counts in counts_by_lang.items():
            total = (
                sum(counts.values())  # repro: allow[RPR002] -- integer counts: exact in any order
                + self.smoothing * (vocab_size + 1)
            )
            self._log_probs[lang] = {
                gram: math.log((c + self.smoothing) / total)
                for gram, c in counts.items()
            }
            self._fallback[lang] = math.log(self.smoothing / total)
        return self

    @property
    def languages(self) -> tuple[str, ...]:
        return tuple(sorted(self._log_probs))

    def scores(self, text: str) -> dict[str, float]:
        """Per-language log-likelihood of ``text`` (higher is better)."""
        if not self._log_probs:
            raise NotFittedError("LanguageDetector.fit was never called")
        grams = _profile_grams(text.lower(), self.n)
        result: dict[str, float] = {}
        for lang, table in self._log_probs.items():
            fallback = self._fallback[lang]
            result[lang] = sum(table.get(g, fallback) for g in grams)
        return result

    def detect(self, text: str) -> str | None:
        """Return the most likely language, or ``None`` for empty input."""
        if not self._log_probs:
            raise NotFittedError("LanguageDetector.fit was never called")
        if len(text.strip()) < self.n:
            return None
        scored = self.scores(text)
        return max(scored, key=lambda lang: (scored[lang], lang))
