"""Character and token n-gram extraction.

Both the bag models (TN, CN) and the graph models (TNG, CNG) of the paper
are built on n-grams. This module provides the two extraction primitives:

* :func:`token_ngrams` -- n-grams over a token sequence (TN/TNG);
* :func:`char_ngrams` -- n-grams over the raw character stream (CN/CNG).

N-grams are represented as strings. Token n-grams join their tokens with a
single space, which is unambiguous because tokens never contain spaces.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.errors import ValidationError

__all__ = ["token_ngrams", "char_ngrams", "ngram_counts"]


def token_ngrams(tokens: Sequence[str], n: int) -> list[str]:
    """Return the contiguous token n-grams of ``tokens``.

    >>> token_ngrams(["bob", "sues", "jim"], 2)
    ['bob sues', 'sues jim']

    A sequence shorter than ``n`` yields no n-grams.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if n == 1:
        return list(tokens)
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def char_ngrams(text: str, n: int) -> list[str]:
    """Return the contiguous character n-grams of ``text``.

    >>> char_ngrams("tweet", 2)
    ['tw', 'we', 'ee', 'et']

    The text is used verbatim -- callers that want tokenization-level
    normalisation (lowercasing, squeezing) should apply it first and pass
    the normalised string.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    return [text[i : i + n] for i in range(len(text) - n + 1)]


def ngram_counts(grams: Iterable[str]) -> Counter[str]:
    """Count occurrences of each n-gram. Thin, explicit wrapper."""
    return Counter(grams)
