"""Tweet pooling schemes for topic-model training.

Topic models suffer on sparse documents (Challenge C1), so the paper
trains them on pooled pseudo-documents (Section 3.2, "Using Topic
Models"):

* **NP** (no pooling)      -- every tweet is its own document;
* **UP** (user pooling)    -- all tweets by the same user form one document;
* **HP** (hashtag pooling) -- all tweets sharing a hashtag form one
  document; tweets without any hashtag stay individual documents. A tweet
  with several hashtags contributes to every matching pool.

Pooling operates on *token lists* plus lightweight metadata, so it is
independent of any particular model.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["PoolingScheme", "PooledDocument", "pool_documents"]


class PoolingScheme(str, enum.Enum):
    """The three pooling strategies of the paper (NP / UP / HP)."""

    NONE = "NP"
    USER = "UP"
    HASHTAG = "HP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PooledDocument:
    """One pseudo-document produced by pooling.

    Attributes
    ----------
    tokens:
        The concatenated token lists of the pooled tweets.
    key:
        What the pool aggregates on: a user id for UP, a hashtag for HP,
        or the tweet index for NP and unpooled HP leftovers.
    source_indices:
        Indices (into the input list) of the tweets that flowed into this
        pseudo-document.
    """

    tokens: tuple[str, ...]
    key: str
    source_indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.tokens)


def pool_documents(
    documents: Sequence[Sequence[str]],
    scheme: PoolingScheme,
    user_ids: Sequence[str] | None = None,
) -> list[PooledDocument]:
    """Pool tokenized tweets into pseudo-documents under ``scheme``.

    Parameters
    ----------
    documents:
        Tokenized tweets. Hashtag tokens must start with ``"#"`` (the
        tokenizer guarantees this).
    scheme:
        The pooling scheme.
    user_ids:
        Per-tweet author ids; required for
        :attr:`PoolingScheme.USER`, ignored otherwise.
    """
    if scheme is PoolingScheme.NONE:
        return [
            PooledDocument(tuple(doc), key=str(i), source_indices=(i,))
            for i, doc in enumerate(documents)
        ]

    if scheme is PoolingScheme.USER:
        if user_ids is None:
            raise ValidationError("user pooling requires user_ids")
        if len(user_ids) != len(documents):
            raise ValidationError(
                f"user_ids length {len(user_ids)} != documents length {len(documents)}"
            )
        by_user: dict[str, list[int]] = defaultdict(list)
        for i, uid in enumerate(user_ids):
            by_user[str(uid)].append(i)
        return [
            PooledDocument(
                tokens=tuple(t for i in indices for t in documents[i]),
                key=uid,
                source_indices=tuple(indices),
            )
            for uid, indices in by_user.items()
        ]

    if scheme is PoolingScheme.HASHTAG:
        by_tag: dict[str, list[int]] = defaultdict(list)
        untagged: list[int] = []
        for i, doc in enumerate(documents):
            tags = sorted({t for t in doc if t.startswith("#")})
            if tags:
                for tag in tags:
                    by_tag[tag].append(i)
            else:
                untagged.append(i)
        pools = [
            PooledDocument(
                tokens=tuple(t for i in indices for t in documents[i]),
                key=tag,
                source_indices=tuple(indices),
            )
            for tag, indices in sorted(by_tag.items())
        ]
        pools.extend(
            PooledDocument(tuple(documents[i]), key=str(i), source_indices=(i,))
            for i in untagged
        )
        return pools

    raise ValidationError(f"unknown pooling scheme: {scheme!r}")
