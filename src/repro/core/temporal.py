"""Temporal weighting for user profiles: none / sliding window / half-life.

The paper's evaluation treats every training tweet as equally useful,
but "Profiling vs. Time vs. Content" (PAPERS.md) shows recency can
matter as much as the representation model itself. This module supplies
the temporal axis: a :class:`TemporalWeighting` assigns each profile
entry a weight from its age relative to a reference tick (the user's
evaluation cutoff), and :meth:`ProfileState.decayed
<repro.models.base.ProfileState>` folds those weights into the profile
without refitting the underlying model.

Three kinds are supported:

``none``
    Every entry weighs 1.0 -- the paper's original behaviour.
``window``
    A sliding window: entries at most ``window`` ticks old weigh 1.0,
    older entries weigh 0.0 (and drop out of the profile entirely).
``half-life``
    Exponential decay: an entry ``age`` ticks old weighs
    ``0.5 ** (age / half_life)``.

Timestamps are the generator's simulation ticks, so windows and
half-lives are expressed in ticks, not seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = ["NO_DECAY", "TEMPORAL_KINDS", "TemporalWeighting"]

TEMPORAL_KINDS = ("none", "window", "half-life")


@dataclass(frozen=True)
class TemporalWeighting:
    """One point on the temporal-weighting axis.

    Frozen and field-picklable so it can ride inside ``*Spec``
    dataclasses across the process-pool boundary.
    """

    kind: str = "none"
    window: int | None = None
    half_life: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in TEMPORAL_KINDS:
            raise ConfigurationError(
                f"temporal kind must be one of {TEMPORAL_KINDS}, got {self.kind!r}"
            )
        if self.kind == "window":
            if self.window is None or self.window <= 0:
                raise ConfigurationError(
                    f"window weighting needs a positive window, got {self.window!r}"
                )
            if self.half_life is not None:
                raise ConfigurationError("window weighting does not take a half_life")
        elif self.kind == "half-life":
            if self.half_life is None or self.half_life <= 0:
                raise ConfigurationError(
                    f"half-life weighting needs a positive half_life, got {self.half_life!r}"
                )
            if self.window is not None:
                raise ConfigurationError("half-life weighting does not take a window")
        else:
            if self.window is not None or self.half_life is not None:
                raise ConfigurationError("kind 'none' takes neither window nor half_life")

    @property
    def is_identity(self) -> bool:
        """True when this weighting never changes a profile."""
        return self.kind == "none"

    def weight(self, reference: float, timestamp: float) -> float:
        """Weight of an entry stamped ``timestamp``, seen from ``reference``."""
        if self.kind == "none":
            return 1.0
        age = max(reference - timestamp, 0.0)
        if self.kind == "window":
            return 1.0 if age <= self.window else 0.0
        return 0.5 ** (age / self.half_life)

    def weight_fn(self, reference: float) -> Callable[[Any], float]:
        """Per-entry weight callable for :meth:`ProfileState.decayed`.

        Profile entry keys are ``(timestamp, tweet_id)`` tuples; bare
        numeric keys are accepted and read as timestamps directly.
        """

        def weigh(key: Any) -> float:
            timestamp = key[0] if isinstance(key, tuple) else key
            return self.weight(reference, float(timestamp))

        return weigh

    def describe(self) -> dict[str, Any]:
        """Canonical parameter mapping (feeds profile cache keys)."""
        if self.kind == "window":
            return {"kind": self.kind, "window": self.window}
        if self.kind == "half-life":
            return {"kind": self.kind, "half_life": self.half_life}
        return {"kind": self.kind}

    def label(self) -> str:
        """Compact spelling used in config params and CLI output."""
        if self.kind == "window":
            return f"window:{self.window}"
        if self.kind == "half-life":
            return f"half-life:{self.half_life:g}"
        return "none"

    @classmethod
    def parse(cls, spec: str) -> "TemporalWeighting":
        """Parse a CLI spelling: ``none``, ``window:40``, ``half-life:80``."""
        text = spec.strip().lower()
        if text in ("", "none"):
            return cls()
        kind, sep, argument = text.partition(":")
        if sep and argument:
            try:
                if kind == "window":
                    return cls(kind="window", window=int(argument))
                if kind in ("half-life", "exp"):
                    return cls(kind="half-life", half_life=float(argument))
            except ValueError as exc:
                raise ConfigurationError(
                    f"cannot parse temporal spec {spec!r}: {exc}"
                ) from exc
        raise ConfigurationError(
            "temporal spec must be 'none', 'window:<ticks>' or "
            f"'half-life:<ticks>', got {spec!r}"
        )


#: The identity weighting -- the paper's original, undecayed profiles.
NO_DECAY = TemporalWeighting()
