"""Staged evaluation: typed artifacts with deterministic cache keys.

The evaluation of one (model, source, user set) combination decomposes
into four explicit stages:

1. **corpus preparation** -- gather every user's source training tweets
   and convert them to deduplicated, model-ready documents
   (:class:`PreparedCorpus`);
2. **model fit**          -- fit the representation model on the
   prepared corpus (:class:`FittedModel`);
3. **profile building**   -- build one user model per evaluated user
   (:class:`UserProfiles`);
4. **ranking**            -- rank every user's test set and compute her
   Average Precision (:class:`RankingOutcome`).

Every artifact carries a deterministic key derived from the inputs that
produced it (dataset seed, split protocol, source, model parameters),
computed by :func:`artifact_key` over a canonical JSON serialisation
(:func:`canonical_params`). Keys make artifacts shareable: the prepared
corpus of a source depends only on the split protocol and the user set,
never on the model, so a 223-configuration sweep prepares each source's
corpus exactly once (see :class:`ArtifactCache`) instead of 223 times.

The same canonical serialisation is the grouping key for
"same configuration, different group" rows in
:meth:`repro.experiments.runner.SweepResult.best_configuration` and the
cell identity in the sweep journal -- one spelling of "these parameters"
shared across the whole stack.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.core.recommender import RankingRecommender
from repro.core.sources import RepresentationSource
from repro.models.base import TextDoc
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.twitter.entities import Tweet

__all__ = [
    "PROFILE_PROTOCOL_VERSION",
    "ArtifactCache",
    "FittedModel",
    "PreparedCorpus",
    "RankingOutcome",
    "UserProfiles",
    "artifact_key",
    "canonical_params",
    "stage_checkpoint",
    "stage_gate",
]

#: Version of the profile build/update/decay protocol. Folded into every
#: :class:`UserProfiles` cache key so a change to the fold semantics
#: (order pinning, decay weighting, aggregation identities) invalidates
#: previously cached profiles instead of silently serving stale ones.
PROFILE_PROTOCOL_VERSION = 1


#: Installed stage-boundary hooks, called by :func:`stage_checkpoint`.
#: Empty in normal operation; the fault-injection layer
#: (:mod:`repro.faults`) installs a gate here for the duration of one
#: armed evaluation, which is how a fault plan reaches stage code
#: without the stages knowing anything about faults.
_STAGE_GATES: list[Callable[[str], None]] = []


@contextmanager
def stage_gate(gate: Callable[[str], None]) -> Iterator[None]:
    """Install ``gate`` as a stage-boundary hook for one ``with`` block.

    Every :func:`stage_checkpoint` reached inside the block calls
    ``gate(stage_name)`` before the stage's own work starts. Gates may
    raise (or never return) -- that is the point: they are how the
    fault injector makes a stage fail, stall or bloat on demand.
    """
    _STAGE_GATES.append(gate)  # repro: allow[RPR012] -- scoped to this with-block and removed in finally; gates are per-process hooks, never results
    try:
        yield
    finally:
        _STAGE_GATES.remove(gate)


def stage_checkpoint(stage: str) -> None:
    """Announce a stage boundary to any installed gates.

    Called by the pipeline at the entry of each of the four evaluation
    stages (``prepare`` / ``fit`` / ``profiles`` / ``rank``). A no-op
    (one truthiness check) when no gate is installed, so the hot path
    pays nothing for the capability.
    """
    if _STAGE_GATES:
        for gate in tuple(_STAGE_GATES):
            gate(stage)


def canonical_params(params: Mapping[str, Any]) -> str:
    """One canonical JSON spelling of a parameter mapping.

    Key order is normalised and non-JSON values (enums, paths) fall back
    to ``str``, so two dicts describing the same configuration always
    serialise identically -- the property cache keys, journal cell ids
    and configuration grouping all rely on.
    """
    return json.dumps(dict(params), sort_keys=True, separators=(",", ":"), default=str)


def artifact_key(**components: Any) -> str:
    """Deterministic digest of a stage's identifying inputs.

    Components are canonically serialised and hashed, so the key is
    stable across processes and sessions -- equal inputs yield equal
    keys in a sweep worker, a resumed run, or a later report.
    """
    digest = hashlib.sha256(canonical_params(components).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class PreparedCorpus:
    """Stage-1 artifact: one source's training corpus over a user set.

    ``corpus_ids`` / ``corpus_docs`` / ``author_ids`` are parallel and
    deduplicated by tweet id in ascending id order; ``per_user_tweets``
    keeps each user's own (possibly overlapping) training stream for the
    profile-building stage.
    """

    key: str
    source: RepresentationSource
    users: tuple[int, ...]
    per_user_tweets: Mapping[int, tuple[Tweet, ...]] = field(hash=False)
    corpus_ids: tuple[int, ...] = field(hash=False)
    corpus_docs: tuple[TextDoc, ...] = field(hash=False)
    author_ids: tuple[str, ...] = field(hash=False)

    def __len__(self) -> int:
        return len(self.corpus_docs)


@dataclass(frozen=True)
class FittedModel:
    """Stage-2 artifact: a recommender fitted on a prepared corpus."""

    key: str
    recommender: RankingRecommender = field(hash=False)
    corpus: PreparedCorpus = field(hash=False)

    @property
    def model(self):
        return self.recommender.model


@dataclass(frozen=True)
class UserProfiles:
    """Stage-3 artifact: one user model per evaluated user.

    ``params`` records every profile-affecting parameter (aggregation,
    Rocchio weights, temporal decay) and ``version`` the
    :data:`PROFILE_PROTOCOL_VERSION` the profiles were built under; both
    are part of ``key``, so any change to either is a cache miss. The
    profile mappings themselves are immutable artifacts -- mutate a
    profile only through :class:`repro.models.base.ProfileState`, never
    in place (reprolint RPR010 enforces this).
    """

    key: str
    profiles: Mapping[int, object] = field(hash=False)
    params: Mapping[str, Any] = field(default_factory=dict, hash=False)
    version: int = PROFILE_PROTOCOL_VERSION


@dataclass(frozen=True)
class RankingOutcome:
    """Stage-4 artifact: per-user Average Precision."""

    key: str
    per_user_ap: Mapping[int, float] = field(hash=False)


class ArtifactCache:
    """In-memory artifact store keyed by deterministic stage keys.

    ``name`` prefixes the hit/miss counters (``<name>.hit`` /
    ``<name>.miss``) recorded against the telemetry passed to
    :meth:`get_or_build`, so a trace shows exactly how often each stage
    was recomputed versus shared.
    """

    def __init__(self, name: str = "artifact_cache"):
        self.name = name
        self._store: dict[str, Any] = {}

    def peek(self, key: str, telemetry: Telemetry | None = None) -> Any | None:
        """The cached artifact, or ``None`` -- counting the hit/miss.

        For call sites that must build misses at their own span nesting
        level (the profile stage keeps its per-user spans direct
        children of the evaluation phase); pair with :meth:`store`.
        """
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        if key in self._store:
            tel.count(f"{self.name}.hit")
            return self._store[key]
        tel.count(f"{self.name}.miss")
        return None

    def store(self, key: str, artifact: Any) -> Any:
        """Record a freshly built artifact under its key."""
        self._store[key] = artifact
        return artifact

    def get_or_build(
        self,
        key: str,
        build: Callable[[], Any],
        telemetry: Telemetry | None = None,
    ) -> Any:
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        artifact = self.peek(key, tel)
        if artifact is None and key not in self._store:
            # A dedicated span separates the (one-off) artifact build
            # cost from the enclosing phase's cache-hit fast path, and
            # gives the build its own resource window.
            with tel.span(f"{self.name}.build", key=key):
                self.store(key, build())
        return self._store[key]

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
