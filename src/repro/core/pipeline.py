"""End-to-end evaluation pipeline (paper Sections 2 and 4).

For a given representation model, representation source and set of users,
the pipeline:

1. splits every user's timeline into training and testing phases (20%
   most recent retweets are the test positives, 4 sampled negatives per
   positive);
2. fits the shared preprocessing (tokenizer + 100 most frequent training
   tokens as stop words) on the union of all users' training tweets;
3. fits the representation model once on the training corpus -- IDF for
   the TF-IDF bags, the single shared topic model M(s) for topic models;
4. builds one user model per user from her source's training tweets;
5. ranks every user's test set and computes her Average Precision.

Training time (steps 3-4) and testing time (step 5) accumulate into the
paper's TTime and ETime measures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.baselines import (
    chronological_ordering,
    random_ordering_expected_ap,
)
from repro.core.documents import DocumentFactory
from repro.core.recommender import RankingRecommender
from repro.core.sources import RepresentationSource
from repro.core.split import UserSplit, split_user, train_tweets
from repro.errors import ConfigurationError, DataGenerationError
from repro.eval.metrics import average_precision, mean_average_precision
from repro.eval.timing import Stopwatch
from repro.models.aggregation import AggregationFunction
from repro.models.base import RepresentationModel, TextDoc
from repro.twitter.dataset import MicroblogDataset
from repro.twitter.entities import Tweet

__all__ = ["EvaluationResult", "ExperimentPipeline"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one (model, source, user set) combination."""

    model: str
    configuration: dict
    source: RepresentationSource
    per_user_ap: dict[int, float]
    training_seconds: float
    testing_seconds: float

    @property
    def map_score(self) -> float:
        """Mean Average Precision over the evaluated users."""
        return mean_average_precision(list(self.per_user_ap.values()))


@dataclass
class ExperimentPipeline:
    """Shared evaluation machinery over one dataset.

    Splits and preprocessed documents are cached, so evaluating many
    (model, source) combinations over the same users re-tokenises
    nothing.

    Parameters
    ----------
    dataset:
        The corpus under evaluation.
    test_fraction, negatives_per_positive, seed:
        Split protocol knobs (paper: 0.2 / 4).
    max_train_docs_per_user:
        Optional cap on per-user training documents (most recent kept).
        The paper has no cap; benchmarks use one to bound runtime, and
        report it.
    top_k_stop_words:
        Size of the corpus stop-word cut (paper: 100).
    """

    dataset: MicroblogDataset
    test_fraction: float = 0.2
    negatives_per_positive: int = 4
    seed: int = 0
    max_train_docs_per_user: int | None = None
    top_k_stop_words: int = 100

    _splits: dict[int, UserSplit] = field(default_factory=dict, repr=False)
    _factory: DocumentFactory | None = field(default=None, repr=False)
    _doc_cache: dict[int, TextDoc] = field(default_factory=dict, repr=False)

    # -- splits and preprocessing ------------------------------------------

    def split_for(self, user_id: int) -> UserSplit:
        """The (cached) train/test split of one user."""
        if user_id not in self._splits:
            self._splits[user_id] = split_user(
                self.dataset,
                user_id,
                test_fraction=self.test_fraction,
                negatives_per_positive=self.negatives_per_positive,
                seed=self.seed,
            )
        return self._splits[user_id]

    def eligible_users(self, user_ids: Sequence[int]) -> list[int]:
        """The subset of ``user_ids`` with a valid train/test split."""
        eligible = []
        for uid in user_ids:
            try:
                self.split_for(uid)
            except DataGenerationError:
                continue
            eligible.append(uid)
        return eligible

    def _factory_for(self, user_ids: Sequence[int]) -> DocumentFactory:
        """Document factory fitted on all training-phase tweets.

        The paper's stop-word cut uses "all training tweets"; we gather
        every tweet that falls in *some* evaluated user's training phase
        (her outgoing and incoming streams before her cutoff).
        """
        if self._factory is None:
            training: dict[int, Tweet] = {}
            for uid in user_ids:
                cutoff = self.split_for(uid).cutoff
                for tweet in self.dataset.outgoing(uid) + self.dataset.incoming(uid):
                    if tweet.timestamp < cutoff:
                        training[tweet.tweet_id] = tweet
            if not training:
                raise DataGenerationError("no training tweets for any evaluated user")
            self._factory = DocumentFactory(self.top_k_stop_words).fit(training.values())
            self._doc_cache.clear()
        return self._factory

    def _doc(self, tweet: Tweet, factory: DocumentFactory) -> TextDoc:
        doc = self._doc_cache.get(tweet.tweet_id)
        if doc is None:
            doc = factory.to_doc(tweet)
            self._doc_cache[tweet.tweet_id] = doc
        return doc

    def _train_tweets_for(
        self, user_id: int, source: RepresentationSource
    ) -> list[Tweet]:
        tweets = train_tweets(self.dataset, user_id, source, self.split_for(user_id))
        if self.max_train_docs_per_user is not None:
            tweets = tweets[-self.max_train_docs_per_user :]
        return tweets

    # -- model evaluation ------------------------------------------------------

    def evaluate(
        self,
        model: RepresentationModel,
        source: RepresentationSource,
        user_ids: Sequence[int],
    ) -> EvaluationResult:
        """Evaluate one model on one source over the given users."""
        aggregation = getattr(model, "aggregation", None)
        uses_rocchio = aggregation is AggregationFunction.ROCCHIO
        if uses_rocchio and not source.has_negative_examples:
            raise ConfigurationError(
                f"Rocchio needs negative examples; source {source} has none"
            )

        users = self.eligible_users(user_ids)
        if not users:
            raise DataGenerationError("no eligible users to evaluate")
        factory = self._factory_for(users)
        train_time = Stopwatch()
        test_time = Stopwatch()
        recommender = RankingRecommender(model)

        # Training corpus: the union of all users' source train sets.
        per_user_tweets: dict[int, list[Tweet]] = {
            uid: self._train_tweets_for(uid, source) for uid in users
        }
        corpus_tweets: dict[int, Tweet] = {}
        corpus_authors: dict[int, str] = {}
        for tweets in per_user_tweets.values():
            for tweet in tweets:
                corpus_tweets[tweet.tweet_id] = tweet
                corpus_authors[tweet.tweet_id] = str(tweet.author_id)
        corpus_ids = sorted(corpus_tweets)
        corpus_docs = [self._doc(corpus_tweets[i], factory) for i in corpus_ids]
        author_ids = [corpus_authors[i] for i in corpus_ids]

        with train_time.measure():
            recommender.fit(corpus_docs, user_ids=author_ids)

        user_models: dict[int, object] = {}
        for uid in users:
            tweets = per_user_tweets[uid]
            docs = [self._doc(t, factory) for t in tweets]
            labels = source.labels_for(self.dataset, uid, tweets) if uses_rocchio else None
            with train_time.measure():
                user_models[uid] = recommender.build_profile(docs, labels=labels)

        per_user_ap: dict[int, float] = {}
        for uid in users:
            split = self.split_for(uid)
            candidates = list(split.test_set)
            docs = [self._doc(t, factory) for t in candidates]
            relevant = split.relevant_ids
            with test_time.measure():
                ranking = recommender.rank(user_models[uid], docs)
            flags = [candidates[item.position].tweet_id in relevant for item in ranking]
            per_user_ap[uid] = average_precision(flags)

        return EvaluationResult(
            model=model.name,
            configuration=model.describe(),
            source=source,
            per_user_ap=per_user_ap,
            training_seconds=train_time.elapsed,
            testing_seconds=test_time.elapsed,
        )

    # -- baselines ----------------------------------------------------------------

    def evaluate_chronological(self, user_ids: Sequence[int]) -> dict[int, float]:
        """CHR baseline: AP per user when ranking by recency."""
        result: dict[int, float] = {}
        for uid in self.eligible_users(user_ids):
            split = self.split_for(uid)
            candidates = list(split.test_set)
            order = chronological_ordering(candidates)
            relevant = split.relevant_ids
            flags = [candidates[i].tweet_id in relevant for i in order]
            result[uid] = average_precision(flags)
        return result

    def evaluate_random(
        self, user_ids: Sequence[int], iterations: int = 1000
    ) -> dict[int, float]:
        """RAN baseline: expected AP per user over random permutations."""
        result: dict[int, float] = {}
        for uid in self.eligible_users(user_ids):
            split = self.split_for(uid)
            candidates = list(split.test_set)
            relevant = split.relevant_ids
            flags = [t.tweet_id in relevant for t in candidates]
            result[uid] = random_ordering_expected_ap(
                flags, iterations=iterations, seed=self.seed
            )
        return result
