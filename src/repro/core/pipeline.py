"""End-to-end evaluation pipeline (paper Sections 2 and 4).

For a given representation model, representation source and set of users,
the pipeline:

1. splits every user's timeline into training and testing phases (20%
   most recent retweets are the test positives, 4 sampled negatives per
   positive);
2. fits the shared preprocessing (tokenizer + 100 most frequent training
   tokens as stop words) on the union of all users' training tweets;
3. fits the representation model once on the training corpus -- IDF for
   the TF-IDF bags, the single shared topic model M(s) for topic models;
4. builds one user model per user from her source's training tweets;
5. ranks every user's test set and computes her Average Precision.

Training time (steps 3-4) and testing time (step 5) accumulate into the
paper's TTime and ETime measures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.baselines import (
    chronological_ordering,
    random_ordering_expected_ap,
)
from repro.core.documents import DocumentFactory
from repro.core.recommender import RankingRecommender
from repro.core.sources import RepresentationSource
from repro.core.split import UserSplit, split_user, train_tweets
from repro.errors import ConfigurationError, DataGenerationError
from repro.eval.metrics import average_precision, mean_average_precision
from repro.models.aggregation import AggregationFunction
from repro.models.base import RepresentationModel, TextDoc
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.twitter.dataset import MicroblogDataset
from repro.twitter.entities import Tweet

__all__ = ["EvaluationResult", "ExperimentPipeline"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one (model, source, user set) combination."""

    model: str
    configuration: dict
    source: RepresentationSource
    per_user_ap: dict[int, float]
    training_seconds: float
    testing_seconds: float
    #: Per-phase wall-clock rollup (prepare/fit/profiles/rank seconds);
    #: TTime = fit + profiles, ETime = rank.
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def map_score(self) -> float:
        """Mean Average Precision over the evaluated users."""
        return mean_average_precision(list(self.per_user_ap.values()))


@dataclass
class ExperimentPipeline:
    """Shared evaluation machinery over one dataset.

    Splits and preprocessed documents are cached, so evaluating many
    (model, source) combinations over the same users re-tokenises
    nothing.

    Parameters
    ----------
    dataset:
        The corpus under evaluation.
    test_fraction, negatives_per_positive, seed:
        Split protocol knobs (paper: 0.2 / 4).
    max_train_docs_per_user:
        Optional cap on per-user training documents (most recent kept).
        The paper has no cap; benchmarks use one to bound runtime, and
        report it.
    top_k_stop_words:
        Size of the corpus stop-word cut (paper: 100).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`. When set, every
        evaluation records a span tree (``evaluate`` > ``prepare`` /
        ``fit`` / ``profiles`` / ``rank``), doc-cache and eligibility
        metrics, and per-iteration Gibbs progress events. When unset the
        same code path runs with plain stopwatches, so results are
        bit-identical either way.
    """

    dataset: MicroblogDataset
    test_fraction: float = 0.2
    negatives_per_positive: int = 4
    seed: int = 0
    max_train_docs_per_user: int | None = None
    top_k_stop_words: int = 100
    telemetry: Telemetry | None = None

    _splits: dict[int, UserSplit] = field(default_factory=dict, repr=False)
    _factory: DocumentFactory | None = field(default=None, repr=False)
    _doc_cache: dict[int, TextDoc] = field(default_factory=dict, repr=False)

    # -- splits and preprocessing ------------------------------------------

    def split_for(self, user_id: int) -> UserSplit:
        """The (cached) train/test split of one user."""
        if user_id not in self._splits:
            self._splits[user_id] = split_user(
                self.dataset,
                user_id,
                test_fraction=self.test_fraction,
                negatives_per_positive=self.negatives_per_positive,
                seed=self.seed,
            )
        return self._splits[user_id]

    def eligible_users(self, user_ids: Sequence[int]) -> list[int]:
        """The subset of ``user_ids`` with a valid train/test split."""
        eligible = []
        tel = self.telemetry
        for uid in user_ids:
            try:
                self.split_for(uid)
            except DataGenerationError:
                if tel is not None:
                    tel.count("users.ineligible")
                    tel.emit("user_skipped", user=uid, reason="no valid split")
                continue
            eligible.append(uid)
        return eligible

    def _factory_for(self, user_ids: Sequence[int]) -> DocumentFactory:
        """Document factory fitted on all training-phase tweets.

        The paper's stop-word cut uses "all training tweets"; we gather
        every tweet that falls in *some* evaluated user's training phase
        (her outgoing and incoming streams before her cutoff).
        """
        if self._factory is None:
            training: dict[int, Tweet] = {}
            for uid in user_ids:
                cutoff = self.split_for(uid).cutoff
                for tweet in self.dataset.outgoing(uid) + self.dataset.incoming(uid):
                    if tweet.timestamp < cutoff:
                        training[tweet.tweet_id] = tweet
            if not training:
                raise DataGenerationError("no training tweets for any evaluated user")
            self._factory = DocumentFactory(self.top_k_stop_words).fit(training.values())
            self._doc_cache.clear()
        return self._factory

    def _doc(self, tweet: Tweet, factory: DocumentFactory) -> TextDoc:
        doc = self._doc_cache.get(tweet.tweet_id)
        tel = self.telemetry
        if doc is None:
            doc = factory.to_doc(tweet)
            self._doc_cache[tweet.tweet_id] = doc
            if tel is not None:
                tel.count("doc_cache.miss")
                tel.count("docs.tokenized")
        elif tel is not None:
            tel.count("doc_cache.hit")
        return doc

    def _train_tweets_for(
        self, user_id: int, source: RepresentationSource
    ) -> list[Tweet]:
        tweets = train_tweets(self.dataset, user_id, source, self.split_for(user_id))
        if self.max_train_docs_per_user is not None:
            tweets = tweets[-self.max_train_docs_per_user :]
        return tweets

    # -- model evaluation ------------------------------------------------------

    def evaluate(
        self,
        model: RepresentationModel,
        source: RepresentationSource,
        user_ids: Sequence[int],
    ) -> EvaluationResult:
        """Evaluate one model on one source over the given users."""
        aggregation = getattr(model, "aggregation", None)
        uses_rocchio = aggregation is AggregationFunction.ROCCHIO
        if uses_rocchio and not source.has_negative_examples:
            raise ConfigurationError(
                f"Rocchio needs negative examples; source {source} has none"
            )

        tel = self.telemetry if self.telemetry is not None else NULL_TELEMETRY
        with tel.span("evaluate", model=model.name, source=source.value):
            users = self.eligible_users(user_ids)
            if not users:
                raise DataGenerationError("no eligible users to evaluate")
            factory = self._factory_for(users)
            prepare_time = tel.stopwatch("prepare")
            fit_time = tel.stopwatch("fit")
            profile_time = tel.stopwatch("profiles")
            rank_time = tel.stopwatch("rank")
            recommender = RankingRecommender(model)

            # Training corpus: the union of all users' source train sets.
            with prepare_time.measure():
                per_user_tweets: dict[int, list[Tweet]] = {
                    uid: self._train_tweets_for(uid, source) for uid in users
                }
                corpus_tweets: dict[int, Tweet] = {}
                corpus_authors: dict[int, str] = {}
                for tweets in per_user_tweets.values():
                    for tweet in tweets:
                        corpus_tweets[tweet.tweet_id] = tweet
                        corpus_authors[tweet.tweet_id] = str(tweet.author_id)
                corpus_ids = sorted(corpus_tweets)
                corpus_docs = [self._doc(corpus_tweets[i], factory) for i in corpus_ids]
                author_ids = [corpus_authors[i] for i in corpus_ids]

            self._install_iteration_hook(model, tel)
            try:
                with fit_time.measure():
                    recommender.fit(corpus_docs, user_ids=author_ids)
            finally:
                self._clear_iteration_hook(model)

            user_models: dict[int, object] = {}
            for uid in users:
                tweets = per_user_tweets[uid]
                docs = [self._doc(t, factory) for t in tweets]
                labels = source.labels_for(self.dataset, uid, tweets) if uses_rocchio else None
                with profile_time.measure():
                    user_models[uid] = recommender.build_profile(docs, labels=labels)

            per_user_ap: dict[int, float] = {}
            for uid in users:
                split = self.split_for(uid)
                candidates = list(split.test_set)
                docs = [self._doc(t, factory) for t in candidates]
                relevant = split.relevant_ids
                with rank_time.measure():
                    ranking = recommender.rank(user_models[uid], docs)
                flags = [candidates[item.position].tweet_id in relevant for item in ranking]
                per_user_ap[uid] = average_precision(flags)

            result = EvaluationResult(
                model=model.name,
                configuration=model.describe(),
                source=source,
                per_user_ap=per_user_ap,
                training_seconds=fit_time.elapsed + profile_time.elapsed,
                testing_seconds=rank_time.elapsed,
                phase_seconds={
                    "prepare": prepare_time.elapsed,
                    "fit": fit_time.elapsed,
                    "profiles": profile_time.elapsed,
                    "rank": rank_time.elapsed,
                },
            )
            tel.emit(
                "evaluate_done",
                model=model.name,
                source=source.value,
                users=len(users),
                map=result.map_score,
                training_seconds=result.training_seconds,
                testing_seconds=result.testing_seconds,
            )
            return result

    @staticmethod
    def _install_iteration_hook(model: RepresentationModel, tel: Telemetry) -> None:
        """Stream a topic model's per-iteration Gibbs/EM progress."""
        if not tel.enabled or not hasattr(model, "set_iteration_hook"):
            return

        def hook(progress) -> None:
            tel.count("gibbs.iterations")
            if progress.log_likelihood is not None:
                tel.gauge("gibbs.log_likelihood", progress.log_likelihood)
            tel.emit(
                "gibbs_iteration",
                model=progress.model,
                iteration=progress.iteration,
                total=progress.total,
                log_likelihood=progress.log_likelihood,
            )

        model.set_iteration_hook(hook)

    @staticmethod
    def _clear_iteration_hook(model: RepresentationModel) -> None:
        if hasattr(model, "set_iteration_hook"):
            model.set_iteration_hook(None)

    # -- baselines ----------------------------------------------------------------

    def evaluate_chronological(self, user_ids: Sequence[int]) -> dict[int, float]:
        """CHR baseline: AP per user when ranking by recency."""
        result: dict[int, float] = {}
        for uid in self.eligible_users(user_ids):
            split = self.split_for(uid)
            candidates = list(split.test_set)
            order = chronological_ordering(candidates)
            relevant = split.relevant_ids
            flags = [candidates[i].tweet_id in relevant for i in order]
            result[uid] = average_precision(flags)
        return result

    def evaluate_random(
        self, user_ids: Sequence[int], iterations: int = 1000
    ) -> dict[int, float]:
        """RAN baseline: expected AP per user over random permutations."""
        result: dict[int, float] = {}
        for uid in self.eligible_users(user_ids):
            split = self.split_for(uid)
            candidates = list(split.test_set)
            relevant = split.relevant_ids
            flags = [t.tweet_id in relevant for t in candidates]
            result[uid] = random_ordering_expected_ap(
                flags, iterations=iterations, seed=self.seed
            )
        return result
