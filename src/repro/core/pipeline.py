"""End-to-end evaluation pipeline (paper Sections 2 and 4).

For a given representation model, representation source and set of users,
the pipeline:

1. splits every user's timeline into training and testing phases (20%
   most recent retweets are the test positives, 4 sampled negatives per
   positive);
2. fits the shared preprocessing (tokenizer + 100 most frequent training
   tokens as stop words) on the union of all users' training tweets;
3. fits the representation model once on the training corpus -- IDF for
   the TF-IDF bags, the single shared topic model M(s) for topic models;
4. builds one user model per user from her source's training tweets;
5. ranks every user's test set and computes her Average Precision.

Training time (steps 3-4) and testing time (step 5) accumulate into the
paper's TTime and ETime measures.

``evaluate`` composes four explicit stages (see
:mod:`repro.core.stages`): :meth:`~ExperimentPipeline.prepare_corpus`,
:meth:`~ExperimentPipeline.fit_model`,
:meth:`~ExperimentPipeline.build_profiles` and
:meth:`~ExperimentPipeline.rank_users`. Each stage returns a typed
artifact with a deterministic cache key; the prepared corpus is cached
per (source, user set), so a sweep over many configurations prepares
each source's corpus exactly once (``corpus_cache.hit`` /
``corpus_cache.miss`` counters record the sharing).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.baselines import (
    chronological_ordering,
    random_ordering_expected_ap,
)
from repro.core.documents import DocumentFactory
from repro.core.recommender import RankingRecommender
from repro.core.sources import RepresentationSource
from repro.core.split import UserSplit, split_user, train_tweets
from repro.core.stages import (
    PROFILE_PROTOCOL_VERSION,
    ArtifactCache,
    FittedModel,
    PreparedCorpus,
    RankingOutcome,
    UserProfiles,
    artifact_key,
    stage_checkpoint,
)
from repro.errors import ConfigurationError, DataGenerationError
from repro.eval.metrics import average_precision, map_over_users
from repro.eval.timing import Stopwatch
from repro.models.aggregation import AggregationFunction
from repro.models.base import RepresentationModel, TextDoc
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.twitter.dataset import MicroblogDataset
from repro.twitter.entities import Tweet

__all__ = ["EvaluationResult", "ExperimentPipeline"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one (model, source, user set) combination."""

    model: str
    configuration: dict
    source: RepresentationSource
    per_user_ap: dict[int, float]
    training_seconds: float
    testing_seconds: float
    #: Per-phase wall-clock rollup (prepare/fit/profiles/rank seconds);
    #: TTime = fit + profiles, ETime = rank.
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def map_score(self) -> float:
        """Mean Average Precision over the evaluated users."""
        return map_over_users(self.per_user_ap)


@dataclass
class _PreprocessContext:
    """One user set's fitted preprocessing: factory plus its doc cache.

    Documents depend on the factory's stop words, which depend on the
    evaluated user set, so each user set owns its own cache -- a doc
    tokenized under one stop-word cut is never served to another.
    """

    factory: DocumentFactory
    doc_cache: dict[int, TextDoc] = field(default_factory=dict)


@dataclass
class ExperimentPipeline:
    """Shared evaluation machinery over one dataset.

    Splits, preprocessed documents and per-source prepared corpora are
    cached, so evaluating many (model, source) combinations over the
    same users re-tokenises nothing and re-assembles no corpus.

    Parameters
    ----------
    dataset:
        The corpus under evaluation.
    test_fraction, negatives_per_positive, seed:
        Split protocol knobs (paper: 0.2 / 4).
    max_train_docs_per_user:
        Optional cap on per-user training documents (most recent kept).
        The paper has no cap; benchmarks use one to bound runtime, and
        report it.
    top_k_stop_words:
        Size of the corpus stop-word cut (paper: 100).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`. When set, every
        evaluation records a span tree (``evaluate`` > ``prepare`` /
        ``fit`` / ``profiles`` / ``rank``), doc-cache, corpus-cache and
        eligibility metrics, and per-iteration Gibbs progress events.
        When unset the same code path runs with plain stopwatches, so
        results are bit-identical either way.
    """

    dataset: MicroblogDataset
    test_fraction: float = 0.2
    negatives_per_positive: int = 4
    seed: int = 0
    max_train_docs_per_user: int | None = None
    top_k_stop_words: int = 100
    telemetry: Telemetry | None = None

    _splits: dict[int, UserSplit] = field(default_factory=dict, repr=False)
    _contexts: dict[tuple[int, ...], _PreprocessContext] = field(
        default_factory=dict, repr=False
    )
    _corpus_cache: ArtifactCache = field(
        default_factory=lambda: ArtifactCache("corpus_cache"), repr=False
    )
    _profile_cache: ArtifactCache = field(
        default_factory=lambda: ArtifactCache("profile_cache"), repr=False
    )

    # -- splits and preprocessing ------------------------------------------

    def split_for(self, user_id: int) -> UserSplit:
        """The (cached) train/test split of one user."""
        if user_id not in self._splits:
            self._splits[user_id] = split_user(
                self.dataset,
                user_id,
                test_fraction=self.test_fraction,
                negatives_per_positive=self.negatives_per_positive,
                seed=self.seed,
            )
        return self._splits[user_id]

    def eligible_users(self, user_ids: Sequence[int]) -> list[int]:
        """The subset of ``user_ids`` with a valid train/test split."""
        eligible = []
        tel = self.telemetry
        for uid in user_ids:
            try:
                self.split_for(uid)
            except DataGenerationError:
                if tel is not None:
                    tel.count("users.ineligible")
                    tel.emit("user_skipped", user=uid, reason="no valid split")
                continue
            eligible.append(uid)
        return eligible

    def _context_for(self, users: tuple[int, ...]) -> _PreprocessContext:
        """The preprocessing context fitted for exactly this user set.

        The paper's stop-word cut uses "all training tweets"; we gather
        every tweet that falls in *some* evaluated user's training phase
        (her outgoing and incoming streams before her cutoff). Contexts
        are keyed on the user set, so evaluating a different set fits a
        fresh factory instead of silently reusing the first one.
        """
        context = self._contexts.get(users)
        if context is None:
            training: dict[int, Tweet] = {}
            for uid in users:
                cutoff = self.split_for(uid).cutoff
                for tweet in self.dataset.outgoing(uid) + self.dataset.incoming(uid):
                    if tweet.timestamp < cutoff:
                        training[tweet.tweet_id] = tweet
            if not training:
                raise DataGenerationError("no training tweets for any evaluated user")
            context = _PreprocessContext(
                factory=DocumentFactory(self.top_k_stop_words).fit(training.values())
            )
            self._contexts[users] = context
        return context

    def _factory_for(self, user_ids: Sequence[int]) -> DocumentFactory:
        """Document factory fitted on this user set's training tweets."""
        return self._context_for(tuple(user_ids)).factory

    def _doc(self, tweet: Tweet, context: _PreprocessContext) -> TextDoc:
        doc = context.doc_cache.get(tweet.tweet_id)
        tel = self.telemetry
        if doc is None:
            doc = context.factory.to_doc(tweet)
            context.doc_cache[tweet.tweet_id] = doc
            if tel is not None:
                tel.count("doc_cache.miss")
                tel.count("docs.tokenized")
        elif tel is not None:
            tel.count("doc_cache.hit")
        return doc

    def _train_tweets_for(
        self, user_id: int, source: RepresentationSource
    ) -> list[Tweet]:
        tweets = train_tweets(self.dataset, user_id, source, self.split_for(user_id))
        if self.max_train_docs_per_user is not None:
            tweets = tweets[-self.max_train_docs_per_user :]
        return tweets

    # -- the four evaluation stages ----------------------------------------

    def corpus_key(self, source: RepresentationSource, users: Sequence[int]) -> str:
        """Deterministic cache key of one source's prepared corpus."""
        return artifact_key(
            stage="prepare_corpus",
            seed=self.seed,
            test_fraction=self.test_fraction,
            negatives_per_positive=self.negatives_per_positive,
            max_train_docs_per_user=self.max_train_docs_per_user,
            top_k_stop_words=self.top_k_stop_words,
            source=source.value,
            users=list(users),
        )

    def prepare_corpus(
        self, source: RepresentationSource, users: Sequence[int]
    ) -> PreparedCorpus:
        """Stage 1: the source's training corpus over the user set.

        The artifact depends only on the split protocol, the source and
        the user set -- never on the model -- so it is cached and shared
        across every configuration of a sweep.
        """
        stage_checkpoint("prepare")
        users = tuple(users)
        key = self.corpus_key(source, users)

        def build() -> PreparedCorpus:
            context = self._context_for(users)
            per_user_tweets: dict[int, tuple[Tweet, ...]] = {
                uid: tuple(self._train_tweets_for(uid, source)) for uid in users
            }
            corpus_tweets: dict[int, Tweet] = {}
            corpus_authors: dict[int, str] = {}
            for tweets in per_user_tweets.values():
                for tweet in tweets:
                    corpus_tweets[tweet.tweet_id] = tweet
                    corpus_authors[tweet.tweet_id] = str(tweet.author_id)
            corpus_ids = sorted(corpus_tweets)
            return PreparedCorpus(
                key=key,
                source=source,
                users=users,
                per_user_tweets=per_user_tweets,
                corpus_ids=tuple(corpus_ids),
                corpus_docs=tuple(
                    self._doc(corpus_tweets[i], context) for i in corpus_ids
                ),
                author_ids=tuple(corpus_authors[i] for i in corpus_ids),
            )

        return self._corpus_cache.get_or_build(key, build, self.telemetry)

    def fit_model(
        self, model: RepresentationModel, corpus: PreparedCorpus
    ) -> FittedModel:
        """Stage 2: fit the representation model on the prepared corpus."""
        stage_checkpoint("fit")
        tel = self.telemetry if self.telemetry is not None else NULL_TELEMETRY
        recommender = RankingRecommender(model)
        self._install_iteration_hook(model, tel)
        try:
            recommender.fit(corpus.corpus_docs, user_ids=corpus.author_ids)
        finally:
            self._clear_iteration_hook(model)
        return FittedModel(
            key=artifact_key(
                stage="fit",
                corpus=corpus.key,
                model=model.name,
                params=model.describe(),
            ),
            recommender=recommender,
            corpus=corpus,
        )

    def profile_inputs(
        self, fitted: FittedModel, user_id: int
    ) -> tuple[list[TextDoc], list[int] | None, list[tuple[int, int]]]:
        """One user's profile-building inputs: docs, labels, fold keys.

        The fold keys are ``(timestamp, tweet_id)`` tuples -- the
        canonical incremental fold order pinned by
        :class:`~repro.models.base.ProfileState`. Shared between
        :meth:`build_profiles` and the streaming replay driver so both
        fold the exact same stream.
        """
        corpus = fitted.corpus
        aggregation = getattr(fitted.model, "aggregation", None)
        uses_rocchio = aggregation is AggregationFunction.ROCCHIO
        context = self._context_for(corpus.users)
        tweets = corpus.per_user_tweets[user_id]
        docs = [self._doc(t, context) for t in tweets]
        labels = (
            corpus.source.labels_for(self.dataset, user_id, list(tweets))
            if uses_rocchio
            else None
        )
        keys = [(t.timestamp, t.tweet_id) for t in tweets]
        return docs, labels, keys

    def profile_key(self, fitted: FittedModel) -> str:
        """Deterministic cache key of one fitted model's user profiles.

        Includes every profile-affecting parameter
        (:meth:`~repro.models.base.RepresentationModel.profile_params`:
        aggregation, Rocchio weights, temporal decay) and the protocol
        version, so changing a decay or window parameter is a cache
        miss, never a stale hit.
        """
        model = fitted.model
        params = (
            model.profile_params()
            if hasattr(model, "profile_params")
            else model.describe()
        )
        return artifact_key(
            stage="profiles",
            version=PROFILE_PROTOCOL_VERSION,
            fit=fitted.key,
            profile=params,
        )

    def build_profiles(
        self, fitted: FittedModel, stopwatch: Stopwatch | None = None
    ) -> UserProfiles:
        """Stage 3: one user model per evaluated user.

        Profiles fold through the model's incremental
        :class:`~repro.models.base.ProfileState` in pinned
        ``(timestamp, tweet_id)`` order; a temporal weighting attached
        to the model (``model.temporal``) is applied via
        :meth:`~repro.models.base.ProfileState.decayed`, anchored at
        each user's split cutoff. ``stopwatch`` (when given) measures
        each profile build individually, reproducing the per-user
        ``profiles`` spans of the trace tree.
        """
        stage_checkpoint("profiles")
        if stopwatch is None:
            stopwatch = Stopwatch()
        corpus = fitted.corpus
        model = fitted.model
        temporal = getattr(model, "temporal", None)
        if temporal is not None and temporal.is_identity:
            temporal = None
        key = self.profile_key(fitted)
        cached = self._profile_cache.peek(key, self.telemetry)
        if cached is not None:
            return cached

        profiles: dict[int, object] = {}
        for uid in corpus.users:
            docs, labels, keys = self.profile_inputs(fitted, uid)
            with stopwatch.measure():
                try:
                    state = model.init_profile()
                except NotImplementedError:
                    if temporal is not None:
                        raise ConfigurationError(
                            f"{model.name} has no incremental profile state; "
                            "temporal weighting requires one"
                        ) from None
                    profiles[uid] = fitted.recommender.build_profile(docs, labels=labels)
                    continue
                state.update(docs, labels=labels, keys=keys)
                if temporal is None:
                    profiles[uid] = state.value()
                else:
                    reference = self.split_for(uid).cutoff
                    profiles[uid] = state.decayed(temporal.weight_fn(reference))
        params = (
            model.profile_params()
            if hasattr(model, "profile_params")
            else model.describe()
        )
        return self._profile_cache.store(
            key,
            UserProfiles(
                key=key,
                profiles=profiles,
                params=params,
                version=PROFILE_PROTOCOL_VERSION,
            ),
        )

    def rank_users(
        self,
        fitted: FittedModel,
        profiles: UserProfiles,
        stopwatch: Stopwatch | None = None,
    ) -> RankingOutcome:
        """Stage 4: rank every user's test set and compute her AP."""
        stage_checkpoint("rank")
        if stopwatch is None:
            stopwatch = Stopwatch()
        context = self._context_for(fitted.corpus.users)
        per_user_ap: dict[int, float] = {}
        for uid in fitted.corpus.users:
            split = self.split_for(uid)
            candidates = list(split.test_set)
            docs = [self._doc(t, context) for t in candidates]
            relevant = split.relevant_ids
            with stopwatch.measure():
                ranking = fitted.recommender.rank(profiles.profiles[uid], docs)
            flags = [candidates[item.position].tweet_id in relevant for item in ranking]
            per_user_ap[uid] = average_precision(flags)
        return RankingOutcome(
            key=artifact_key(stage="rank", profiles=profiles.key),
            per_user_ap=per_user_ap,
        )

    # -- model evaluation ------------------------------------------------------

    def evaluate(
        self,
        model: RepresentationModel,
        source: RepresentationSource,
        user_ids: Sequence[int],
    ) -> EvaluationResult:
        """Evaluate one model on one source over the given users."""
        aggregation = getattr(model, "aggregation", None)
        uses_rocchio = aggregation is AggregationFunction.ROCCHIO
        if uses_rocchio and not source.has_negative_examples:
            raise ConfigurationError(
                f"Rocchio needs negative examples; source {source} has none"
            )

        tel = self.telemetry if self.telemetry is not None else NULL_TELEMETRY
        with tel.span("evaluate", model=model.name, source=source.value):
            users = self.eligible_users(user_ids)
            if not users:
                raise DataGenerationError("no eligible users to evaluate")
            prepare_time = tel.stopwatch("prepare")
            fit_time = tel.stopwatch("fit")
            profile_time = tel.stopwatch("profiles")
            rank_time = tel.stopwatch("rank")

            with prepare_time.measure():
                prepared = self.prepare_corpus(source, users)
            with fit_time.measure():
                fitted = self.fit_model(model, prepared)
            user_profiles = self.build_profiles(fitted, stopwatch=profile_time)
            ranked = self.rank_users(fitted, user_profiles, stopwatch=rank_time)

            result = EvaluationResult(
                model=model.name,
                configuration=model.describe(),
                source=source,
                per_user_ap=dict(ranked.per_user_ap),
                training_seconds=fit_time.elapsed + profile_time.elapsed,
                testing_seconds=rank_time.elapsed,
                phase_seconds={
                    "prepare": prepare_time.elapsed,
                    "fit": fit_time.elapsed,
                    "profiles": profile_time.elapsed,
                    "rank": rank_time.elapsed,
                },
            )
            tel.emit(
                "evaluate_done",
                model=model.name,
                source=source.value,
                users=len(users),
                map=result.map_score,
                training_seconds=result.training_seconds,
                testing_seconds=result.testing_seconds,
            )
            return result

    @staticmethod
    def _install_iteration_hook(model: RepresentationModel, tel: Telemetry) -> None:
        """Stream a topic model's per-iteration Gibbs/EM progress."""
        if not tel.enabled or not hasattr(model, "set_iteration_hook"):
            return

        def hook(progress) -> None:
            tel.count("gibbs.iterations")
            if progress.log_likelihood is not None:
                tel.gauge("gibbs.log_likelihood", progress.log_likelihood)
            if progress.rss_bytes is not None:
                # A histogram, not a gauge: its max survives the
                # worker-merge path, so --jobs runs report true peaks.
                tel.observe("gibbs.rss_bytes", progress.rss_bytes)
            tel.emit(
                "gibbs_iteration",
                model=progress.model,
                iteration=progress.iteration,
                total=progress.total,
                log_likelihood=progress.log_likelihood,
                rss_bytes=progress.rss_bytes,
            )

        model.set_iteration_hook(hook)

    @staticmethod
    def _clear_iteration_hook(model: RepresentationModel) -> None:
        if hasattr(model, "set_iteration_hook"):
            model.set_iteration_hook(None)

    # -- baselines ----------------------------------------------------------------

    def evaluate_chronological(self, user_ids: Sequence[int]) -> dict[int, float]:
        """CHR baseline: AP per user when ranking by recency."""
        result: dict[int, float] = {}
        for uid in self.eligible_users(user_ids):
            split = self.split_for(uid)
            candidates = list(split.test_set)
            order = chronological_ordering(candidates)
            relevant = split.relevant_ids
            flags = [candidates[i].tweet_id in relevant for i in order]
            result[uid] = average_precision(flags)
        return result

    def evaluate_random(
        self, user_ids: Sequence[int], iterations: int = 1000
    ) -> dict[int, float]:
        """RAN baseline: expected AP per user over random permutations."""
        result: dict[int, float] = {}
        for uid in self.eligible_users(user_ids):
            split = self.split_for(uid)
            candidates = list(split.test_set)
            relevant = split.relevant_ids
            flags = [t.tweet_id in relevant for t in candidates]
            result[uid] = random_ordering_expected_ap(
                flags, iterations=iterations, seed=self.seed
            )
        return result
