"""Bridging tweets to model inputs.

Representation models consume :class:`~repro.models.base.TextDoc` --
normalised text plus tokens. :class:`DocumentFactory` owns the conversion
policy from the paper's protocol: lowercase, tweet-aware tokenization,
repeated-letter squeezing, and removal of the corpus's 100 most frequent
tokens (fitted on *training* tweets only, so the test set never leaks
into preprocessing).

The normalised ``text`` given to character-based models is the token
stream re-joined with single spaces, i.e. the same material the
token-based models see, at character granularity.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import NotFittedError
from repro.models.base import TextDoc
from repro.text.preprocess import Preprocessor
from repro.twitter.entities import Tweet

__all__ = ["DocumentFactory"]


class DocumentFactory:
    """Converts raw tweets to :class:`TextDoc` under a fitted pipeline.

    Parameters
    ----------
    top_k_stop_words:
        How many of the most frequent training tokens to drop
        (paper: 100).
    """

    def __init__(self, top_k_stop_words: int = 100):
        self._preprocessor = Preprocessor.default(top_k_stop_words)
        self._fitted = False

    def fit(self, training_tweets: Iterable[Tweet]) -> "DocumentFactory":
        """Learn the stop-word list from training tweets."""
        self._preprocessor.fit(t.text for t in training_tweets)
        self._fitted = True
        return self

    @property
    def stop_words(self) -> frozenset[str]:
        return self._preprocessor.stop_filter.stop_words

    def to_doc(self, tweet: Tweet) -> TextDoc:
        """One tweet to a model-ready document."""
        if not self._fitted:
            raise NotFittedError("DocumentFactory.fit was never called")
        tokens = self._preprocessor.process(tweet.text)
        return TextDoc.from_tokens(tokens)

    def to_docs(self, tweets: Sequence[Tweet]) -> list[TextDoc]:
        """Batch conversion, preserving order."""
        return [self.to_doc(t) for t in tweets]
