"""The 13 representation sources of the paper.

Five atomic sources describe a user ``u``:

* **R** -- her retweets;
* **T** -- her original tweets;
* **E** -- all (re)tweets of her followees (information seeker view);
* **F** -- all (re)tweets of her followers (information producer view);
* **C** -- all (re)tweets of her reciprocal connections.

plus the eight pairwise unions the paper evaluates: TR, RE, RF, RC, TE,
TF, TC, EF. (The remaining pairs -- e.g. CF -- are redundant because
C ⊆ E ∩ F.)

The module also derives the positive/negative label of each training
tweet. A tweet is *positive* for ``u`` when she authored it or retweeted
it; tweets from E/C-based sources that she saw but did not retweet are
*negative*. Follower tweets (F) carry no negative signal -- the user
never saw them -- which is why the paper restricts Rocchio to
{C, E, TE, RE, TC, RC, EF}.
"""

from __future__ import annotations

import enum

from repro.twitter.dataset import MicroblogDataset
from repro.twitter.entities import Tweet

__all__ = [
    "RepresentationSource",
    "ATOMIC_SOURCES",
    "COMPOSITE_SOURCES",
    "ALL_SOURCES",
    "retweeted_original_ids",
]


class RepresentationSource(str, enum.Enum):
    """The five atomic sources and their eight pairwise unions."""

    R = "R"
    T = "T"
    E = "E"
    F = "F"
    C = "C"
    TR = "TR"
    RE = "RE"
    RF = "RF"
    RC = "RC"
    TE = "TE"
    TF = "TF"
    TC = "TC"
    EF = "EF"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def atoms(self) -> tuple[str, ...]:
        """The atomic sources this source unions."""
        return tuple(self.value)

    @property
    def has_negative_examples(self) -> bool:
        """True for the sources the paper pairs with Rocchio.

        These are exactly the sources containing E or C -- streams the
        user has seen and implicitly vetoed by not retweeting.
        """
        return "E" in self.value or "C" in self.value

    def tweets_for(self, dataset: MicroblogDataset, user_id: int) -> list[Tweet]:
        """The source's tweets for one user, deduplicated, in time order.

        Deduplication matters for unions: a retweet of ``u`` whose
        original came from a followee appears in both R(u) and E(u).
        """
        collectors = {
            "R": dataset.retweets_of,
            "T": dataset.tweets_of,
            "E": dataset.incoming,
            "F": dataset.followers_tweets,
            "C": dataset.reciprocal_tweets,
        }
        seen: set[int] = set()
        merged: list[Tweet] = []
        for atom in self.atoms:
            for tweet in collectors[atom](user_id):
                if tweet.tweet_id not in seen:
                    seen.add(tweet.tweet_id)
                    merged.append(tweet)
        merged.sort(key=lambda t: (t.timestamp, t.tweet_id))
        return merged

    def labels_for(
        self, dataset: MicroblogDataset, user_id: int, tweets: list[Tweet]
    ) -> list[int]:
        """Positive (1) / negative (0) labels for training tweets.

        Positive: authored or retweeted by the user (directly, or as the
        original behind one of her retweets). Negative labels exist only
        for sources with negative examples; otherwise every tweet is
        treated as positive evidence.
        """
        if not self.has_negative_examples:
            return [1] * len(tweets)
        liked = retweeted_original_ids(dataset, user_id)
        labels: list[int] = []
        for tweet in tweets:
            positive = (
                tweet.author_id == user_id
                or tweet.tweet_id in liked
                or (tweet.retweet_of is not None and tweet.retweet_of in liked)
            )
            labels.append(1 if positive else 0)
        return labels


#: The paper's five atomic sources, in its presentation order.
ATOMIC_SOURCES: tuple[RepresentationSource, ...] = (
    RepresentationSource.R,
    RepresentationSource.T,
    RepresentationSource.E,
    RepresentationSource.F,
    RepresentationSource.C,
)

#: The eight pairwise unions.
COMPOSITE_SOURCES: tuple[RepresentationSource, ...] = (
    RepresentationSource.TR,
    RepresentationSource.RE,
    RepresentationSource.RF,
    RepresentationSource.RC,
    RepresentationSource.TE,
    RepresentationSource.TF,
    RepresentationSource.TC,
    RepresentationSource.EF,
)

ALL_SOURCES: tuple[RepresentationSource, ...] = ATOMIC_SOURCES + COMPOSITE_SOURCES


def retweeted_original_ids(dataset: MicroblogDataset, user_id: int) -> frozenset[int]:
    """Ids of the original tweets the user has ever retweeted."""
    return frozenset(
        t.retweet_of for t in dataset.retweets_of(user_id) if t.retweet_of is not None
    )
