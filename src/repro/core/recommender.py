"""The ranking-based recommendation algorithm (paper Definition 2.1).

Given a user model ``UM(u)`` and a set of candidate documents, the
recommender scores every candidate with the representation model's
similarity function and returns the candidates in decreasing score. Ties
are broken deterministically by input position, which keeps evaluation
reproducible.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.models.base import Doc, RepresentationModel

__all__ = ["RankedItem", "RankingRecommender"]


@dataclass(frozen=True)
class RankedItem:
    """One entry of a recommendation list."""

    position: int  # index into the candidate sequence
    score: float


class RankingRecommender:
    """Content-based ranking recommender over one representation model.

    Usage: ``fit`` on the training corpus (corpus-level statistics),
    ``build_profile`` per user, then ``rank`` that user's candidates.
    """

    def __init__(self, model: RepresentationModel):
        self.model = model

    def fit(
        self, corpus: Sequence[Doc], user_ids: Sequence[str] | None = None
    ) -> "RankingRecommender":
        """Learn corpus-level statistics (IDF tables, topics, ...)."""
        self.model.fit(corpus, user_ids=user_ids)
        return self

    def build_profile(
        self, docs: Sequence[Doc], labels: Sequence[int] | None = None
    ) -> Any:
        """Assemble one user's model from her training documents."""
        return self.model.build_user_model(docs, labels=labels)

    def rank(self, user_model: Any, candidates: Sequence[Doc]) -> list[RankedItem]:
        """Candidates in decreasing similarity to the user model."""
        scored = [
            RankedItem(position=i, score=float(self.model.score(user_model, self.model.represent(doc))))
            for i, doc in enumerate(candidates)
        ]
        scored.sort(key=lambda item: (-item.score, item.position))
        return scored
