"""Recommendation core: sources, splits, ranking, baselines, pipeline."""

from repro.core.baselines import (
    chronological_ordering,
    random_ordering,
    random_ordering_expected_ap,
)
from repro.core.documents import DocumentFactory
from repro.core.extensions import FolloweeRecommender, HashtagRecommender, ScoredCandidate
from repro.core.pipeline import EvaluationResult, ExperimentPipeline
from repro.core.recommender import RankedItem, RankingRecommender
from repro.core.sources import (
    ALL_SOURCES,
    ATOMIC_SOURCES,
    COMPOSITE_SOURCES,
    RepresentationSource,
    retweeted_original_ids,
)
from repro.core.split import UserSplit, split_user, train_tweets
from repro.core.stages import (
    PROFILE_PROTOCOL_VERSION,
    ArtifactCache,
    FittedModel,
    PreparedCorpus,
    RankingOutcome,
    UserProfiles,
    artifact_key,
    canonical_params,
)
from repro.core.temporal import NO_DECAY, TEMPORAL_KINDS, TemporalWeighting

__all__ = [
    "ALL_SOURCES",
    "ATOMIC_SOURCES",
    "ArtifactCache",
    "COMPOSITE_SOURCES",
    "NO_DECAY",
    "PROFILE_PROTOCOL_VERSION",
    "TEMPORAL_KINDS",
    "TemporalWeighting",
    "DocumentFactory",
    "FittedModel",
    "PreparedCorpus",
    "RankingOutcome",
    "UserProfiles",
    "artifact_key",
    "canonical_params",
    "FolloweeRecommender",
    "HashtagRecommender",
    "ScoredCandidate",
    "EvaluationResult",
    "ExperimentPipeline",
    "RankedItem",
    "RankingRecommender",
    "RepresentationSource",
    "UserSplit",
    "chronological_ordering",
    "random_ordering",
    "random_ordering_expected_ap",
    "retweeted_original_ids",
    "split_user",
    "train_tweets",
]
