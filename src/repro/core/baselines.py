"""The paper's two baselines: chronological and random ordering.

* **CHR** ranks the test set from the latest tweet to the earliest --
  the default timeline of early Twitter;
* **RAN** sorts the test set in an arbitrary order; the paper averages
  1,000 random permutations per user, and so does
  :func:`random_ordering_expected_ap` via its ``iterations`` parameter
  (an exact closed form also exists: the expected AP of a random ranking
  is close to the positive class prevalence).

Both return positions into the candidate list, mirroring
:class:`~repro.core.recommender.RankingRecommender.rank`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.twitter.entities import Tweet

__all__ = ["chronological_ordering", "random_ordering", "random_ordering_expected_ap"]


def chronological_ordering(candidates: Sequence[Tweet]) -> list[int]:
    """CHR: candidate positions, most recent first."""
    order = sorted(
        range(len(candidates)),
        key=lambda i: (-candidates[i].timestamp, -candidates[i].tweet_id),
    )
    return order


def random_ordering(
    candidates: Sequence[Tweet], rng: np.random.Generator
) -> list[int]:
    """RAN: one random permutation of candidate positions."""
    return list(rng.permutation(len(candidates)))


def random_ordering_expected_ap(
    relevant_flags: Sequence[bool],
    iterations: int = 1000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of RAN's Average Precision.

    ``relevant_flags[i]`` says whether candidate ``i`` is relevant. The
    paper performs 1,000 iterations per user and reports the average.
    """
    from repro.eval.metrics import average_precision

    flags = list(relevant_flags)
    n_relevant = sum(flags)
    if n_relevant == 0 or not flags:
        return 0.0
    rng = np.random.default_rng(seed)
    total = 0.0
    indices = np.arange(len(flags))
    for _ in range(iterations):
        rng.shuffle(indices)
        total += average_precision([flags[i] for i in indices])
    return total / iterations
