"""Beyond tweet ranking: followee and hashtag recommendation.

The paper closes with "we plan to expand our comparative analysis to
other recommendation tasks for microblogging platforms, such as followees
and hashtag suggestions" (Section 7). Both tasks reuse the machinery
already built: a user model in some representation space, compared
against candidate models with the same similarity function.

* :class:`FolloweeRecommender` scores candidate *accounts*: each
  candidate is represented by the model of their posted content
  (their T ∪ R stream), ranked by similarity to the target user's
  model -- the content half of Hannon et al.'s Twittomender, one of the
  paper's references [31].
* :class:`HashtagRecommender` scores candidate *hashtags*: each hashtag
  is represented by the model of the tweets that carry it (hashtag
  pooling re-used as a profile), following Kywe et al. [40].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.documents import DocumentFactory
from repro.errors import EmptyCorpusError
from repro.models.base import RepresentationModel
from repro.twitter.dataset import MicroblogDataset
from repro.twitter.entities import Tweet

__all__ = ["ScoredCandidate", "FolloweeRecommender", "HashtagRecommender"]


@dataclass(frozen=True)
class ScoredCandidate:
    """One recommendation: a candidate id and its similarity score."""

    candidate: int | str
    score: float


class FolloweeRecommender:
    """Suggest accounts to follow by content similarity.

    Parameters
    ----------
    dataset:
        The corpus; candidate users are profiled from their outgoing
        tweets.
    model:
        Any representation model; it is fitted on the union of all
        profiled users' tweets.
    min_candidate_tweets:
        Accounts with fewer posted tweets than this are not offered
        (nothing to profile them with).
    """

    def __init__(
        self,
        dataset: MicroblogDataset,
        model: RepresentationModel,
        min_candidate_tweets: int = 5,
        top_k_stop_words: int = 100,
    ):
        self.dataset = dataset
        self.model = model
        self.min_candidate_tweets = min_candidate_tweets
        self._factory = DocumentFactory(top_k_stop_words)
        self._profiles: dict[int, object] = {}
        self._fitted = False

    def fit(self) -> "FolloweeRecommender":
        """Profile every sufficiently active account."""
        eligible: dict[int, list[Tweet]] = {}
        for user in self.dataset.users:
            outgoing = self.dataset.outgoing(user.user_id)
            if len(outgoing) >= self.min_candidate_tweets:
                eligible[user.user_id] = outgoing
        if not eligible:
            raise EmptyCorpusError(
                f"no account has >= {self.min_candidate_tweets} tweets"
            )
        all_tweets = [t for tweets in eligible.values() for t in tweets]
        self._factory.fit(all_tweets)
        corpus = [self._factory.to_doc(t) for t in all_tweets]
        authors = [str(t.author_id) for t in all_tweets]
        self.model.fit(corpus, user_ids=authors)
        self._profiles = {
            uid: self.model.build_user_model(self._factory.to_docs(tweets))
            for uid, tweets in eligible.items()
        }
        self._fitted = True
        return self

    def recommend(self, user_id: int, k: int = 10) -> list[ScoredCandidate]:
        """Top-``k`` accounts the user does not already follow.

        The user herself and her existing followees are excluded;
        candidates are ranked by the similarity of their content profile
        to hers.
        """
        if not self._fitted:
            self.fit()
        if user_id not in self._profiles:
            raise EmptyCorpusError(
                f"user {user_id} has too few tweets to be profiled"
            )
        user_model = self._profiles[user_id]
        already = self.dataset.graph.followees(user_id) | {user_id}
        scored = [
            ScoredCandidate(candidate=uid, score=float(self.model.score(user_model, profile)))
            for uid, profile in self._profiles.items()
            if uid not in already
        ]
        scored.sort(key=lambda c: (-c.score, c.candidate))
        return scored[:k]


class HashtagRecommender:
    """Suggest hashtags by content similarity.

    Every hashtag is profiled from the tweets that carry it; a user (or
    a draft tweet) is matched against those profiles.
    """

    def __init__(
        self,
        dataset: MicroblogDataset,
        model: RepresentationModel,
        min_tag_count: int = 3,
        top_k_stop_words: int = 100,
    ):
        self.dataset = dataset
        self.model = model
        self.min_tag_count = min_tag_count
        self._factory = DocumentFactory(top_k_stop_words)
        self._profiles: dict[str, object] = {}
        self._fitted = False

    def _tweets_by_tag(self) -> dict[str, list[Tweet]]:
        by_tag: dict[str, list[Tweet]] = {}
        for tweet in self.dataset.tweets:
            if tweet.is_retweet:
                continue  # retweets would double-count the original text
            for token in tweet.text.lower().split():
                if token.startswith("#"):
                    by_tag.setdefault(token, []).append(tweet)
        return {
            tag: tweets
            for tag, tweets in by_tag.items()
            if len(tweets) >= self.min_tag_count
        }

    def fit(self) -> "HashtagRecommender":
        """Profile every sufficiently frequent hashtag."""
        by_tag = self._tweets_by_tag()
        if not by_tag:
            raise EmptyCorpusError(
                f"no hashtag occurs >= {self.min_tag_count} times"
            )
        all_tweets = [t for tweets in by_tag.values() for t in tweets]
        self._factory.fit(all_tweets)
        corpus = [self._factory.to_doc(t) for t in all_tweets]
        authors = [str(t.author_id) for t in all_tweets]
        self.model.fit(corpus, user_ids=authors)
        self._profiles = {
            tag: self.model.build_user_model(self._factory.to_docs(tweets))
            for tag, tweets in by_tag.items()
        }
        self._fitted = True
        return self

    @property
    def known_tags(self) -> tuple[str, ...]:
        return tuple(sorted(self._profiles))

    def recommend_for_text(self, text: str, k: int = 5) -> list[ScoredCandidate]:
        """Top-``k`` hashtags for a draft tweet's text."""
        if not self._fitted:
            self.fit()
        doc = self._factory.to_doc(
            Tweet(tweet_id=-1, author_id=-1, text=text, timestamp=0)
        )
        target = self.model.represent(doc)
        scored = [
            ScoredCandidate(candidate=tag, score=float(self.model.score(profile, target)))
            for tag, profile in self._profiles.items()
        ]
        scored.sort(key=lambda c: (-c.score, c.candidate))
        return scored[:k]

    def recommend_for_user(self, user_id: int, k: int = 5) -> list[ScoredCandidate]:
        """Top-``k`` hashtags for a user, profiled from her own posts."""
        if not self._fitted:
            self.fit()
        outgoing = self.dataset.outgoing(user_id)
        if not outgoing:
            raise EmptyCorpusError(f"user {user_id} has no tweets to profile")
        user_model = self.model.build_user_model(self._factory.to_docs(outgoing))
        scored = [
            ScoredCandidate(candidate=tag, score=float(self.model.score(user_model, profile)))
            for tag, profile in self._profiles.items()
        ]
        scored.sort(key=lambda c: (-c.score, c.candidate))
        return scored[:k]
