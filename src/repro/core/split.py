"""Per-user train/test splitting, following the paper's protocol.

Section 4: "we retain a reasonable proportion between the two classes for
each user by placing the 20% most recent of her retweets in the test set.
The earliest tweet in this sample splits each user's timeline in two
phases: the training and the testing phase. [...] for each positive tweet
in the test set, we randomly added four negative ones from the testing
phase. Accordingly, the train set of every representation source is
restricted to all the tweets that fall in the training phase."

Positives are the *original incoming tweets* behind the user's most
recent retweets (the items she was shown and chose to repost); negatives
are sampled from the incoming tweets of the testing phase that she never
retweeted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sources import RepresentationSource, retweeted_original_ids
from repro.errors import DataGenerationError, ValidationError
from repro.twitter.dataset import MicroblogDataset
from repro.twitter.entities import Tweet

__all__ = ["UserSplit", "split_user", "train_tweets"]


@dataclass(frozen=True)
class UserSplit:
    """One user's evaluation data.

    Attributes
    ----------
    user_id:
        The user under evaluation.
    cutoff:
        First timestamp of the testing phase; training tweets must be
        strictly earlier.
    positives:
        Incoming tweets the user retweeted during the testing phase.
    negatives:
        Incoming tweets from the testing phase she did not retweet
        (four per positive, following the paper).
    test_set:
        Positives and negatives in a deterministic shuffled order. The
        order matters: rankers break score ties by input position, so a
        class-sorted test set would hand every all-ties ranker (e.g. a
        model whose similarities are all zero) a perfect or zero AP
        instead of a random-level one.
    """

    user_id: int
    cutoff: int
    positives: tuple[Tweet, ...]
    negatives: tuple[Tweet, ...]
    test_set: tuple[Tweet, ...]

    @property
    def relevant_ids(self) -> frozenset[int]:
        return frozenset(t.tweet_id for t in self.positives)


def split_user(
    dataset: MicroblogDataset,
    user_id: int,
    test_fraction: float = 0.2,
    negatives_per_positive: int = 4,
    seed: int = 0,
) -> UserSplit:
    """Build the train/test split for one user.

    Raises
    ------
    DataGenerationError
        If the user has no retweets whose original is in her incoming
        stream (nothing to test on).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if negatives_per_positive < 0:
        raise ValidationError(
            f"negatives_per_positive must be >= 0, got {negatives_per_positive}"
        )

    retweets = dataset.retweets_of(user_id)
    # Only retweets whose original we can resolve can become positives.
    resolvable = [t for t in retweets if t.retweet_of is not None]
    if not resolvable:
        raise DataGenerationError(f"user {user_id} has no resolvable retweets")

    resolvable.sort(key=lambda t: (t.timestamp, t.tweet_id))
    n_test = max(1, int(round(len(resolvable) * test_fraction)))
    test_retweets = resolvable[-n_test:]
    cutoff = min(t.timestamp for t in test_retweets)

    positive_ids = {t.retweet_of for t in test_retweets}
    incoming = dataset.incoming(user_id)
    incoming_by_id = {t.tweet_id: t for t in incoming}
    positives = [incoming_by_id[i] for i in sorted(positive_ids) if i in incoming_by_id]
    if not positives:
        raise DataGenerationError(
            f"user {user_id}: none of the test retweets' originals are in E(u)"
        )

    ever_retweeted = retweeted_original_ids(dataset, user_id)
    # Prefer tweets the user demonstrably saw and rejected; a dataset
    # without read-tracking falls back to the whole incoming stream.
    seen = dataset.seen.get(user_id)
    candidates = [
        t
        for t in incoming
        if t.timestamp >= cutoff
        and t.tweet_id not in ever_retweeted
        and not t.is_retweet  # rank fresh content, not followees' reposts
        and t.author_id != user_id
        and (seen is None or t.tweet_id in seen)
    ]
    rng = np.random.default_rng(seed + user_id)
    n_negatives = min(len(candidates), negatives_per_positive * len(positives))
    if n_negatives:
        picks = rng.choice(len(candidates), size=n_negatives, replace=False)
        negatives = [candidates[i] for i in sorted(picks)]
    else:
        negatives = []

    test_set = positives + negatives
    order = rng.permutation(len(test_set))
    return UserSplit(
        user_id=user_id,
        cutoff=cutoff,
        positives=tuple(positives),
        negatives=tuple(negatives),
        test_set=tuple(test_set[i] for i in order),
    )


def train_tweets(
    dataset: MicroblogDataset,
    user_id: int,
    source: RepresentationSource,
    split: UserSplit,
) -> list[Tweet]:
    """The source's tweets restricted to the user's training phase."""
    return [t for t in source.tweets_for(dataset, user_id) if t.timestamp < split.cutoff]
