"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   simulate a corpus and print its statistics (Table 2 style)
``evaluate``   evaluate one model on one source and print MAP vs baselines
``sweep``      run a configuration sweep and save it as JSON
``replay``     stream timelines through incremental profile updates,
               checking parity against batch rebuilds
``monitor``    live progress view of a running sweep (events file or journal)
``export``     convert saved telemetry: chrome-trace JSON, Prometheus
               metrics, flamegraph formats (collapsed stacks, speedscope)
``bench``      run the calibrated resource suite / compare two baselines
``profile``    statistical stack profiling: wrap sweep/bench/replay/evaluate
               under a sampler, or diff two saved profiles
``report``     render a saved sweep as the paper's figures/tables
``suggest``    followee / hashtag recommendations (the extension tasks)
``lint``       run reprolint, the repo's AST-based invariant linter

``evaluate`` and ``sweep`` accept observability flags: ``--trace-out
trace.json`` saves a span trace (manifest + per-phase timing tree +
metrics), ``--log-json [PATH]`` streams structured JSON-lines events
(to stderr when no path is given), and ``--profile-resources`` runs a
background RSS/CPU sampler so every span also records its memory cost.
A saved trace renders as a per-phase tree with ``report --artifact
timing-breakdown --trace trace.json`` (or ``resource-breakdown`` for
the memory columns).

A running sweep narrates itself: executors emit heartbeat events (cell
started/finished with worker id and attempt, EWMA cell rate, ETA) into
the event stream and, when journaling, into the journal. ``repro
monitor PATH`` renders that state -- cells done/total, per-worker
occupancy, quarantine count, ETA -- either once (``--snapshot``, with
``--json`` for machines) or as a refreshing view. ``repro export trace
--trace trace.json`` converts a saved span trace to Chrome trace-event
JSON (open in https://ui.perfetto.dev), ``repro export metrics`` renders
its metrics in Prometheus text exposition format, and ``repro report
--artifact critical-path --trace trace.json`` prints the serial
critical path, per-phase self-times, top straggler cells and parallel
efficiency. ``sweep --progress`` drives a minimal inline progress line;
add ``--quiet`` to drop the per-cell lines and keep only that.

``sweep`` supervises its cells: ``--cell-timeout`` bounds each attempt's
wall clock (with ``--jobs``), ``--max-attempts``/``--retry-backoff``
shape the retry policy, and cells that exhaust their attempts are
*quarantined* -- the sweep completes, reports them, exits 3, and a
``--resume`` run retries exactly those cells. ``--inject-faults
plan.json`` (or the ``REPRO_FAULT_PLAN`` variable) arms deterministic
fault injection for testing those paths; see ``repro.faults``.

``bench run`` executes the calibrated suite (one bag, one graph, one
topic model across three sources) with warmup and repeated trials and
writes a timestamp-free ``BENCH_<label>.json`` baseline; ``bench
compare OLD NEW [--gate]`` flags noise-adjusted regressions between two
baselines.

Examples
--------
::

    python -m repro generate --users 40 --ticks 150 --seed 7
    python -m repro evaluate --model TN --source R --users 40 --trace-out trace.json
    python -m repro sweep --out sweep.json --sources R T --fast --log-json
    python -m repro sweep --out sweep.json --jobs 4 --journal --progress --quiet
    python -m repro sweep --out sweep.json --fast --temporal none half-life:3600
    python -m repro replay --users 16 --ticks 40 --group-size 3 --min-retweets 3
    python -m repro replay --models TN TNG --jobs 2 --json replay.json
    python -m repro monitor sweep.journal.jsonl --snapshot
    python -m repro export trace --trace trace.json --out trace.chrome.json
    python -m repro export metrics --trace trace.json
    python -m repro report --artifact critical-path --trace trace.json
    python -m repro bench run --label main --scale quick --trials 5
    python -m repro bench compare results/BENCH_main.json results/BENCH_pr.json --gate
    python -m repro profile -- sweep --out sweep.json --fast --jobs 2
    python -m repro profile --hz 251 -- bench run --scale tiny --label pr
    python -m repro profile diff before.json after.json
    python -m repro export profile --profile profile.json --format speedscope
    python -m repro report --artifact hotspots --profile profile.json --top 10
    python -m repro report --sweep sweep.json --artifact figure --group "All Users"
    python -m repro report --artifact resource-breakdown --trace trace.json
    python -m repro suggest --kind hashtag --text "word1 word2"
    python -m repro lint src benchmarks tests --format json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Iterator, Sequence
from contextlib import ExitStack, contextmanager
from functools import lru_cache
from pathlib import Path

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import ALL_SOURCES, RepresentationSource
from repro.core.temporal import TemporalWeighting
from repro.errors import ConfigurationError, PersistenceError
from repro.eval.metrics import map_over_users
from repro.experiments.bench import (
    BENCH_MODELS,
    SUITE_SCALES,
    run_bench_suite,
    run_incremental_suite,
)
from repro.experiments.configs import MODEL_NAMES, ConfigGrid, ModelConfig, cross_temporal
from repro.experiments.executors import (
    GridSpec,
    PipelineSpec,
    ProcessCellExecutor,
    SerialCellExecutor,
    SweepSpec,
)
from repro.experiments.persistence import SweepJournal, load_sweep, save_sweep
from repro.experiments.replay import ReplaySpec, run_replay
from repro.experiments.supervision import RetryPolicy, SupervisionPolicy
from repro.faults import FaultPlan
from repro.experiments.report import (
    format_figure7,
    format_figure_map,
    format_table2,
    format_table6,
    format_table7,
)
from repro.experiments.runner import SweepRunner
from repro.experiments.standard import bench_grid, fast_grid
from repro.obs import (
    DEFAULT_HZ,
    JsonLinesSink,
    ResourceSampler,
    RunManifest,
    StackSampler,
    Telemetry,
    active_sampler,
    baseline_path,
    collapsed_stacks,
    compare_baselines,
    format_baseline,
    format_chrome_trace,
    format_comparison,
    format_critical_path,
    format_hotspots,
    format_profile_diff,
    format_resource_breakdown,
    format_snapshot,
    format_timing_breakdown,
    load_baseline,
    load_profile,
    load_progress,
    load_trace,
    prometheus_exposition,
    speedscope_document,
)
from repro.twitter.dataset import DatasetConfig, generate_dataset, select_user_groups
from repro.twitter.entities import UserType
from repro.twitter.stats import group_statistics

__all__ = ["main", "build_parser"]


def _make_dataset(args: argparse.Namespace):
    dataset = generate_dataset(
        DatasetConfig(n_users=args.users, n_ticks=args.ticks, seed=args.seed)
    )
    groups = select_user_groups(
        dataset, group_size=args.group_size, min_retweets=args.min_retweets
    )
    return dataset, groups


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=40, help="simulated users")
    parser.add_argument("--ticks", type=int, default=150, help="simulation ticks")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    parser.add_argument("--group-size", type=int, default=8, help="users per group")
    parser.add_argument(
        "--min-retweets", type=int, default=8,
        help="eligibility threshold for evaluated users",
    )


@lru_cache(maxsize=1)
def _fast_configs() -> dict[str, ModelConfig]:
    """One fast_grid scan, indexed by model name (built once per process)."""
    return {config.model: config for config in fast_grid(seed=0)}


def _build_model(name: str):
    """The fast_grid representative configuration of a model."""
    config = _fast_configs().get(name)
    if config is None:
        raise SystemExit(f"unknown model {name!r}; pick from {', '.join(MODEL_NAMES)}")
    return config.build()


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="save a span trace (manifest + timing tree + metrics) as JSON",
    )
    parser.add_argument(
        "--log-json", metavar="PATH", nargs="?", const="-", default=None,
        help="stream structured JSON-lines events (to stderr without PATH)",
    )
    parser.add_argument(
        "--profile-resources", action="store_true",
        help="sample RSS/CPU per span so the trace carries memory columns "
             "(render with report --artifact resource-breakdown)",
    )


@contextmanager
def _telemetry_scope(
    args: argparse.Namespace, command: str, models: Sequence[str]
) -> Iterator[Telemetry | None]:
    """Telemetry wired from the observability flags, for one command run.

    Yields None when no flag asked for telemetry. Otherwise the scope
    owns the whole lifecycle: the resource sampler (from
    ``--profile-resources``) starts before and stops after the command
    body, the manifest's wall clock is stamped, the trace is saved and
    the JSON-lines sink is closed -- also on error, so an interrupted
    run still leaves a readable partial trace.

    An active :class:`StackSampler` (the ``repro profile`` wrapper)
    also forces telemetry on: the profiler needs open spans for
    attribution, and worker profile payloads only flow through
    :meth:`Telemetry.absorb`.
    """
    if not (
        args.trace_out
        or args.log_json
        or args.profile_resources
        or active_sampler() is not None
    ):
        yield None
        return
    with ExitStack() as stack:
        sampler = (
            stack.enter_context(ResourceSampler()) if args.profile_resources else None
        )
        manifest = RunManifest.create(
            seed=args.seed,
            dataset={
                "n_users": args.users,
                "n_ticks": args.ticks,
                "group_size": args.group_size,
                "min_retweets": args.min_retweets,
            },
            models=list(models),
            command=command,
        )
        telemetry = Telemetry(manifest=manifest, resources=sampler)
        if args.log_json:
            sink = JsonLinesSink(args.log_json)
            stack.callback(sink.close)
            telemetry.events.add_sink(sink)
        try:
            yield telemetry
        finally:
            manifest.finish()
            if args.trace_out:
                path = telemetry.save_trace(args.trace_out)
                print(f"trace written to {path}")


def cmd_generate(args: argparse.Namespace) -> int:
    dataset, groups = _make_dataset(args)
    print(dataset)
    print()
    print(format_table2(group_statistics(dataset, groups)))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    with _telemetry_scope(args, "evaluate", [args.model]) as telemetry:
        dataset, groups = _make_dataset(args)
        pipeline = ExperimentPipeline(
            dataset, seed=args.seed, max_train_docs_per_user=args.max_train_docs,
            telemetry=telemetry,
        )
        users = pipeline.eligible_users(groups[UserType.ALL])
        model = _build_model(args.model)
        source = RepresentationSource(args.source)
        result = pipeline.evaluate(model, source, users)
        ran = map_over_users(pipeline.evaluate_random(users, iterations=200))
        chrono = map_over_users(pipeline.evaluate_chronological(users))
        print(f"model {args.model} on source {source.value} over {len(users)} users")
        print(f"  MAP  = {result.map_score:.3f}")
        print(f"  RAN  = {ran:.3f}")
        print(f"  CHR  = {chrono:.3f}")
        print(f"  TTime = {result.training_seconds:.2f}s  ETime = {result.testing_seconds:.3f}s")
    return 0


def _journal_path(args: argparse.Namespace) -> Path | None:
    """Resolve the journal path from ``--journal`` / ``--resume``.

    ``--journal`` without a PATH (and plain ``--resume``) derive it from
    the output file, so ``--out sweep.json`` journals to
    ``sweep.journal.jsonl``.
    """
    if args.journal is not None:
        return Path(args.journal) if args.journal else Path(args.out).with_suffix(
            ".journal.jsonl"
        )
    if args.resume:
        return Path(args.out).with_suffix(".journal.jsonl")
    return None


def _temporal_axis(specs: Sequence[str] | None) -> tuple[TemporalWeighting, ...]:
    """Parse ``--temporal`` specs, turning config errors into usage errors."""
    if not specs:
        return ()
    try:
        return tuple(TemporalWeighting.parse(spec) for spec in specs)
    except ConfigurationError as error:
        raise SystemExit(f"--temporal: {error}") from error


def cmd_sweep(args: argparse.Namespace) -> int:
    temporal_axis = _temporal_axis(args.temporal)
    if args.fast:
        grid = bench_grid(seed=args.seed, temporal_axis=temporal_axis)
        configs = cross_temporal(fast_grid(seed=args.seed), temporal_axis)
    else:
        grid = ConfigGrid(
            topic_scale=args.topic_scale,
            iteration_scale=args.iteration_scale,
            seed=args.seed,
            temporal_axis=temporal_axis,
        )
        configs = list(grid.iter_all())
    models = sorted({c.model for c in configs})
    with _telemetry_scope(args, "sweep", models) as telemetry:
        # Sweep JSON always embeds a manifest, even without tracing enabled.
        manifest = (
            telemetry.manifest
            if telemetry is not None
            else RunManifest.create(
                seed=args.seed,
                dataset={
                    "n_users": args.users,
                    "n_ticks": args.ticks,
                    "group_size": args.group_size,
                    "min_retweets": args.min_retweets,
                },
                models=models,
                command="sweep",
            )
        )
        dataset, groups = _make_dataset(args)
        pipeline = ExperimentPipeline(
            dataset, seed=args.seed, max_train_docs_per_user=args.max_train_docs,
            telemetry=telemetry,
        )
        runner = SweepRunner(pipeline, groups, telemetry=telemetry)
        sources = [RepresentationSource(s) for s in args.sources]
        policy = SupervisionPolicy(
            timeout_seconds=args.cell_timeout,
            retry=RetryPolicy(
                max_attempts=args.max_attempts,
                backoff_seconds=args.retry_backoff,
                seed=args.seed,
            ),
        )
        # --inject-faults beats the ambient REPRO_FAULT_PLAN variable.
        fault_plan = (
            FaultPlan.parse(args.inject_faults)
            if args.inject_faults
            else FaultPlan.from_env()
        )
        if args.jobs > 1:
            spec = SweepSpec(
                pipeline=PipelineSpec(
                    dataset=DatasetConfig(
                        n_users=args.users, n_ticks=args.ticks, seed=args.seed
                    ),
                    seed=args.seed,
                    max_train_docs_per_user=args.max_train_docs,
                ),
                grid=GridSpec.from_grid(grid),
            )
            executor = ProcessCellExecutor(
                spec, jobs=args.jobs, policy=policy, fault_plan=fault_plan
            )
        else:
            executor = SerialCellExecutor(
                pipeline, policy=policy, fault_plan=fault_plan
            )
        journal_path = _journal_path(args)
        journal = (
            SweepJournal(journal_path, resume=args.resume) if journal_path else None
        )
        if journal is not None and journal.restored:
            print(f"resuming: {journal.restored} cells restored from {journal.path}")
            quarantined = journal.quarantined()
            if quarantined:
                print(f"retrying {len(quarantined)} quarantined cells")
        try:
            result = runner.run(
                configs, sources,
                progress=args.progress and not args.quiet,
                progress_line=args.progress,
                executor=executor, journal=journal,
            )
        except KeyboardInterrupt:
            if journal is not None:
                journal.close()
                print(
                    f"\ninterrupted; {len(journal)} completed cells journaled to "
                    f"{journal.path} -- rerun with --resume to continue"
                )
            else:
                print("\ninterrupted (no journal; rerun with --journal to make "
                      "sweeps resumable)")
            return 130
        if journal is not None:
            journal.close()
        manifest.finish()
        path = save_sweep(result, args.out, manifest=manifest)
        print(f"{len(result.rows)} rows saved to {path}")
        if result.failures:
            print(
                f"{len(result.failures)}/{result.cell_count()} cells quarantined:",
                file=sys.stderr,
            )
            for failed in result.failures:
                print(
                    f"  {failed.model} on {failed.source.value}: "
                    f"{failed.failure.kind} ({failed.failure.error}) after "
                    f"{failed.failure.attempts} attempt(s)",
                    file=sys.stderr,
                )
            print(
                "rerun with --resume to retry quarantined cells", file=sys.stderr
            )
            return 3
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if not path.exists():
        print(f"error: {path} does not exist", file=sys.stderr)
        return 2
    if args.snapshot:
        snapshot = load_progress(path)
        print(
            json.dumps(snapshot, indent=1, sort_keys=True)
            if args.json
            else format_snapshot(snapshot)
        )
        return 0
    # Refreshing view: re-read the (still growing) file each interval
    # until its stream says the sweep finished. All timing state comes
    # from the records' own timestamps; this loop only paces redraws.
    try:
        while True:
            snapshot = load_progress(path)
            sys.stdout.write("\x1b[2J\x1b[H" + format_snapshot(snapshot) + "\n")
            sys.stdout.flush()
            if snapshot.get("finished"):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 130


def _emit_rendered(rendered: str, out: str | None) -> None:
    if out:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + ("" if rendered.endswith("\n") else "\n"))
        print(f"written to {path}")
    else:
        print(rendered)


def cmd_export(args: argparse.Namespace) -> int:
    try:
        trace = load_trace(args.trace)
    except (PersistenceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.export_command == "trace":
        # --format currently admits only chrome-trace; the flag exists so
        # more formats can land without breaking invocations.
        rendered = format_chrome_trace(trace)
    else:
        rendered = prometheus_exposition(
            trace.get("metrics", {}), prefix=args.prefix
        )
    _emit_rendered(rendered, args.out)
    return 0


def cmd_export_profile(args: argparse.Namespace) -> int:
    try:
        profile = load_profile(args.profile)
    except (PersistenceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "speedscope":
        rendered = json.dumps(
            speedscope_document(profile, name=Path(args.profile).name),
            indent=1,
            sort_keys=True,
        )
    else:
        rendered = collapsed_stacks(profile)
    _emit_rendered(rendered, args.out)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        raise SystemExit(
            "profile: give a command to wrap after --, e.g. "
            "'repro profile -- sweep --out sweep.json --fast', or "
            "'repro profile diff BEFORE.json AFTER.json'"
        )
    if rest[0] == "diff":
        if len(rest) != 3:
            raise SystemExit("usage: repro profile diff BEFORE.json AFTER.json")
        try:
            before = load_profile(rest[1])
            after = load_profile(rest[2])
        except (PersistenceError, OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(format_profile_diff(before, after, top=args.top))
        return 0
    if rest[0] not in ("sweep", "bench", "replay", "evaluate"):
        raise SystemExit(
            f"profile: cannot wrap {rest[0]!r}; profileable commands: "
            "sweep, bench, replay, evaluate (or the 'diff' subcommand)"
        )
    with StackSampler(hz=args.hz) as sampler:
        code = main(rest)
    profile = sampler.profile
    path = profile.save(args.out)
    print(
        f"profile written to {path} ({profile.samples} samples @ "
        f"{profile.hz:g} Hz, sampler overhead "
        f"{100.0 * profile.overhead_ratio:.2f}%)"
    )
    print()
    print(format_hotspots(profile.to_dict(), top=args.top))
    return code


def cmd_report(args: argparse.Namespace) -> int:
    if args.artifact == "hotspots":
        source = args.profile or args.trace
        if not source:
            raise SystemExit(
                "--profile (or --trace with an embedded profile) is required "
                "for the hotspots artifact"
            )
        try:
            profile = load_profile(source)
        except (PersistenceError, OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(format_hotspots(profile, top=args.top))
        return 0
    if args.artifact in ("timing-breakdown", "resource-breakdown", "critical-path"):
        if not args.trace:
            raise SystemExit(f"--trace is required for the {args.artifact} artifact")
        trace = load_trace(args.trace)
        if args.artifact == "timing-breakdown":
            print(format_timing_breakdown(trace))
        elif args.artifact == "critical-path":
            print(format_critical_path(trace, top=args.top))
        else:
            print(format_resource_breakdown(trace))
        return 0
    if not args.sweep:
        raise SystemExit(f"--sweep is required for the {args.artifact} artifact")
    result = load_sweep(args.sweep)
    sources = (
        [RepresentationSource(s) for s in args.sources]
        if args.sources
        else sorted({row.source for row in result.rows}, key=lambda s: s.value)
    )
    group = UserType(args.group)
    if args.artifact == "figure":
        print(format_figure_map(result, group, sources))
    elif args.artifact == "table6":
        groups = sorted({row.group for row in result.rows}, key=lambda g: g.value)
        print(format_table6(result, sources, groups))
    elif args.artifact == "table7":
        print(format_table7(result, sources))
    else:
        print(format_figure7(result))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    models = tuple(args.models)
    with _telemetry_scope(args, "replay", list(models)) as telemetry:
        _dataset, groups = _make_dataset(args)
        spec = ReplaySpec(
            pipeline=PipelineSpec(
                dataset=DatasetConfig(
                    n_users=args.users, n_ticks=args.ticks, seed=args.seed
                ),
                seed=args.seed,
                max_train_docs_per_user=args.max_train_docs,
            ),
            grid=GridSpec.from_grid(bench_grid(seed=args.seed)),
            source=args.source,
            users=tuple(sorted(groups[UserType.ALL])),
            models=models,
            chunk_size=args.chunk_size,
            deterministic_topics=not args.stochastic_topics,
        )
        results = run_replay(spec, jobs=args.jobs, telemetry=telemetry)
    passed = True
    for replay in results:
        parity = replay.parity_ok(args.tolerance)
        passed = passed and parity
        status = "exact" if replay.exact else f"max_delta={replay.max_delta:.3e}"
        verdict = "" if parity else "  PARITY FAIL"
        print(
            f"{replay.model} on {replay.source}: {len(replay.users)} users, "
            f"{sum(u.updates for u in replay.users)} updates, {status}, "
            f"update={replay.mean_update_seconds * 1e3:.3f}ms "
            f"rebuild={replay.mean_full_rebuild_seconds * 1e3:.3f}ms "
            f"speedup={replay.speedup:.1f}x{verdict}"
        )
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "source": args.source,
            "chunk_size": args.chunk_size,
            "tolerance": args.tolerance,
            "jobs": args.jobs,
            "models": [replay.to_dict() for replay in results],
        }
        out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"replay results written to {out}")
    if not passed:
        print(
            f"replay parity check failed (tolerance {args.tolerance:g})",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    if args.suite == "incremental":
        baseline = run_incremental_suite(
            scale=args.scale,
            trials=args.trials,
            warmup=args.warmup,
            seed=args.seed,
            label=args.label,
            source=RepresentationSource(args.source),
            chunk_size=args.chunk_size,
        )
    else:
        baseline = run_bench_suite(
            scale=args.scale,
            trials=args.trials,
            warmup=args.warmup,
            jobs=args.jobs,
            seed=args.seed,
            label=args.label,
            trace_allocations=args.trace_allocations,
        )
    path = baseline.save(baseline_path(args.out_dir, args.label))
    print(format_baseline(baseline))
    print(f"baseline written to {path}")
    profiling = active_sampler()
    if profiling is not None:
        # Running under `repro profile`: drop a profile companion next
        # to the baseline, so BENCH_<label>.json always has a matching
        # PROFILE_<label>.json explaining where its time went.
        companion = Path(path).with_name(f"PROFILE_{args.label}.json")
        companion.write_text(
            json.dumps(profiling.snapshot(), indent=1, sort_keys=True) + "\n"
        )
        print(f"profile companion written to {companion}")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    try:
        old = load_baseline(args.old)
        new = load_baseline(args.new)
        comparison = compare_baselines(
            old, new, rel_threshold=args.rel_threshold, iqr_factor=args.iqr_factor
        )
    except PersistenceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_comparison(comparison, fmt=args.format))
    if args.gate and comparison.regressions:
        return 1
    return 0


def cmd_suggest(args: argparse.Namespace) -> int:
    from repro.core.extensions import FolloweeRecommender, HashtagRecommender
    from repro.models.bag import TokenNGramModel

    dataset, _ = _make_dataset(args)
    model = TokenNGramModel(n=1, weighting="TF")
    if args.kind == "followee":
        if args.user is None:
            raise SystemExit("--user is required for followee suggestions")
        recommender = FolloweeRecommender(dataset, model).fit()
        suggestions = recommender.recommend(args.user, k=args.k)
        print(f"accounts for user {args.user}:")
        for item in suggestions:
            print(f"  @user{item.candidate}  score={item.score:.3f}")
    else:
        recommender = HashtagRecommender(dataset, model).fit()
        if args.text:
            suggestions = recommender.recommend_for_text(args.text, k=args.k)
            print(f"hashtags for {args.text!r}:")
        elif args.user is not None:
            suggestions = recommender.recommend_for_user(args.user, k=args.k)
            print(f"hashtags for user {args.user}:")
        else:
            raise SystemExit("--text or --user is required for hashtag suggestions")
        for item in suggestions:
            print(f"  {item.candidate}  score={item.score:.3f}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the linter is stdlib-only and must stay importable
    # (and fast) even where the numeric stack is broken.
    from pathlib import Path

    from repro.analysis import default_program_rules, default_rules, lint_paths
    from repro.analysis.baseline import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.analysis.graph import analysis_to_dot, analysis_to_json
    from repro.analysis.reporting import format_json, format_rules, format_text
    from repro.errors import ConfigurationError

    rules = default_rules()
    program_rules = default_program_rules()
    if args.list_rules:
        print(format_rules([*rules, *program_rules]))
        return 0

    known = {rule.id for rule in rules} | {rule.id for rule in program_rules}
    selected = set(args.select or ())
    ignored = {
        rule_id
        for chunk in (args.ignore or ())
        for rule_id in chunk.split(",")
        if rule_id
    }
    # RPR900 (stale pragma) is synthesized by the engine rather than
    # registered, so it cannot be selected -- but it can be ignored,
    # e.g. when linting one file of a tree whose pragmas are only used
    # at whole-program scope.
    for label, requested, legal in (
        ("--select", selected, known),
        ("--ignore", ignored, known | {"RPR900"}),
    ):
        unknown = sorted(requested - legal)
        if unknown:
            raise SystemExit(
                f"unknown rule id(s) in {label}: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(legal))}"
            )
    conflict = sorted(selected & ignored)
    if conflict:
        raise ConfigurationError(
            f"rule(s) both selected and ignored: {', '.join(conflict)} -- "
            "--select and --ignore must not overlap"
        )
    if selected:
        rules = [rule for rule in rules if rule.id in selected]
        program_rules = [rule for rule in program_rules if rule.id in selected]
    if ignored:
        rules = [rule for rule in rules if rule.id not in ignored]
        program_rules = [
            rule for rule in program_rules if rule.id not in ignored
        ]

    if args.update_baseline and not args.baseline:
        raise ConfigurationError("--update-baseline requires --baseline PATH")

    report = lint_paths(
        args.paths,
        rules=rules,
        program_rules=program_rules,
        cache_path=args.cache,
    )
    if "RPR900" in ignored:
        report.violations = [
            violation
            for violation in report.violations
            if violation.rule != "RPR900"
        ]

    if args.graph and report.analysis is not None:
        graph_path = Path(args.graph)
        if graph_path.suffix == ".dot":
            graph_path.write_text(
                analysis_to_dot(report.analysis), encoding="utf-8"
            )
        else:
            import json as _json

            graph_path.write_text(
                _json.dumps(analysis_to_json(report.analysis), indent=2),
                encoding="utf-8",
            )

    if args.baseline:
        if args.update_baseline:
            count = write_baseline(args.baseline, report.violations)
            print(
                f"baseline updated: {count} finding(s) written to "
                f"{args.baseline}"
            )
            return 2 if report.errors else 0
        report.violations, report.baselined = apply_baseline(
            report.violations, load_baseline(args.baseline)
        )

    print(format_json(report) if args.format == "json" else format_text(report))
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-based personalized microblog recommendation (EDBT 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = sub.add_parser("generate", help="simulate a corpus, print statistics")
    _add_dataset_arguments(p_generate)
    p_generate.set_defaults(func=cmd_generate)

    p_eval = sub.add_parser("evaluate", help="evaluate one model on one source")
    _add_dataset_arguments(p_eval)
    p_eval.add_argument("--model", required=True, choices=MODEL_NAMES)
    p_eval.add_argument("--source", default="R",
                        choices=[s.value for s in ALL_SOURCES])
    p_eval.add_argument("--max-train-docs", type=int, default=100)
    _add_telemetry_arguments(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_sweep = sub.add_parser("sweep", help="run a sweep, save to JSON")
    _add_dataset_arguments(p_sweep)
    p_sweep.add_argument("--out", required=True, help="output JSON path")
    p_sweep.add_argument("--sources", nargs="+", default=["R"],
                         choices=[s.value for s in ALL_SOURCES])
    p_sweep.add_argument("--fast", action="store_true",
                         help="one configuration per model instead of the grid")
    p_sweep.add_argument("--topic-scale", type=float, default=0.1)
    p_sweep.add_argument("--iteration-scale", type=float, default=0.02)
    p_sweep.add_argument("--max-train-docs", type=int, default=100)
    p_sweep.add_argument(
        "--progress", action="store_true",
        help="show a minimal self-updating progress line (cells done/total, "
             "ETA, quarantines) plus per-cell result lines",
    )
    p_sweep.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-cell result lines; with --progress only the "
             "inline progress line remains",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluate (config, source) cells on N worker processes; "
             "rows are identical to a serial run",
    )
    p_sweep.add_argument(
        "--journal", metavar="PATH", nargs="?", const="", default=None,
        help="journal completed cells to PATH as JSON lines "
             "(default: OUT with a .journal.jsonl suffix)",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="restore completed cells from the journal instead of re-running "
             "them; quarantined cells are retried",
    )
    p_sweep.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget for one cell; overruns are "
             "terminated and retried (needs --jobs > 1 to preempt)",
    )
    p_sweep.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="supervised attempts per cell before it is quarantined",
    )
    p_sweep.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base of the exponential retry backoff (seeded jitter on top)",
    )
    p_sweep.add_argument(
        "--inject-faults", metavar="PLAN", default=None,
        help="fault-injection plan: a JSON file path or inline JSON "
             "(testing; overrides the REPRO_FAULT_PLAN variable)",
    )
    p_sweep.add_argument(
        "--temporal", nargs="+", metavar="SPEC", default=None,
        help="temporal-weighting axis crossed over every configuration: "
             "'none', 'window:SECONDS' or 'half-life:SECONDS' "
             "(e.g. --temporal none half-life:3600)",
    )
    _add_telemetry_arguments(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_replay = sub.add_parser(
        "replay",
        help="stream user timelines through incremental profile updates, "
             "checking parity against batch rebuilds",
    )
    _add_dataset_arguments(p_replay)
    p_replay.add_argument(
        "--models", nargs="+", default=list(BENCH_MODELS), choices=MODEL_NAMES,
        help="models to replay (default: one per family: TN TNG LDA)",
    )
    p_replay.add_argument("--source", default="R",
                          choices=[s.value for s in ALL_SOURCES])
    p_replay.add_argument("--max-train-docs", type=int, default=100)
    p_replay.add_argument(
        "--chunk-size", type=int, default=1, metavar="N",
        help="tweets folded per incremental update (default: 1)",
    )
    p_replay.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="replay user chunks on N worker processes; digests are "
             "identical to a serial run",
    )
    p_replay.add_argument(
        "--tolerance", type=float, default=0.0, metavar="DELTA",
        help="largest allowed |incremental - rebuilt| profile entry; the "
             "default 0 demands bit-identical profiles",
    )
    p_replay.add_argument(
        "--stochastic-topics", action="store_true",
        help="keep topic inference stochastic instead of per-document "
             "seeded; pair with a nonzero --tolerance",
    )
    p_replay.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the full per-user replay results as JSON",
    )
    _add_telemetry_arguments(p_replay)
    p_replay.set_defaults(func=cmd_replay)

    p_monitor = sub.add_parser(
        "monitor", help="live progress view of a sweep (events file or journal)"
    )
    p_monitor.add_argument(
        "path",
        help="a --log-json events file or a --journal sweep journal "
             "(the kind is detected from the file itself)",
    )
    p_monitor.add_argument(
        "--snapshot", action="store_true",
        help="print one progress snapshot and exit instead of refreshing",
    )
    p_monitor.add_argument(
        "--json", action="store_true",
        help="with --snapshot: print the snapshot as JSON for scripting",
    )
    p_monitor.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period of the live view (default: 2s)",
    )
    p_monitor.set_defaults(func=cmd_monitor)

    p_export = sub.add_parser(
        "export", help="convert saved telemetry for external tools"
    )
    export_sub = p_export.add_subparsers(dest="export_command", required=True)
    p_export_trace = export_sub.add_parser(
        "trace", help="span trace -> Chrome trace-event JSON (Perfetto)"
    )
    p_export_trace.add_argument(
        "--trace", required=True, help="trace JSON written by --trace-out"
    )
    p_export_trace.add_argument(
        "--out", metavar="PATH", default=None,
        help="output path (default: stdout); load it at https://ui.perfetto.dev",
    )
    p_export_trace.add_argument(
        "--format", choices=["chrome-trace"], default="chrome-trace",
        help="output format (chrome-trace: JSON array of trace events)",
    )
    p_export_trace.set_defaults(func=cmd_export)
    p_export_metrics = export_sub.add_parser(
        "metrics", help="metrics snapshot -> Prometheus text exposition"
    )
    p_export_metrics.add_argument(
        "--trace", required=True, help="trace JSON written by --trace-out"
    )
    p_export_metrics.add_argument(
        "--out", metavar="PATH", default=None,
        help="output path (default: stdout)",
    )
    p_export_metrics.add_argument(
        "--prefix", default="repro",
        help="metric name prefix (default: repro)",
    )
    p_export_metrics.set_defaults(func=cmd_export)
    p_export_profile = export_sub.add_parser(
        "profile", help="stack profile -> collapsed stacks / speedscope JSON"
    )
    p_export_profile.add_argument(
        "--profile", required=True,
        help="profile JSON written by `repro profile` (or a trace with an "
             "embedded profile)",
    )
    p_export_profile.add_argument(
        "--format", choices=["collapsed", "speedscope"], default="speedscope",
        help="collapsed: flamegraph.pl lines; speedscope: JSON for "
             "https://www.speedscope.app (default)",
    )
    p_export_profile.add_argument(
        "--out", metavar="PATH", default=None,
        help="output path (default: stdout)",
    )
    p_export_profile.set_defaults(func=cmd_export_profile)

    p_bench = sub.add_parser(
        "bench", help="resource benchmark baselines (run the suite / compare)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bench_run = bench_sub.add_parser(
        "run", help="run the calibrated suite, write BENCH_<label>.json"
    )
    p_bench_run.add_argument(
        "--label", default="run",
        help="baseline label; the file is BENCH_<label>.json (timestamp-free)",
    )
    p_bench_run.add_argument("--out-dir", default="results", metavar="DIR")
    p_bench_run.add_argument(
        "--scale", default="quick", choices=sorted(SUITE_SCALES)
    )
    p_bench_run.add_argument(
        "--trials", type=int, default=None, metavar="N",
        help="measured trials (default: REPRO_BENCH_TRIALS, else 3)",
    )
    p_bench_run.add_argument("--warmup", type=int, default=1, metavar="N")
    p_bench_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run cells on N worker processes; worker samplers report "
             "true per-cell peaks through the telemetry merge",
    )
    p_bench_run.add_argument("--seed", type=int, default=7)
    p_bench_run.add_argument(
        "--trace-allocations", action="store_true",
        help="also capture tracemalloc allocation peaks (slow)",
    )
    p_bench_run.add_argument(
        "--suite", choices=["standard", "incremental"], default="standard",
        help="standard: the staged pipeline suite; incremental: streamed "
             "profile updates vs batch rebuilds (phases incremental/*)",
    )
    p_bench_run.add_argument(
        "--source", default="R", choices=[s.value for s in ALL_SOURCES],
        help="(incremental suite) representation source to replay",
    )
    p_bench_run.add_argument(
        "--chunk-size", type=int, default=1, metavar="N",
        help="(incremental suite) tweets folded per streamed update",
    )
    p_bench_run.set_defaults(func=cmd_bench_run)
    p_bench_compare = bench_sub.add_parser(
        "compare", help="noise-aware regression check between two baselines"
    )
    p_bench_compare.add_argument("old", help="reference BENCH_*.json")
    p_bench_compare.add_argument("new", help="candidate BENCH_*.json")
    p_bench_compare.add_argument(
        "--gate", action="store_true",
        help="exit 1 when regressions are flagged (2 on schema errors)",
    )
    p_bench_compare.add_argument(
        "--format", choices=["text", "json", "markdown"], default="text"
    )
    p_bench_compare.add_argument("--rel-threshold", type=float, default=0.10)
    p_bench_compare.add_argument("--iqr-factor", type=float, default=1.0)
    p_bench_compare.set_defaults(func=cmd_bench_compare)

    p_report = sub.add_parser("report", help="render a saved sweep or trace")
    p_report.add_argument("--sweep", help="sweep JSON path")
    p_report.add_argument("--trace", help="trace JSON path (*-breakdown artifacts)")
    p_report.add_argument("--profile",
                          help="profile JSON path (hotspots artifact)")
    p_report.add_argument("--artifact", default="figure",
                          choices=["figure", "table6", "table7", "figure7",
                                   "timing-breakdown", "resource-breakdown",
                                   "critical-path", "hotspots"])
    p_report.add_argument("--top", type=int, default=5, metavar="N",
                          help="straggler cells listed by critical-path / "
                               "functions per phase listed by hotspots "
                               "(default: 5)")
    p_report.add_argument("--group", default=UserType.ALL.value,
                          choices=[g.value for g in UserType])
    p_report.add_argument("--sources", nargs="*",
                          choices=[s.value for s in ALL_SOURCES])
    p_report.set_defaults(func=cmd_report)

    p_lint = sub.add_parser(
        "lint", help="run reprolint (determinism / taxonomy / telemetry rules)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  clean (no violations, no errors)\n"
            "  1  violations found\n"
            "  2  engine errors (unreadable/unparsable input, or no Python\n"
            "     files to analyze)"
        ),
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument(
        "--select", nargs="+", metavar="RPRnnn",
        help="run only these rule ids",
    )
    p_lint.add_argument(
        "--ignore", nargs="+", metavar="RPRnnn[,RPRnnn...]",
        help="run every rule except these ids (complement of --select; "
             "selecting and ignoring the same rule is a configuration error)",
    )
    p_lint.add_argument(
        "--baseline", metavar="PATH",
        help="ratchet baseline: suppress findings recorded in this file "
             "(by rule + file + stable fingerprint, not line number)",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    p_lint.add_argument(
        "--graph", metavar="OUT",
        help="export the whole-program call graph and per-function effect "
             "report (.dot for Graphviz, anything else for JSON)",
    )
    p_lint.add_argument(
        "--cache", nargs="?", const=".reprolint-cache.json", default=None,
        metavar="PATH",
        help="incremental mode: cache per-file analysis keyed on content "
             "hashes (default cache file: .reprolint-cache.json)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="describe every registered rule and exit",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_profile = sub.add_parser(
        "profile",
        help="statistical stack profiler: wrap a command, or diff profiles",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  repro profile -- sweep --out sweep.json --fast --jobs 2\n"
            "  repro profile --hz 251 --out fit.json -- bench run --scale tiny\n"
            "  repro profile diff before.json after.json"
        ),
    )
    p_profile.add_argument(
        "--hz", type=float, default=DEFAULT_HZ, metavar="RATE",
        help=f"sampling rate in samples/second (default: {DEFAULT_HZ:g}; "
             "prime, to avoid phase-locking with periodic work)",
    )
    p_profile.add_argument(
        "--out", default="profile.json", metavar="PATH",
        help="where to write the profile document (default: profile.json)",
    )
    p_profile.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="functions per phase in the printed hotspot summary "
             "(default: 10)",
    )
    p_profile.add_argument(
        "rest", nargs=argparse.REMAINDER,
        help="after --: the repro command to profile (sweep, bench, replay, "
             "evaluate); or: diff BEFORE.json AFTER.json",
    )
    p_profile.set_defaults(func=cmd_profile)

    p_suggest = sub.add_parser("suggest", help="followee / hashtag suggestions")
    _add_dataset_arguments(p_suggest)
    p_suggest.add_argument("--kind", required=True, choices=["followee", "hashtag"])
    p_suggest.add_argument("--user", type=int)
    p_suggest.add_argument("--text")
    p_suggest.add_argument("-k", type=int, default=5)
    p_suggest.set_defaults(func=cmd_suggest)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
