"""Weighting schemes for the bag (vector space) models.

The paper's three schemes (Section 3.2, "Bag Models"):

* **BF**     -- boolean frequency: 1 if the n-gram occurs, else 0;
* **TF**     -- term frequency normalised by document length:
  ``f_j / N_d``;
* **TF-IDF** -- TF discounted by inverse document frequency:
  ``TF * log(|D| / (df_j + 1))``.

Vectors are sparse ``dict[str, float]`` mappings -- tweets have a handful
of n-grams, so dense vectors would waste both memory and time.
"""

from __future__ import annotations

import enum
import math
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.errors import NotFittedError

__all__ = ["WeightingScheme", "IdfTable", "bf_vector", "tf_vector", "tf_idf_vector"]


class WeightingScheme(str, enum.Enum):
    """The three bag-model weighting schemes."""

    BF = "BF"
    TF = "TF"
    TF_IDF = "TF-IDF"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class IdfTable:
    """Inverse document frequencies learned from a training corpus.

    ``idf(t) = log(|D| / (df(t) + 1))`` exactly as in the paper. Unseen
    n-grams get ``log(|D| / 1)``, the maximum IDF, which is the natural
    limit of the same formula at ``df = 0``.
    """

    def __init__(self) -> None:
        self._df: Counter[str] = Counter()
        self._n_docs: int | None = None

    def fit(self, documents: Iterable[Iterable[str]]) -> "IdfTable":
        """Count document frequencies over n-gram streams."""
        self._df = Counter()
        n_docs = 0
        for grams in documents:
            self._df.update(set(grams))
            n_docs += 1
        self._n_docs = n_docs
        return self

    @property
    def n_docs(self) -> int:
        if self._n_docs is None:
            raise NotFittedError("IdfTable.fit was never called")
        return self._n_docs

    def idf(self, gram: str) -> float:
        if self._n_docs is None:
            raise NotFittedError("IdfTable.fit was never called")
        if self._n_docs == 0:
            return 0.0
        return math.log(self._n_docs / (self._df.get(gram, 0) + 1))

    def __contains__(self, gram: str) -> bool:
        return gram in self._df


def bf_vector(grams: Sequence[str]) -> dict[str, float]:
    """Boolean-frequency sparse vector."""
    return {g: 1.0 for g in grams}


def tf_vector(grams: Sequence[str]) -> dict[str, float]:
    """Length-normalised term-frequency sparse vector."""
    total = len(grams)
    if total == 0:
        return {}
    counts = Counter(grams)
    return {g: c / total for g, c in counts.items()}


def tf_idf_vector(grams: Sequence[str], idf_table: IdfTable) -> dict[str, float]:
    """TF-IDF sparse vector using a fitted :class:`IdfTable`."""
    return {g: w * idf_table.idf(g) for g, w in tf_vector(grams).items()}
