"""Probabilistic Latent Semantic Analysis trained with EM.

PLSA (Hofmann 1999) factorises the document-word co-occurrence matrix as
``P(w, d) = P(d) · Σ_z P(z|d) P(w|z)``. Training is standard EM on the
document-term counts:

* E-step: ``P(z | d, w) ∝ θ_dz · φ_zw``;
* M-step: re-estimate ``φ_zw`` and ``θ_dz`` from the expected counts.

The paper *excluded* PLSA from its headline analysis because every
configuration violated its 32 GB memory constraint -- the |D|·|Z| + |Z|·|V|
parameters grow linearly with the corpus. We implement it anyway (it is
part of the taxonomy and useful on smaller corpora) and keep it out of
the default benchmark grid, mirroring the paper's decision.

Unseen documents are folded in by running EM on ``θ_d`` only, with ``φ``
frozen.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.models.topic.base import TopicModel
from repro.models.topic.gibbs import notify_iteration

__all__ = ["PlsaModel"]


class PlsaModel(TopicModel):
    """**PLSA** with Expectation Maximization.

    Parameters
    ----------
    n_topics:
        Number of latent topics ``|Z|``.
    """

    name = "PLSA"

    def __init__(self, n_topics: int = 50, **kwargs):
        super().__init__(**kwargs)
        if n_topics < 1:
            raise ConfigurationError(f"n_topics must be >= 1, got {n_topics}")
        self._n_topics = n_topics
        self._phi: np.ndarray | None = None  # K x V

    @property
    def n_topics(self) -> int:
        return self._n_topics

    @property
    def phi(self) -> np.ndarray:
        if self._phi is None:
            raise NotFittedError("PlsaModel.fit was never called")
        return self._phi

    @staticmethod
    def _count_matrix(docs: list[list[int]], vocab_size: int) -> np.ndarray:
        counts = np.zeros((len(docs), vocab_size))
        for d, doc in enumerate(docs):
            for w in doc:
                counts[d, w] += 1
        return counts

    def _train(self, docs: list[list[int]], raw_docs: list[Sequence[str]]) -> None:
        vocab_size = len(self.vocabulary)
        k = self._n_topics
        rng = self._rng

        counts = self._count_matrix(docs, vocab_size)  # D x V
        theta = rng.dirichlet(np.ones(k), size=len(docs))  # D x K
        phi = rng.dirichlet(np.ones(vocab_size), size=k)  # K x V

        eps = 1e-12
        for iteration in range(self.iterations):
            # E + M fused per document block to avoid the D x V x K tensor.
            new_phi = np.zeros_like(phi)
            new_theta = np.zeros_like(theta)
            for d in range(len(docs)):
                # posterior[k, w] = theta_dk * phi_kw, normalised over k
                posterior = theta[d][:, None] * phi  # K x V
                posterior /= posterior.sum(axis=0, keepdims=True) + eps
                expected = posterior * counts[d][None, :]  # K x V expected counts
                new_phi += expected
                new_theta[d] = expected.sum(axis=1)
            phi = new_phi / (new_phi.sum(axis=1, keepdims=True) + eps)
            row_totals = new_theta.sum(axis=1, keepdims=True)
            theta = np.where(row_totals > 0, new_theta / (row_totals + eps), 1.0 / k)
            notify_iteration(
                self.iteration_hook, self.name, iteration + 1, self.iterations,
                float((counts * np.log(theta @ phi + eps)).sum())
                if self.iteration_hook is not None else None,
            )

        self._phi = phi

    def _infer(self, doc: list[int]) -> np.ndarray:
        if self._phi is None:
            raise NotFittedError("PlsaModel.fit was never called")
        if not doc:
            return self._uniform_theta()
        k = self._n_topics
        phi = self._phi
        word_ids, word_counts = np.unique(doc, return_counts=True)
        theta = np.full(k, 1.0 / k)
        eps = 1e-12
        for _ in range(self.infer_iterations):
            posterior = theta[:, None] * phi[:, word_ids]  # K x W
            posterior /= posterior.sum(axis=0, keepdims=True) + eps
            theta = (posterior * word_counts[None, :]).sum(axis=1)
            theta /= theta.sum() + eps
        return theta

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update(n_topics=self._n_topics)
        return info
