"""Label extraction for Labeled LDA.

The paper (Section 4, "Parameter Tuning", following Ramage et al. 2010)
attaches the following observed labels to every training tweet:

* one label per hashtag that occurs more than ``min_hashtag_count`` times
  in the training tweets;
* a label for the question mark;
* nine emoticon-class labels -- smile, frown, wink, big grin, tongue,
  heart, surprise, awkward, confused;
* an ``@user`` label for tweets whose *first* token is a mention.

Frequent labels get 10 variations each (e.g. ``frown-0`` … ``frown-9``),
so that one label does not absorb a huge share of tokens; the hashtag
labels and the emoticons *big grin*, *heart*, *surprise* and *confused*
have no variations, exactly as in the paper. Variation assignment must be
deterministic for reproducibility: we hash the document index.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.errors import ValidationError

__all__ = ["LabelExtractor", "EMOTICON_CLASSES"]

#: The nine emoticon classes and their member tokens (tokenizer output
#: is lowercase, so only lowercase forms appear here).
EMOTICON_CLASSES: dict[str, tuple[str, ...]] = {
    "smile": (":)", ":-)", "=)", "^_^"),
    "frown": (":(", ":-("),
    "wink": (";)", ";-)"),
    "big grin": (":d", ":-d", "xd"),
    "tongue": (":p", ":-p"),
    "heart": ("<3",),
    "surprise": (":o", ":-o"),
    "awkward": (":/", ":-/"),
    "confused": (":s", ":-s"),
}

#: Labels that never get numeric variations (paper Section 4).
_NO_VARIATIONS: frozenset[str] = frozenset({"big grin", "heart", "surprise", "confused"})

_N_VARIATIONS = 10


class LabelExtractor:
    """Extracts the paper's LLDA label set from tokenized tweets.

    Parameters
    ----------
    min_hashtag_count:
        A hashtag becomes a label only if it occurs more than this many
        times across the training tweets (paper: 30).
    n_variations:
        Number of variations for the frequent non-hashtag labels
        (paper: 10).
    """

    def __init__(self, min_hashtag_count: int = 30, n_variations: int = _N_VARIATIONS):
        if n_variations < 1:
            raise ValidationError(f"n_variations must be >= 1, got {n_variations}")
        self.min_hashtag_count = min_hashtag_count
        self.n_variations = n_variations
        self._emoticon_to_class = {
            tok: cls for cls, toks in EMOTICON_CLASSES.items() for tok in toks
        }
        self._frequent_hashtags: frozenset[str] = frozenset()

    def fit(self, documents: Sequence[Sequence[str]]) -> "LabelExtractor":
        """Learn which hashtags are frequent enough to become labels."""
        counts: Counter[str] = Counter()
        for doc in documents:
            counts.update(t for t in doc if t.startswith("#"))
        self._frequent_hashtags = frozenset(
            tag for tag, c in counts.items() if c > self.min_hashtag_count
        )
        return self

    @property
    def frequent_hashtags(self) -> frozenset[str]:
        return self._frequent_hashtags

    def _varied(self, label: str, doc_index: int) -> str:
        if label in _NO_VARIATIONS:
            return label
        return f"{label}-{doc_index % self.n_variations}"

    def labels_for(self, tokens: Sequence[str], doc_index: int) -> list[str]:
        """The observed labels of one tokenized tweet.

        ``doc_index`` deterministically selects the variation for labels
        that have them.
        """
        labels: list[str] = []
        seen_classes: set[str] = set()
        for pos, tok in enumerate(tokens):
            if tok.startswith("#"):
                if tok in self._frequent_hashtags and tok not in seen_classes:
                    labels.append(tok)  # hashtags never vary
                    seen_classes.add(tok)
            elif tok == "?":
                if "?" not in seen_classes:
                    labels.append(self._varied("question", doc_index))
                    seen_classes.add("?")
            elif tok in self._emoticon_to_class:
                cls = self._emoticon_to_class[tok]
                if cls not in seen_classes:
                    labels.append(self._varied(cls, doc_index))
                    seen_classes.add(cls)
            elif pos == 0 and tok.startswith("@"):
                labels.append(self._varied("@user", doc_index))
                seen_classes.add("@user")
        return labels
