"""Topic models: PLSA, LDA, Labeled LDA, BTM, HDP, HLDA."""

from repro.models.topic.base import (
    TopicModel,
    TopicProfileState,
    dense_centroid,
    dense_cosine,
    dense_rocchio,
)
from repro.models.topic.btm import BitermTopicModel, extract_biterms
from repro.models.topic.hdp import HdpModel
from repro.models.topic.hlda import HldaModel
from repro.models.topic.labels import EMOTICON_CLASSES, LabelExtractor
from repro.models.topic.lda import LdaModel
from repro.models.topic.llda import LabeledLdaModel
from repro.models.topic.plsa import PlsaModel

__all__ = [
    "BitermTopicModel",
    "EMOTICON_CLASSES",
    "HdpModel",
    "HldaModel",
    "LabelExtractor",
    "LabeledLdaModel",
    "LdaModel",
    "PlsaModel",
    "TopicModel",
    "TopicProfileState",
    "dense_centroid",
    "dense_cosine",
    "dense_rocchio",
    "extract_biterms",
]
