"""Biterm Topic Model trained with collapsed Gibbs sampling.

BTM (Yan et al. 2013; Cheng et al. 2014) tackles short-text sparsity
(Challenge C1) by modelling *biterms* -- unordered word pairs co-occurring
within a context window -- over the whole corpus instead of per-document
word occurrences. The generative story: a single corpus-level topic
mixture ``θ`` over ``K`` topics; each biterm draws a topic ``z`` then two
words from ``φ_z``.

Collapsed Gibbs update for biterm ``b = (w1, w2)``:

    p(z = k | ...) ∝ (n_k + α) · (n_kw1 + β)(n_kw2 + β) / (n_k· + Vβ)²

Documents have no generative role; a document's distribution is inferred
post hoc as ``P(z|d) = Σ_b P(z|b) · P(b|d)`` with ``P(z|b) ∝ θ_z φ_zw1
φ_zw2`` and ``P(b|d)`` the empirical biterm frequency in ``d``.

Window convention (paper Section 4): for individual tweets the window is
the whole tweet; for long pooled pseudo-documents the window ``r`` caps
the token distance within a biterm (paper: ``r = 30``).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.models.topic.base import TopicModel
from repro.models.topic.gibbs import notify_iteration, sample_index
from repro.text.pooling import PoolingScheme

__all__ = ["BitermTopicModel", "extract_biterms"]

Biterm = tuple[int, int]


def extract_biterms(doc: Sequence[int], window: int | None) -> Iterator[Biterm]:
    """Yield the biterms of an encoded document.

    ``window=None`` means "whole document" (the convention for individual
    tweets); otherwise two words form a biterm when their positions are at
    most ``window`` apart. Biterms are unordered: ``(w1, w2)`` is stored
    with ``w1 <= w2``.
    """
    n = len(doc)
    for i in range(n):
        limit = n if window is None else min(n, i + window + 1)
        for j in range(i + 1, limit):
            a, b = doc[i], doc[j]
            yield (a, b) if a <= b else (b, a)


class BitermTopicModel(TopicModel):
    """**BTM** -- topics over corpus-level biterms.

    Parameters
    ----------
    n_topics:
        Number of topics ``K``.
    alpha, beta:
        Dirichlet priors (paper: ``α = 50/K``, ``β = 0.01``).
    window:
        Biterm context window for pooled pseudo-documents (paper:
        ``r = 30``). With no pooling the whole (short) tweet is the
        window, matching the paper's convention.
    max_biterms:
        Optional cap on the number of training biterms; when exceeded, a
        uniform subsample is used. The paper has no such cap -- it ran
        for days on a 32-core server -- but corpus-level biterm counts
        grow quadratically with pseudo-document length, so benchmark
        configurations cap them to stay tractable.
    """

    name = "BTM"

    def __init__(
        self,
        n_topics: int = 50,
        alpha: float | None = None,
        beta: float = 0.01,
        window: int = 30,
        max_biterms: int | None = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if n_topics < 1:
            raise ConfigurationError(f"n_topics must be >= 1, got {n_topics}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if max_biterms is not None and max_biterms < 1:
            raise ConfigurationError(f"max_biterms must be >= 1, got {max_biterms}")
        self._n_topics = n_topics
        self.alpha = 50.0 / n_topics if alpha is None else alpha
        self.beta = beta
        self.window = window
        self.max_biterms = max_biterms
        self._phi: np.ndarray | None = None  # K x V
        self._theta: np.ndarray | None = None  # corpus-level K

    @property
    def n_topics(self) -> int:
        return self._n_topics

    @property
    def phi(self) -> np.ndarray:
        if self._phi is None:
            raise NotFittedError("BitermTopicModel.fit was never called")
        return self._phi

    @property
    def corpus_theta(self) -> np.ndarray:
        """The corpus-level topic mixture ``θ``."""
        if self._theta is None:
            raise NotFittedError("BitermTopicModel.fit was never called")
        return self._theta

    def _training_window(self) -> int | None:
        """Whole-tweet window under NP, capped window for pooled docs."""
        return None if self.pooling is PoolingScheme.NONE else self.window

    def _train(self, docs: list[list[int]], raw_docs: list[Sequence[str]]) -> None:
        vocab_size = len(self.vocabulary)
        k = self._n_topics
        rng = self._rng
        window = self._training_window()

        biterms: list[Biterm] = [b for doc in docs for b in extract_biterms(doc, window)]
        if self.max_biterms is not None and len(biterms) > self.max_biterms:
            picks = rng.choice(len(biterms), size=self.max_biterms, replace=False)
            biterms = [biterms[i] for i in picks]
        n_z = np.zeros(k)
        n_kw = np.zeros((k, vocab_size))
        z_assign = rng.integers(k, size=len(biterms))
        for (w1, w2), topic in zip(biterms, z_assign):
            n_z[topic] += 1
            n_kw[topic, w1] += 1
            n_kw[topic, w2] += 1

        v_beta = vocab_size * self.beta
        for iteration in range(self.iterations):
            for i, (w1, w2) in enumerate(biterms):
                topic = z_assign[i]
                n_z[topic] -= 1
                n_kw[topic, w1] -= 1
                n_kw[topic, w2] -= 1
                totals = 2.0 * n_z + v_beta
                weights = (
                    (n_z + self.alpha)
                    * (n_kw[:, w1] + self.beta)
                    * (n_kw[:, w2] + self.beta)
                    / (totals * (totals + 1.0))
                )
                topic = sample_index(weights, rng)
                z_assign[i] = topic
                n_z[topic] += 1
                n_kw[topic, w1] += 1
                n_kw[topic, w2] += 1
            notify_iteration(
                self.iteration_hook, self.name, iteration + 1, self.iterations
            )

        self._phi = (n_kw + self.beta) / (2.0 * n_z[:, None] + v_beta)
        theta = n_z + self.alpha
        self._theta = theta / theta.sum()

    def _infer(self, doc: list[int]) -> np.ndarray:
        """``P(z|d) = Σ_b P(z|b) P(b|d)`` -- no sampling needed."""
        if self._phi is None or self._theta is None:
            raise NotFittedError("BitermTopicModel.fit was never called")
        doc_biterms = list(extract_biterms(doc, window=None))
        if not doc_biterms:
            # Single-word or empty documents have no biterms; fall back to
            # word-level evidence so they are still rankable.
            if doc:
                weights = self._theta[:, None] * self._phi[:, doc]  # K x N
                theta = weights.sum(axis=1)
                total = theta.sum()
                return theta / total if total > 0 else self._uniform_theta()
            return self._uniform_theta()

        theta = np.zeros(self._n_topics)
        p_b = 1.0 / len(doc_biterms)
        for w1, w2 in doc_biterms:
            p_zb = self._theta * self._phi[:, w1] * self._phi[:, w2]
            total = p_zb.sum()
            if total > 0:
                theta += p_b * (p_zb / total)
        total = theta.sum()
        return theta / total if total > 0 else self._uniform_theta()

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update(n_topics=self._n_topics, window=self.window, beta=self.beta)
        return info
