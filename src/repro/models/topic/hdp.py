"""Hierarchical Dirichlet Process topic model (direct-assignment Gibbs).

HDP (Teh et al. 2006) is the Bayesian nonparametric counterpart of LDA:
the number of topics is unbounded and inferred from data. Each document
``d`` draws its topic mixture from ``DP(α, G0)`` where the base measure
``G0 ~ DP(γ, Dir(β))`` is shared across documents, so documents share a
common, growing topic inventory.

This implementation is the standard *direct assignment* collapsed Gibbs
sampler:

* token update: ``p(z_i = k) ∝ (n_dk + α·β_k) f_k(w_i)`` for existing
  topics and ``p(new) ∝ α·β_u / V`` for a fresh topic, where ``β`` is the
  global stick over topics, ``β_u`` the unbroken remainder and
  ``f_k(w) = (n_kw + η) / (n_k + Vη)``;
* after each sweep the per-document table counts ``m_dk`` are resampled
  via Antoniak draws and the stick ``β`` is resampled from
  ``Dirichlet(m_·1, …, m_·K, γ)``;
* topics that lose all tokens are retired, returning their stick mass to
  ``β_u``.

At inference time the topic inventory is frozen: fold-in Gibbs with the
learned ``φ`` and the asymmetric prior ``α·β_k``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.models.topic.base import TopicModel
from repro.models.topic.gibbs import notify_iteration, sample_crp_tables, sample_index

__all__ = ["HdpModel"]


class HdpModel(TopicModel):
    """**HDP** -- nonparametric topic model.

    Parameters
    ----------
    alpha:
        Document-level concentration (paper: 1.0).
    gamma:
        Corpus-level concentration (paper: 1.0).
    eta:
        Topic-word Dirichlet prior ``β`` in the paper's Table 4 grid
        ({0.1, 0.5}); named ``eta`` here to avoid clashing with the
        stick weights.
    initial_topics:
        Topics instantiated at initialisation; the sampler grows and
        shrinks this freely.
    max_topics:
        Hard safety cap on the topic inventory.
    """

    name = "HDP"

    def __init__(
        self,
        alpha: float = 1.0,
        gamma: float = 1.0,
        eta: float = 0.1,
        initial_topics: int = 10,
        max_topics: int = 256,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if min(alpha, gamma, eta) <= 0:
            raise ConfigurationError("alpha, gamma and eta must all be > 0")
        if initial_topics < 1 or max_topics < initial_topics:
            raise ConfigurationError(
                f"need 1 <= initial_topics <= max_topics, got {initial_topics}, {max_topics}"
            )
        self.alpha = alpha
        self.gamma = gamma
        self.eta = eta
        self.initial_topics = initial_topics
        self.max_topics = max_topics
        self._phi: np.ndarray | None = None  # K x V
        self._beta_weights: np.ndarray | None = None  # K (sticks, re-normalised)

    @property
    def n_topics(self) -> int:
        if self._phi is None:
            return self.initial_topics
        return self._phi.shape[0]

    @property
    def phi(self) -> np.ndarray:
        if self._phi is None:
            raise NotFittedError("HdpModel.fit was never called")
        return self._phi

    @property
    def stick_weights(self) -> np.ndarray:
        """Global topic weights ``β`` (normalised over active topics)."""
        if self._beta_weights is None:
            raise NotFittedError("HdpModel.fit was never called")
        return self._beta_weights

    def _train(self, docs: list[list[int]], raw_docs: list[Sequence[str]]) -> None:
        vocab_size = len(self.vocabulary)
        rng = self._rng
        k = self.initial_topics

        n_dk = np.zeros((len(docs), self.max_topics))
        n_kw = np.zeros((self.max_topics, vocab_size))
        n_k = np.zeros(self.max_topics)
        assignments: list[np.ndarray] = []
        for d, doc in enumerate(docs):
            z = rng.integers(k, size=len(doc))
            assignments.append(z)
            for w, topic in zip(doc, z):
                n_dk[d, topic] += 1
                n_kw[topic, w] += 1
                n_k[topic] += 1

        # Stick weights over the K active topics plus the unbroken tail.
        beta = rng.dirichlet(np.ones(k + 1) * self.gamma)
        active = list(range(k))

        v_eta = vocab_size * self.eta
        for iteration in range(self.iterations):
            for d, doc in enumerate(docs):
                z = assignments[d]
                for i, w in enumerate(doc):
                    topic = z[i]
                    n_dk[d, topic] -= 1
                    n_kw[topic, w] -= 1
                    n_k[topic] -= 1

                    idx = np.array(active)
                    f_k = (n_kw[idx, w] + self.eta) / (n_k[idx] + v_eta)
                    weights = (n_dk[d, idx] + self.alpha * beta[:-1]) * f_k
                    new_weight = self.alpha * beta[-1] / vocab_size
                    choice = sample_index(np.append(weights, new_weight), rng)

                    if choice == len(active) and len(active) < self.max_topics:
                        # Instantiate a fresh topic; split the remaining stick.
                        free = [t for t in range(self.max_topics) if t not in set(active)]
                        topic = free[0]
                        active.append(topic)
                        b = rng.beta(1.0, self.gamma)
                        beta = np.append(beta[:-1], [beta[-1] * b, beta[-1] * (1.0 - b)])
                    else:
                        topic = active[min(choice, len(active) - 1)]

                    z[i] = topic
                    n_dk[d, topic] += 1
                    n_kw[topic, w] += 1
                    n_k[topic] += 1

            # Retire empty topics, returning their stick mass to the tail.
            empty = [j for j, t in enumerate(active) if n_k[t] == 0]
            if empty:
                freed = beta[empty].sum()
                keep = [j for j in range(len(active)) if j not in set(empty)]
                active = [active[j] for j in keep]
                beta = np.append(beta[keep], beta[-1] + freed)

            # Resample the global stick from the table counts (Antoniak draws).
            m_k = np.zeros(len(active))
            for d in range(len(docs)):
                for j, t in enumerate(active):
                    count = int(n_dk[d, t])
                    if count > 0:
                        m_k[j] += sample_crp_tables(count, self.alpha * beta[j], rng)
            m_k = np.maximum(m_k, 1e-3)  # guard against degenerate Dirichlet params
            beta = rng.dirichlet(np.append(m_k, self.gamma))
            notify_iteration(
                self.iteration_hook, self.name, iteration + 1, self.iterations
            )

        idx = np.array(active)
        self._phi = (n_kw[idx] + self.eta) / (n_k[idx][:, None] + v_eta)
        weights = beta[:-1]
        self._beta_weights = weights / weights.sum()

    def _infer(self, doc: list[int]) -> np.ndarray:
        if self._phi is None or self._beta_weights is None:
            raise NotFittedError("HdpModel.fit was never called")
        if not doc:
            return self._uniform_theta()
        k = self._phi.shape[0]
        rng = self._rng
        phi = self._phi
        prior = self.alpha * self._beta_weights

        n_dk = np.zeros(k)
        z = rng.integers(k, size=len(doc))
        for topic in z:
            n_dk[topic] += 1
        for _ in range(self.infer_iterations):
            for i, w in enumerate(doc):
                topic = z[i]
                n_dk[topic] -= 1
                weights = (n_dk + prior) * phi[:, w]
                topic = sample_index(weights, rng)
                z[i] = topic
                n_dk[topic] += 1
        theta = n_dk + prior
        return theta / theta.sum()

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update(alpha=self.alpha, gamma=self.gamma, eta=self.eta)
        return info
