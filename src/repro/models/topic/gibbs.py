"""Numerical helpers shared by the Gibbs samplers.

All the collapsed Gibbs samplers in this package need the same two
primitives: drawing from an unnormalised discrete distribution, and
sampling the number of occupied tables in a Chinese Restaurant Process
(used by HDP's table-count resampling).

The module also defines the samplers' per-iteration progress protocol:
a training loop calls :func:`notify_iteration` once per sweep, and any
installed :data:`IterationHook` receives a :class:`GibbsIteration`
record (iteration number, total, optional corpus log-likelihood). The
telemetry layer uses this to stream sampler convergence without the
models knowing anything about tracing.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.obs.resources import read_rss_bytes

__all__ = [
    "GibbsIteration",
    "IterationHook",
    "notify_iteration",
    "sample_index",
    "sample_crp_tables",
]


@dataclass(frozen=True)
class GibbsIteration:
    """One completed training sweep of a sampler (or EM) loop."""

    model: str
    iteration: int  # 1-based
    total: int
    log_likelihood: float | None = None
    #: Resident set size right after the sweep; None when no hook was
    #: installed (the read is skipped) or no RSS source exists.
    rss_bytes: int | None = None


#: Observer of sampler progress; see :func:`notify_iteration`.
IterationHook = Callable[[GibbsIteration], None]


def notify_iteration(
    hook: IterationHook | None,
    model: str,
    iteration: int,
    total: int,
    log_likelihood: float | None = None,
) -> None:
    """Deliver one :class:`GibbsIteration` to ``hook`` if one is set.

    The RSS read happens only when a hook is installed, so untraced
    training loops pay nothing for the memory dimension.
    """
    if hook is not None:
        hook(GibbsIteration(
            model=model,
            iteration=iteration,
            total=total,
            log_likelihood=log_likelihood,
            rss_bytes=read_rss_bytes(),
        ))


def sample_index(weights: np.ndarray, rng: np.random.Generator) -> int:
    """Draw an index proportionally to non-negative ``weights``.

    Falls back to a uniform draw when all weights are zero (which can
    happen transiently in sparse samplers) rather than crashing the
    chain.
    """
    total = float(weights.sum())
    if total <= 0.0 or not np.isfinite(total):
        return int(rng.integers(len(weights)))
    # Inverse-CDF sampling on the cumulative sum: one uniform draw,
    # one searchsorted -- the fastest pure-numpy approach for small K.
    return int(np.searchsorted(np.cumsum(weights), rng.random() * total))


def sample_crp_tables(n_customers: int, concentration: float, rng: np.random.Generator) -> int:
    """Sample the table count for ``n_customers`` in a CRP.

    In a Chinese Restaurant Process with concentration ``a``, customer
    ``i`` (1-based) opens a new table with probability ``a / (a + i - 1)``.
    The sum of those Bernoulli draws is the Antoniak-distributed number of
    occupied tables; HDP resamples its per-document table counts this way.
    """
    if n_customers <= 0:
        return 0
    if concentration <= 0.0:
        return 1
    i = np.arange(n_customers, dtype=float)
    probs = concentration / (concentration + i)
    return int((rng.random(n_customers) < probs).sum())
