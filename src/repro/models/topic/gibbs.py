"""Numerical helpers shared by the Gibbs samplers.

All the collapsed Gibbs samplers in this package need the same two
primitives: drawing from an unnormalised discrete distribution, and
sampling the number of occupied tables in a Chinese Restaurant Process
(used by HDP's table-count resampling).
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_index", "sample_crp_tables"]


def sample_index(weights: np.ndarray, rng: np.random.Generator) -> int:
    """Draw an index proportionally to non-negative ``weights``.

    Falls back to a uniform draw when all weights are zero (which can
    happen transiently in sparse samplers) rather than crashing the
    chain.
    """
    total = float(weights.sum())
    if total <= 0.0 or not np.isfinite(total):
        return int(rng.integers(len(weights)))
    # Inverse-CDF sampling on the cumulative sum: one uniform draw,
    # one searchsorted -- the fastest pure-numpy approach for small K.
    return int(np.searchsorted(np.cumsum(weights), rng.random() * total))


def sample_crp_tables(n_customers: int, concentration: float, rng: np.random.Generator) -> int:
    """Sample the table count for ``n_customers`` in a CRP.

    In a Chinese Restaurant Process with concentration ``a``, customer
    ``i`` (1-based) opens a new table with probability ``a / (a + i - 1)``.
    The sum of those Bernoulli draws is the Antoniak-distributed number of
    occupied tables; HDP resamples its per-document table counts this way.
    """
    if n_customers <= 0:
        return 0
    if concentration <= 0.0:
        return 1
    i = np.arange(n_customers, dtype=float)
    probs = concentration / (concentration + i)
    return int((rng.random(n_customers) < probs).sum())
