"""Labeled LDA trained with constrained collapsed Gibbs sampling.

Labeled LDA (Ramage et al. 2009) is a supervised LDA variant: every
document carries a set of observed labels, and its words may only be
assigned to topics corresponding to those labels. Following the paper
(and Ramage et al. 2010), each document's topic set is the union of

* its observed labels (hashtags, question mark, emoticon classes,
  ``@user`` -- see :mod:`repro.models.topic.labels`), and
* ``K`` shared latent topics ``Topic 1 … Topic K`` available to all
  documents.

The Gibbs update is the LDA update restricted to the document's allowed
topics. At inference time a new document has no observed labels, so its
distribution spans the full topic set with the same restricted sampler
relaxed to all topics; its mass naturally concentrates on the latent
topics plus any label topics whose words it shares.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.models.topic.base import TopicModel
from repro.models.topic.gibbs import notify_iteration, sample_index
from repro.models.topic.labels import LabelExtractor

__all__ = ["LabeledLdaModel"]


class LabeledLdaModel(TopicModel):
    """**LLDA** -- Labeled LDA with latent background topics.

    Parameters
    ----------
    n_latent_topics:
        Number of shared latent topics added to every document's label
        set (paper grid: 50/100/150/200).
    alpha, beta:
        Dirichlet priors; ``alpha=None`` selects ``50 / K_total`` after
        the label vocabulary is known.
    label_extractor:
        Source of observed labels; defaults to the paper's configuration.
    """

    name = "LLDA"

    def __init__(
        self,
        n_latent_topics: int = 50,
        alpha: float | None = None,
        beta: float = 0.01,
        label_extractor: LabelExtractor | None = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if n_latent_topics < 1:
            raise ConfigurationError(f"n_latent_topics must be >= 1, got {n_latent_topics}")
        self.n_latent_topics = n_latent_topics
        self._alpha_param = alpha
        self.beta = beta
        self.label_extractor = label_extractor or LabelExtractor()
        self.alpha: float | None = alpha
        self._topic_names: list[str] = []
        self._phi: np.ndarray | None = None

    @property
    def n_topics(self) -> int:
        if not self._topic_names:
            return self.n_latent_topics
        return len(self._topic_names)

    @property
    def topic_names(self) -> tuple[str, ...]:
        return tuple(self._topic_names)

    @property
    def phi(self) -> np.ndarray:
        if self._phi is None:
            raise NotFittedError("LabeledLdaModel.fit was never called")
        return self._phi

    def _train(self, docs: list[list[int]], raw_docs: list[Sequence[str]]) -> None:
        vocab_size = len(self.vocabulary)
        rng = self._rng

        self.label_extractor.fit(raw_docs)
        doc_labels = [
            self.label_extractor.labels_for(tokens, d) for d, tokens in enumerate(raw_docs)
        ]
        label_names = sorted({lab for labs in doc_labels for lab in labs})
        latent_names = [f"Topic {i + 1}" for i in range(self.n_latent_topics)]
        self._topic_names = latent_names + label_names
        topic_index = {name: i for i, name in enumerate(self._topic_names)}
        k = len(self._topic_names)
        if self._alpha_param is None:
            self.alpha = 50.0 / k

        latent_ids = np.arange(self.n_latent_topics)
        allowed: list[np.ndarray] = []
        for labs in doc_labels:
            ids = [topic_index[lab] for lab in labs]
            allowed.append(np.concatenate([latent_ids, np.array(ids, dtype=int)]))

        n_dk = np.zeros((len(docs), k))
        n_kw = np.zeros((k, vocab_size))
        n_k = np.zeros(k)
        assignments: list[np.ndarray] = []
        for d, doc in enumerate(docs):
            choices = allowed[d]
            z = choices[rng.integers(len(choices), size=len(doc))]
            assignments.append(z)
            for w, topic in zip(doc, z):
                n_dk[d, topic] += 1
                n_kw[topic, w] += 1
                n_k[topic] += 1

        v_beta = vocab_size * self.beta
        for iteration in range(self.iterations):
            for d, doc in enumerate(docs):
                z = assignments[d]
                choices = allowed[d]
                for i, w in enumerate(doc):
                    topic = z[i]
                    n_dk[d, topic] -= 1
                    n_kw[topic, w] -= 1
                    n_k[topic] -= 1
                    weights = (
                        (n_dk[d, choices] + self.alpha)
                        * (n_kw[choices, w] + self.beta)
                        / (n_k[choices] + v_beta)
                    )
                    topic = int(choices[sample_index(weights, rng)])
                    z[i] = topic
                    n_dk[d, topic] += 1
                    n_kw[topic, w] += 1
                    n_k[topic] += 1
            notify_iteration(
                self.iteration_hook, self.name, iteration + 1, self.iterations
            )

        self._phi = (n_kw + self.beta) / (n_k[:, None] + v_beta)

    def _infer(self, doc: list[int]) -> np.ndarray:
        if self._phi is None:
            raise NotFittedError("LabeledLdaModel.fit was never called")
        if not doc:
            return self._uniform_theta()
        k = self.n_topics
        rng = self._rng
        phi = self._phi

        n_dk = np.zeros(k)
        z = rng.integers(k, size=len(doc))
        for topic in z:
            n_dk[topic] += 1
        for _ in range(self.infer_iterations):
            for i, w in enumerate(doc):
                topic = z[i]
                n_dk[topic] -= 1
                weights = (n_dk + self.alpha) * phi[:, w]
                topic = sample_index(weights, rng)
                z[i] = topic
                n_dk[topic] += 1
        theta = n_dk + self.alpha
        return theta / theta.sum()

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update(n_latent_topics=self.n_latent_topics, beta=self.beta)
        return info
