"""Latent Dirichlet Allocation trained with collapsed Gibbs sampling.

LDA (Blei, Ng & Jordan 2003) models each document as a Dirichlet-drawn
mixture over ``K`` topics, each topic as a Dirichlet-drawn distribution
over the vocabulary. This implementation is the standard collapsed Gibbs
sampler (Griffiths & Steyvers 2004):

    p(z_i = k | ...) ∝ (n_dk + α) · (n_kw + β) / (n_k + Vβ)

where counts exclude token ``i``. Hyperparameter defaults follow the
paper's tuning (Steyvers & Griffiths 2007): ``α = 50 / K``, ``β = 0.01``.

Unseen documents are folded in by running the same sampler with the
topic-word counts frozen.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.models.topic.base import TopicModel
from repro.models.topic.gibbs import notify_iteration, sample_index

__all__ = ["LdaModel"]


class LdaModel(TopicModel):
    """**LDA** with collapsed Gibbs sampling.

    Parameters
    ----------
    n_topics:
        Number of latent topics ``K`` (paper grid: 50/100/150/200).
    alpha:
        Symmetric document-topic prior; ``None`` selects the paper's
        ``50 / K``.
    beta:
        Symmetric topic-word prior (paper: 0.01).
    """

    name = "LDA"

    def __init__(
        self,
        n_topics: int = 50,
        alpha: float | None = None,
        beta: float = 0.01,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if n_topics < 1:
            raise ConfigurationError(f"n_topics must be >= 1, got {n_topics}")
        self._n_topics = n_topics
        self.alpha = 50.0 / n_topics if alpha is None else alpha
        self.beta = beta
        self._phi: np.ndarray | None = None  # K x V topic-word distributions

    @property
    def n_topics(self) -> int:
        return self._n_topics

    @property
    def phi(self) -> np.ndarray:
        """Topic-word distributions (K x V); available after fit."""
        if self._phi is None:
            raise NotFittedError("LdaModel.fit was never called")
        return self._phi

    # -- training -----------------------------------------------------------

    def _train(self, docs: list[list[int]], raw_docs: list[Sequence[str]]) -> None:
        vocab_size = len(self.vocabulary)
        k = self._n_topics
        rng = self._rng

        n_dk = np.zeros((len(docs), k))
        n_kw = np.zeros((k, vocab_size))
        n_k = np.zeros(k)
        assignments: list[np.ndarray] = []

        for d, doc in enumerate(docs):
            z = rng.integers(k, size=len(doc))
            assignments.append(z)
            for w, topic in zip(doc, z):
                n_dk[d, topic] += 1
                n_kw[topic, w] += 1
                n_k[topic] += 1

        v_beta = vocab_size * self.beta
        for iteration in range(self.iterations):
            for d, doc in enumerate(docs):
                z = assignments[d]
                for i, w in enumerate(doc):
                    topic = z[i]
                    n_dk[d, topic] -= 1
                    n_kw[topic, w] -= 1
                    n_k[topic] -= 1
                    weights = (n_dk[d] + self.alpha) * (n_kw[:, w] + self.beta) / (n_k + v_beta)
                    topic = sample_index(weights, rng)
                    z[i] = topic
                    n_dk[d, topic] += 1
                    n_kw[topic, w] += 1
                    n_k[topic] += 1
            notify_iteration(
                self.iteration_hook, self.name, iteration + 1, self.iterations,
                self._corpus_log_likelihood(docs, n_dk, n_kw, n_k, v_beta)
                if self.iteration_hook is not None else None,
            )

        self._phi = (n_kw + self.beta) / (n_k[:, None] + v_beta)

    def _corpus_log_likelihood(
        self,
        docs: list[list[int]],
        n_dk: np.ndarray,
        n_kw: np.ndarray,
        n_k: np.ndarray,
        v_beta: float,
    ) -> float:
        """Corpus log p(w | theta-hat, phi-hat) under the current counts.

        Only evaluated when an iteration hook is installed; the point
        estimates use the same smoothing as the final ``phi``.
        """
        phi = (n_kw + self.beta) / (n_k[:, None] + v_beta)
        ll = 0.0
        for d, doc in enumerate(docs):
            if not doc:
                continue
            theta = n_dk[d] + self.alpha
            theta = theta / theta.sum()
            probs = theta @ phi[:, doc]
            ll += float(np.log(np.maximum(probs, 1e-300)).sum())
        return ll

    # -- inference ------------------------------------------------------------

    def _infer(self, doc: list[int]) -> np.ndarray:
        if self._phi is None:
            raise NotFittedError("LdaModel.fit was never called")
        if not doc:
            return self._uniform_theta()
        k = self._n_topics
        rng = self._rng
        phi = self._phi

        n_dk = np.zeros(k)
        z = rng.integers(k, size=len(doc))
        for topic in z:
            n_dk[topic] += 1

        for _ in range(self.infer_iterations):
            for i, w in enumerate(doc):
                topic = z[i]
                n_dk[topic] -= 1
                weights = (n_dk + self.alpha) * phi[:, w]
                topic = sample_index(weights, rng)
                z[i] = topic
                n_dk[topic] += 1

        theta = n_dk + self.alpha
        return theta / theta.sum()

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update(n_topics=self._n_topics, alpha=round(self.alpha, 4), beta=self.beta)
        return info
