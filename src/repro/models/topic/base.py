"""Shared machinery for the topic models (PLSA, LDA, LLDA, BTM, HDP, HLDA).

All topic models in the paper follow the same usage protocol (Section 3.2,
"Using Topic Models"):

1. training documents are pooled (NP / UP / HP) into pseudo-documents;
2. a single model is trained on the pooled pseudo-documents;
3. every individual tweet's topic distribution ``theta`` is *inferred*
   from the trained model;
4. the user model is the centroid (or Rocchio combination) of her
   training tweets' distributions;
5. candidate tweets are ranked by cosine similarity to the user model.

Subclasses implement two hooks: :meth:`TopicModel._train` (fit the model
on encoded pseudo-documents) and :meth:`TopicModel._infer` (fold in one
encoded document and return its topic distribution).
"""

from __future__ import annotations

import abc
import hashlib
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, EmptyCorpusError, NotFittedError, ValidationError
from repro.models.aggregation import AggregationFunction
from repro.models.base import Doc, ProfileState, RepresentationModel
from repro.models.topic.gibbs import IterationHook
from repro.text.pooling import PoolingScheme, pool_documents
from repro.text.vocabulary import Vocabulary

__all__ = [
    "TopicModel",
    "TopicProfileState",
    "dense_cosine",
    "dense_centroid",
    "dense_rocchio",
]


def dense_cosine(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine similarity between dense vectors; 0 when either is null."""
    norm_u = float(np.linalg.norm(u))
    norm_v = float(np.linalg.norm(v))
    if norm_u == 0.0 or norm_v == 0.0:
        return 0.0
    return float(np.dot(u, v) / (norm_u * norm_v))


def _check_dense_weights(vectors: Sequence[np.ndarray], weights: Sequence[float] | None) -> None:
    if weights is not None and len(weights) != len(vectors):
        raise ValidationError(f"{len(vectors)} vectors but {len(weights)} weights")


def dense_centroid(
    vectors: Sequence[np.ndarray],
    weights: Sequence[float] | None = None,
) -> np.ndarray:
    """Mean of unit-normalised dense vectors (weighted mean when weighted)."""
    if not vectors:
        raise EmptyCorpusError("cannot build a centroid from zero vectors")
    _check_dense_weights(vectors, weights)
    if weights is None:
        total = np.zeros_like(vectors[0], dtype=float)
        for vec in vectors:
            norm = np.linalg.norm(vec)
            if norm > 0.0:
                total += vec / norm
        return total / len(vectors)
    total = np.zeros_like(vectors[0], dtype=float)
    mass = float(np.sum(np.asarray(weights, dtype=float)))
    if mass == 0.0:
        return total
    for vec, weight in zip(vectors, weights):
        if weight == 0.0:
            continue
        norm = np.linalg.norm(vec)
        if norm > 0.0:
            total += weight * (vec / norm)
    return total / mass


def dense_rocchio(
    vectors: Sequence[np.ndarray],
    labels: Sequence[int],
    alpha: float = 0.8,
    beta: float = 0.2,
    weights: Sequence[float] | None = None,
) -> np.ndarray:
    """Rocchio combination of dense positive and negative vectors.

    With ``weights``, each class normalises by its weight mass instead
    of its count; all-ones weights reproduce the unweighted result up to
    float associativity.
    """
    if len(vectors) != len(labels):
        raise ValidationError(f"{len(vectors)} vectors but {len(labels)} labels")
    if not vectors:
        raise EmptyCorpusError("cannot build a Rocchio model from zero vectors")
    _check_dense_weights(vectors, weights)
    model = np.zeros_like(vectors[0], dtype=float)
    if weights is None:
        positives = [v for v, l in zip(vectors, labels) if l == 1]
        negatives = [v for v, l in zip(vectors, labels) if l == 0]
        if positives:
            model += (alpha / len(positives)) * np.sum(
                [v / n for v in positives if (n := np.linalg.norm(v)) > 0.0], axis=0
            )
        if negatives:
            model -= (beta / len(negatives)) * np.sum(
                [v / n for v in negatives if (n := np.linalg.norm(v)) > 0.0], axis=0
            )
        return model
    positives = [(v, w) for v, l, w in zip(vectors, labels, weights) if l == 1]
    negatives = [(v, w) for v, l, w in zip(vectors, labels, weights) if l == 0]
    positive_mass = float(np.sum([w for _, w in positives])) if positives else 0.0
    if positive_mass != 0.0:
        model += (alpha / positive_mass) * np.sum(
            [w * (v / n) for v, w in positives if w != 0.0 and (n := np.linalg.norm(v)) > 0.0],
            axis=0,
        )
    negative_mass = float(np.sum([w for _, w in negatives])) if negatives else 0.0
    if negative_mass != 0.0:
        model -= (beta / negative_mass) * np.sum(
            [w * (v / n) for v, w in negatives if w != 0.0 and (n := np.linalg.norm(v)) > 0.0],
            axis=0,
        )
    return model


class TopicProfileState(ProfileState):
    """Incremental topic-mixture profile for the topic family.

    Each fold infers the document's topic distribution ``theta`` once
    and retains it -- updating a profile never re-runs Gibbs over
    history. :meth:`value` aggregates the retained mixtures exactly as
    the batch build does, so parity is by construction; with stochastic
    fold-in (``deterministic_inference`` off) the *representations*
    themselves depend on the shared RNG's draw order, which is why
    replay parity for topic models is stated with a tolerance unless
    deterministic inference is enabled.
    """

    def __init__(self, model: "TopicModel") -> None:
        super().__init__()
        self._model = model
        self._entries: list[tuple[Any, np.ndarray, int | None]] = []

    def _fold(self, key: Any, doc: Doc, label: int | None) -> None:
        self._entries.append((key, self._model.represent(doc), label))

    def _labels(self) -> list[int]:
        if any(label is None for _, _, label in self._entries):
            raise ConfigurationError("Rocchio aggregation requires labels")
        return [label for _, _, label in self._entries]  # type: ignore[misc]

    def _null_model(self) -> np.ndarray:
        return np.zeros(max(self._model.n_topics, 1))

    def value(self) -> np.ndarray:
        if not self._entries:
            return self._null_model()
        vectors = [theta for _, theta, _ in self._entries]
        if self._model.aggregation is AggregationFunction.ROCCHIO:
            return dense_rocchio(
                vectors, self._labels(), self._model.rocchio_alpha, self._model.rocchio_beta
            )
        return dense_centroid(vectors)

    def decayed(self, weight_fn: Callable[[Any], float]) -> np.ndarray:
        if not self._entries:
            return self._null_model()
        weights = [weight_fn(key) for key, _, _ in self._entries]
        vectors = [theta for _, theta, _ in self._entries]
        if self._model.aggregation is AggregationFunction.ROCCHIO:
            return dense_rocchio(
                vectors,
                self._labels(),
                self._model.rocchio_alpha,
                self._model.rocchio_beta,
                weights=weights,
            )
        return dense_centroid(vectors, weights=weights)


class TopicModel(RepresentationModel):
    """Base class implementing the pooling / centroid / cosine protocol.

    Parameters
    ----------
    pooling:
        Pseudo-document pooling scheme for training (NP / UP / HP).
    aggregation:
        How tweet distributions fuse into a user model: centroid or
        Rocchio (sum is not used with topic models in the paper).
    iterations:
        Sampler / EM iterations for training.
    infer_iterations:
        Fold-in iterations when inferring a new document's distribution.
    min_count:
        Minimum corpus frequency for a token to enter the vocabulary.
    seed:
        Seed for the model's private RNG; fixed seeds give reproducible
        fits.
    """

    def __init__(
        self,
        pooling: PoolingScheme = PoolingScheme.USER,
        aggregation: AggregationFunction = AggregationFunction.CENTROID,
        iterations: int = 200,
        infer_iterations: int = 20,
        min_count: int = 1,
        seed: int | None = 0,
        rocchio_alpha: float = 0.8,
        rocchio_beta: float = 0.2,
    ):
        aggregation = AggregationFunction(aggregation)
        if aggregation is AggregationFunction.SUM:
            raise ConfigurationError(
                "topic models use centroid or Rocchio aggregation, not sum"
            )
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        self.pooling = PoolingScheme(pooling)
        self.aggregation = aggregation
        self.iterations = iterations
        self.infer_iterations = infer_iterations
        self.min_count = min_count
        self.seed = seed
        self.rocchio_alpha = rocchio_alpha
        self.rocchio_beta = rocchio_beta
        self._rng = np.random.default_rng(seed)
        self._vocabulary: Vocabulary | None = None
        self.iteration_hook: IterationHook | None = None
        #: When on, each document's fold-in runs under a private RNG
        #: seeded from ``(seed, encoded tokens)``, making
        #: :meth:`represent` a pure function of the fitted model and the
        #: document -- the property the streaming replay driver needs
        #: for bit-exact serial-vs-parallel parity. Off by default so
        #: the paper's original numbers are untouched.
        self.deterministic_inference = False

    def set_iteration_hook(self, hook: IterationHook | None) -> "TopicModel":
        """Install (or clear) a per-training-iteration progress observer.

        The hook receives one
        :class:`~repro.models.topic.gibbs.GibbsIteration` per sweep of
        the training loop. Models that can compute their corpus
        log-likelihood cheaply include it; the computation only happens
        while a hook is installed, so uninstrumented fits pay nothing.
        """
        self.iteration_hook = hook
        return self

    # -- subclass hooks -----------------------------------------------------

    @abc.abstractmethod
    def _train(self, docs: list[list[int]], raw_docs: list[Sequence[str]]) -> None:
        """Fit the model on encoded pseudo-documents.

        ``docs[i]`` is the id-encoded token list of pseudo-document ``i``;
        ``raw_docs[i]`` is the same document's raw token sequence (needed
        by LLDA for label extraction).
        """

    @abc.abstractmethod
    def _infer(self, doc: list[int]) -> np.ndarray:
        """Topic distribution of one encoded (unseen) document."""

    @property
    @abc.abstractmethod
    def n_topics(self) -> int:
        """Number of topics after training (may be data-driven)."""

    # -- RepresentationModel API -------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        if self._vocabulary is None:
            raise NotFittedError(f"{type(self).__name__}.fit was never called")
        return self._vocabulary

    def fit(self, corpus: Sequence[Doc], user_ids: Sequence[str] | None = None) -> "TopicModel":
        """Pool, encode and train on the training corpus."""
        if not corpus:
            raise EmptyCorpusError("cannot fit a topic model on an empty corpus")
        token_docs = [list(doc.tokens) for doc in corpus]
        pooled = pool_documents(token_docs, self.pooling, user_ids=user_ids)
        raw_docs: list[Sequence[str]] = [p.tokens for p in pooled]
        self._vocabulary = Vocabulary.from_documents(raw_docs, min_count=self.min_count)
        encoded = [self._vocabulary.encode(tokens) for tokens in raw_docs]
        self._train(encoded, raw_docs)
        return self

    def _doc_rng_seed(self, encoded: list[int]) -> int:
        """Stable per-document seed: a hash of the model seed and tokens."""
        payload = f"{self.seed!r}|" + ",".join(map(str, encoded))
        digest = hashlib.sha256(payload.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def represent(self, doc: Doc) -> np.ndarray:
        if self._vocabulary is None:
            raise NotFittedError(f"{type(self).__name__}.fit was never called")
        encoded = self._vocabulary.encode(list(doc.tokens))
        if not self.deterministic_inference:
            return self._infer(encoded)
        shared_rng = self._rng
        self._rng = np.random.default_rng(self._doc_rng_seed(encoded))
        try:
            return self._infer(encoded)
        finally:
            self._rng = shared_rng

    def build_user_model(
        self,
        docs: Sequence[Doc],
        labels: Sequence[int] | None = None,
    ) -> np.ndarray:
        # A user with no training documents for this source gets a null
        # model: every candidate scores 0, as for the bag and graph
        # models' empty representations.
        if docs and self.aggregation is AggregationFunction.ROCCHIO and labels is None:
            raise ConfigurationError("Rocchio aggregation requires labels")
        return self.init_profile().update(docs, labels=labels).value()

    def init_profile(self) -> TopicProfileState:
        return TopicProfileState(self)

    def score(self, user_model: np.ndarray, doc_model: np.ndarray) -> float:
        return dense_cosine(user_model, doc_model)

    def describe(self) -> dict[str, object]:
        return {
            "model": self.name,
            "pooling": self.pooling.value,
            "aggregation": self.aggregation.value,
            "iterations": self.iterations,
        }

    def profile_params(self) -> dict[str, object]:
        params = super().profile_params()
        params["infer_iterations"] = self.infer_iterations
        params["seed"] = self.seed
        params["deterministic_inference"] = self.deterministic_inference
        if self.aggregation is AggregationFunction.ROCCHIO:
            params["rocchio_alpha"] = self.rocchio_alpha
            params["rocchio_beta"] = self.rocchio_beta
        return params

    # -- helpers for subclasses ----------------------------------------------

    def _uniform_theta(self) -> np.ndarray:
        """Fallback distribution for documents with no in-vocab tokens."""
        k = self.n_topics
        return np.full(k, 1.0 / k) if k > 0 else np.zeros(0)
