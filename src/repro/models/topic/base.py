"""Shared machinery for the topic models (PLSA, LDA, LLDA, BTM, HDP, HLDA).

All topic models in the paper follow the same usage protocol (Section 3.2,
"Using Topic Models"):

1. training documents are pooled (NP / UP / HP) into pseudo-documents;
2. a single model is trained on the pooled pseudo-documents;
3. every individual tweet's topic distribution ``theta`` is *inferred*
   from the trained model;
4. the user model is the centroid (or Rocchio combination) of her
   training tweets' distributions;
5. candidate tweets are ranked by cosine similarity to the user model.

Subclasses implement two hooks: :meth:`TopicModel._train` (fit the model
on encoded pseudo-documents) and :meth:`TopicModel._infer` (fold in one
encoded document and return its topic distribution).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError, EmptyCorpusError, NotFittedError, ValidationError
from repro.models.aggregation import AggregationFunction
from repro.models.base import Doc, RepresentationModel
from repro.models.topic.gibbs import IterationHook
from repro.text.pooling import PoolingScheme, pool_documents
from repro.text.vocabulary import Vocabulary

__all__ = ["TopicModel", "dense_cosine", "dense_centroid", "dense_rocchio"]


def dense_cosine(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine similarity between dense vectors; 0 when either is null."""
    norm_u = float(np.linalg.norm(u))
    norm_v = float(np.linalg.norm(v))
    if norm_u == 0.0 or norm_v == 0.0:
        return 0.0
    return float(np.dot(u, v) / (norm_u * norm_v))


def dense_centroid(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Mean of unit-normalised dense vectors."""
    if not vectors:
        raise EmptyCorpusError("cannot build a centroid from zero vectors")
    total = np.zeros_like(vectors[0], dtype=float)
    for vec in vectors:
        norm = np.linalg.norm(vec)
        if norm > 0.0:
            total += vec / norm
    return total / len(vectors)


def dense_rocchio(
    vectors: Sequence[np.ndarray],
    labels: Sequence[int],
    alpha: float = 0.8,
    beta: float = 0.2,
) -> np.ndarray:
    """Rocchio combination of dense positive and negative vectors."""
    if len(vectors) != len(labels):
        raise ValidationError(f"{len(vectors)} vectors but {len(labels)} labels")
    if not vectors:
        raise EmptyCorpusError("cannot build a Rocchio model from zero vectors")
    model = np.zeros_like(vectors[0], dtype=float)
    positives = [v for v, l in zip(vectors, labels) if l == 1]
    negatives = [v for v, l in zip(vectors, labels) if l == 0]
    if positives:
        model += (alpha / len(positives)) * np.sum(
            [v / n for v in positives if (n := np.linalg.norm(v)) > 0.0], axis=0
        )
    if negatives:
        model -= (beta / len(negatives)) * np.sum(
            [v / n for v in negatives if (n := np.linalg.norm(v)) > 0.0], axis=0
        )
    return model


class TopicModel(RepresentationModel):
    """Base class implementing the pooling / centroid / cosine protocol.

    Parameters
    ----------
    pooling:
        Pseudo-document pooling scheme for training (NP / UP / HP).
    aggregation:
        How tweet distributions fuse into a user model: centroid or
        Rocchio (sum is not used with topic models in the paper).
    iterations:
        Sampler / EM iterations for training.
    infer_iterations:
        Fold-in iterations when inferring a new document's distribution.
    min_count:
        Minimum corpus frequency for a token to enter the vocabulary.
    seed:
        Seed for the model's private RNG; fixed seeds give reproducible
        fits.
    """

    def __init__(
        self,
        pooling: PoolingScheme = PoolingScheme.USER,
        aggregation: AggregationFunction = AggregationFunction.CENTROID,
        iterations: int = 200,
        infer_iterations: int = 20,
        min_count: int = 1,
        seed: int | None = 0,
        rocchio_alpha: float = 0.8,
        rocchio_beta: float = 0.2,
    ):
        aggregation = AggregationFunction(aggregation)
        if aggregation is AggregationFunction.SUM:
            raise ConfigurationError(
                "topic models use centroid or Rocchio aggregation, not sum"
            )
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        self.pooling = PoolingScheme(pooling)
        self.aggregation = aggregation
        self.iterations = iterations
        self.infer_iterations = infer_iterations
        self.min_count = min_count
        self.seed = seed
        self.rocchio_alpha = rocchio_alpha
        self.rocchio_beta = rocchio_beta
        self._rng = np.random.default_rng(seed)
        self._vocabulary: Vocabulary | None = None
        self.iteration_hook: IterationHook | None = None

    def set_iteration_hook(self, hook: IterationHook | None) -> "TopicModel":
        """Install (or clear) a per-training-iteration progress observer.

        The hook receives one
        :class:`~repro.models.topic.gibbs.GibbsIteration` per sweep of
        the training loop. Models that can compute their corpus
        log-likelihood cheaply include it; the computation only happens
        while a hook is installed, so uninstrumented fits pay nothing.
        """
        self.iteration_hook = hook
        return self

    # -- subclass hooks -----------------------------------------------------

    @abc.abstractmethod
    def _train(self, docs: list[list[int]], raw_docs: list[Sequence[str]]) -> None:
        """Fit the model on encoded pseudo-documents.

        ``docs[i]`` is the id-encoded token list of pseudo-document ``i``;
        ``raw_docs[i]`` is the same document's raw token sequence (needed
        by LLDA for label extraction).
        """

    @abc.abstractmethod
    def _infer(self, doc: list[int]) -> np.ndarray:
        """Topic distribution of one encoded (unseen) document."""

    @property
    @abc.abstractmethod
    def n_topics(self) -> int:
        """Number of topics after training (may be data-driven)."""

    # -- RepresentationModel API -------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        if self._vocabulary is None:
            raise NotFittedError(f"{type(self).__name__}.fit was never called")
        return self._vocabulary

    def fit(self, corpus: Sequence[Doc], user_ids: Sequence[str] | None = None) -> "TopicModel":
        """Pool, encode and train on the training corpus."""
        if not corpus:
            raise EmptyCorpusError("cannot fit a topic model on an empty corpus")
        token_docs = [list(doc.tokens) for doc in corpus]
        pooled = pool_documents(token_docs, self.pooling, user_ids=user_ids)
        raw_docs: list[Sequence[str]] = [p.tokens for p in pooled]
        self._vocabulary = Vocabulary.from_documents(raw_docs, min_count=self.min_count)
        encoded = [self._vocabulary.encode(tokens) for tokens in raw_docs]
        self._train(encoded, raw_docs)
        return self

    def represent(self, doc: Doc) -> np.ndarray:
        if self._vocabulary is None:
            raise NotFittedError(f"{type(self).__name__}.fit was never called")
        encoded = self._vocabulary.encode(list(doc.tokens))
        return self._infer(encoded)

    def build_user_model(
        self,
        docs: Sequence[Doc],
        labels: Sequence[int] | None = None,
    ) -> np.ndarray:
        if not docs:
            # A user with no training documents for this source gets a
            # null model: every candidate scores 0, as for the bag and
            # graph models' empty representations.
            return np.zeros(max(self.n_topics, 1))
        vectors = [self.represent(d) for d in docs]
        if self.aggregation is AggregationFunction.ROCCHIO:
            if labels is None:
                raise ConfigurationError("Rocchio aggregation requires labels")
            return dense_rocchio(vectors, labels, self.rocchio_alpha, self.rocchio_beta)
        return dense_centroid(vectors)

    def score(self, user_model: np.ndarray, doc_model: np.ndarray) -> float:
        return dense_cosine(user_model, doc_model)

    def describe(self) -> dict[str, object]:
        return {
            "model": self.name,
            "pooling": self.pooling.value,
            "aggregation": self.aggregation.value,
            "iterations": self.iterations,
        }

    # -- helpers for subclasses ----------------------------------------------

    def _uniform_theta(self) -> np.ndarray:
        """Fallback distribution for documents with no in-vocab tokens."""
        k = self.n_topics
        return np.full(k, 1.0 / k) if k > 0 else np.zeros(0)
