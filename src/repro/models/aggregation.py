"""Aggregation functions that fuse document vectors into a user model.

The paper's three strategies (Section 3.2):

* **sum**      -- component-wise sum of the document vectors;
* **centroid** -- mean of the unit-normalised document vectors;
* **Rocchio**  -- weighted difference of positive and negative centroids,
  ``a/|D+| * sum(d+/|d+|) - b/|D-| * sum(d-/|d-|)`` with ``a + b = 1``
  (paper setting: ``a = 0.8``, ``b = 0.2``).

All operate on sparse ``dict[str, float]`` vectors.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Sequence

from repro.errors import ConfigurationError, ValidationError

__all__ = [
    "AggregationFunction",
    "sum_aggregate",
    "centroid_aggregate",
    "rocchio_aggregate",
    "aggregate",
]

SparseVector = dict[str, float]


class AggregationFunction(str, enum.Enum):
    """Bag-model aggregation strategies."""

    SUM = "sum"
    CENTROID = "centroid"
    ROCCHIO = "rocchio"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _normalised(vector: SparseVector) -> SparseVector:
    norm = math.sqrt(sum(w * w for w in vector.values()))
    if norm == 0.0:
        return {}
    return {g: w / norm for g, w in vector.items()}


def sum_aggregate(vectors: Sequence[SparseVector]) -> SparseVector:
    """Component-wise sum."""
    total: SparseVector = {}
    for vector in vectors:
        for g, w in vector.items():
            total[g] = total.get(g, 0.0) + w
    return total


def centroid_aggregate(vectors: Sequence[SparseVector]) -> SparseVector:
    """Mean of unit-normalised vectors."""
    if not vectors:
        return {}
    summed = sum_aggregate([_normalised(v) for v in vectors])
    count = len(vectors)
    return {g: w / count for g, w in summed.items()}


def rocchio_aggregate(
    vectors: Sequence[SparseVector],
    labels: Sequence[int],
    alpha: float = 0.8,
    beta: float = 0.2,
) -> SparseVector:
    """Rocchio user model from positive and negative examples.

    ``labels[i]`` is 1 for a positive (relevant) document and 0 for a
    negative one. If one of the classes is empty its term contributes
    nothing, which degrades gracefully to a (scaled) centroid.
    """
    if len(vectors) != len(labels):
        raise ValidationError(f"{len(vectors)} vectors but {len(labels)} labels")
    if not math.isclose(alpha + beta, 1.0, abs_tol=1e-9):
        raise ConfigurationError(f"Rocchio requires alpha + beta == 1, got {alpha} + {beta}")
    positives = [_normalised(v) for v, l in zip(vectors, labels) if l == 1]
    negatives = [_normalised(v) for v, l in zip(vectors, labels) if l == 0]

    model: SparseVector = {}
    if positives:
        scale = alpha / len(positives)
        for vector in positives:
            for g, w in vector.items():
                model[g] = model.get(g, 0.0) + scale * w
    if negatives:
        scale = beta / len(negatives)
        for vector in negatives:
            for g, w in vector.items():
                model[g] = model.get(g, 0.0) - scale * w
    return model


def aggregate(
    function: AggregationFunction,
    vectors: Sequence[SparseVector],
    labels: Sequence[int] | None = None,
    rocchio_alpha: float = 0.8,
    rocchio_beta: float = 0.2,
) -> SparseVector:
    """Dispatch to the chosen aggregation strategy.

    Rocchio requires ``labels``; the other strategies ignore them.
    """
    if function is AggregationFunction.SUM:
        return sum_aggregate(vectors)
    if function is AggregationFunction.CENTROID:
        return centroid_aggregate(vectors)
    if function is AggregationFunction.ROCCHIO:
        if labels is None:
            raise ConfigurationError("Rocchio aggregation requires positive/negative labels")
        return rocchio_aggregate(vectors, labels, rocchio_alpha, rocchio_beta)
    raise ConfigurationError(f"unknown aggregation function: {function!r}")
