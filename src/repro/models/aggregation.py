"""Aggregation functions that fuse document vectors into a user model.

The paper's three strategies (Section 3.2):

* **sum**      -- component-wise sum of the document vectors;
* **centroid** -- mean of the unit-normalised document vectors;
* **Rocchio**  -- weighted difference of positive and negative centroids,
  ``a/|D+| * sum(d+/|d+|) - b/|D-| * sum(d-/|d-|)`` with ``a + b = 1``
  (paper setting: ``a = 0.8``, ``b = 0.2``).

All operate on sparse ``dict[str, float]`` vectors.

Each strategy additionally accepts per-document ``weights`` -- the hook
the temporal-decay axis uses to age profile entries. ``weights=None``
takes the exact original code path, so undecayed aggregation stays
bit-identical to the paper's batch behaviour; weighted centroids divide
by the total weight instead of the count, and weighted Rocchio scales
each class by its weight mass, so all-ones weights reproduce the
unweighted result.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Sequence

from repro.errors import ConfigurationError, ValidationError

__all__ = [
    "AggregationFunction",
    "normalised",
    "sum_aggregate",
    "centroid_aggregate",
    "rocchio_aggregate",
    "aggregate",
]

SparseVector = dict[str, float]


class AggregationFunction(str, enum.Enum):
    """Bag-model aggregation strategies."""

    SUM = "sum"
    CENTROID = "centroid"
    ROCCHIO = "rocchio"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def normalised(vector: SparseVector) -> SparseVector:
    """Unit (L2) normalisation; the zero vector normalises to ``{}``."""
    norm = math.sqrt(sum(w * w for w in vector.values()))
    if norm == 0.0:
        return {}
    return {g: w / norm for g, w in vector.items()}


# Original private spelling, kept for callers that predate the public name.
_normalised = normalised


def _check_weights(vectors: Sequence[SparseVector], weights: Sequence[float] | None) -> None:
    if weights is not None and len(weights) != len(vectors):
        raise ValidationError(f"{len(vectors)} vectors but {len(weights)} weights")


def sum_aggregate(
    vectors: Sequence[SparseVector],
    weights: Sequence[float] | None = None,
) -> SparseVector:
    """Component-wise (optionally weighted) sum."""
    _check_weights(vectors, weights)
    total: SparseVector = {}
    if weights is None:
        for vector in vectors:
            for g, w in vector.items():
                total[g] = total.get(g, 0.0) + w
        return total
    for vector, weight in zip(vectors, weights):
        if weight == 0.0:
            continue
        for g, w in vector.items():
            total[g] = total.get(g, 0.0) + weight * w
    return total


def centroid_aggregate(
    vectors: Sequence[SparseVector],
    weights: Sequence[float] | None = None,
) -> SparseVector:
    """Mean of unit-normalised vectors (weighted mean when weighted)."""
    _check_weights(vectors, weights)
    if not vectors:
        return {}
    if weights is None:
        summed = sum_aggregate([normalised(v) for v in vectors])
        count = len(vectors)
        return {g: w / count for g, w in summed.items()}
    total_weight = math.fsum(weights)
    if total_weight == 0.0:
        return {}
    summed = sum_aggregate([normalised(v) for v in vectors], weights)
    return {g: w / total_weight for g, w in summed.items()}


def rocchio_aggregate(
    vectors: Sequence[SparseVector],
    labels: Sequence[int],
    alpha: float = 0.8,
    beta: float = 0.2,
    weights: Sequence[float] | None = None,
) -> SparseVector:
    """Rocchio user model from positive and negative examples.

    ``labels[i]`` is 1 for a positive (relevant) document and 0 for a
    negative one. If one of the classes is empty its term contributes
    nothing, which degrades gracefully to a (scaled) centroid. With
    ``weights``, each class normalises by its weight mass instead of its
    count, so a zero-weight document drops out of both numerator and
    denominator.
    """
    if len(vectors) != len(labels):
        raise ValidationError(f"{len(vectors)} vectors but {len(labels)} labels")
    _check_weights(vectors, weights)
    if not math.isclose(alpha + beta, 1.0, abs_tol=1e-9):
        raise ConfigurationError(f"Rocchio requires alpha + beta == 1, got {alpha} + {beta}")
    if weights is None:
        positives = [normalised(v) for v, l in zip(vectors, labels) if l == 1]
        negatives = [normalised(v) for v, l in zip(vectors, labels) if l == 0]

        model: SparseVector = {}
        if positives:
            scale = alpha / len(positives)
            for vector in positives:
                for g, w in vector.items():
                    model[g] = model.get(g, 0.0) + scale * w
        if negatives:
            scale = beta / len(negatives)
            for vector in negatives:
                for g, w in vector.items():
                    model[g] = model.get(g, 0.0) - scale * w
        return model

    positives = [(normalised(v), wt) for v, l, wt in zip(vectors, labels, weights) if l == 1]
    negatives = [(normalised(v), wt) for v, l, wt in zip(vectors, labels, weights) if l == 0]

    model = {}
    positive_mass = math.fsum(wt for _, wt in positives)
    if positive_mass != 0.0:
        scale = alpha / positive_mass
        for vector, wt in positives:
            if wt == 0.0:
                continue
            for g, w in vector.items():
                model[g] = model.get(g, 0.0) + scale * wt * w
    negative_mass = math.fsum(wt for _, wt in negatives)
    if negative_mass != 0.0:
        scale = beta / negative_mass
        for vector, wt in negatives:
            if wt == 0.0:
                continue
            for g, w in vector.items():
                model[g] = model.get(g, 0.0) - scale * wt * w
    return model


def aggregate(
    function: AggregationFunction,
    vectors: Sequence[SparseVector],
    labels: Sequence[int] | None = None,
    rocchio_alpha: float = 0.8,
    rocchio_beta: float = 0.2,
    weights: Sequence[float] | None = None,
) -> SparseVector:
    """Dispatch to the chosen aggregation strategy.

    Rocchio requires ``labels``; the other strategies ignore them.
    """
    if function is AggregationFunction.SUM:
        return sum_aggregate(vectors, weights)
    if function is AggregationFunction.CENTROID:
        return centroid_aggregate(vectors, weights)
    if function is AggregationFunction.ROCCHIO:
        if labels is None:
            raise ConfigurationError("Rocchio aggregation requires positive/negative labels")
        return rocchio_aggregate(vectors, labels, rocchio_alpha, rocchio_beta, weights)
    raise ConfigurationError(f"unknown aggregation function: {function!r}")
