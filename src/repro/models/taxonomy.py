"""The paper's taxonomy of representation models (Figure 1).

Three main categories by how a model handles n-gram order:

* **context-agnostic** -- ignores n-gram order entirely (the topic
  models); subcategory: *nonparametric* models whose parameter count
  grows with the data (HDP, HLDA);
* **local context-aware** -- orders characters/tokens inside each n-gram
  but ignores order between n-grams (the bag models TN, CN);
* **global context-aware** -- additionally captures order between
  n-grams (the graph models TNG, CNG).

Local and global context-aware models are collectively *context-based*;
CN and CNG form the *character-based* subcategory shared by bags and
graphs. The registry below makes all of this queryable so reports can
group results exactly as the paper's discussion does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ContextCategory", "ModelFacts", "TAXONOMY", "models_in_category", "facts_for"]


class ContextCategory(str, enum.Enum):
    """The taxonomy's three main categories."""

    CONTEXT_AGNOSTIC = "context-agnostic"
    LOCAL_CONTEXT_AWARE = "local context-aware"
    GLOBAL_CONTEXT_AWARE = "global context-aware"


@dataclass(frozen=True)
class ModelFacts:
    """Endogenous characteristics of one representation model."""

    name: str
    category: ContextCategory
    nonparametric: bool
    character_based: bool
    topic_model: bool

    @property
    def context_based(self) -> bool:
        """Local and global context-aware models together."""
        return self.category is not ContextCategory.CONTEXT_AGNOSTIC


TAXONOMY: dict[str, ModelFacts] = {
    facts.name: facts
    for facts in (
        ModelFacts("TN", ContextCategory.LOCAL_CONTEXT_AWARE, False, False, False),
        ModelFacts("CN", ContextCategory.LOCAL_CONTEXT_AWARE, False, True, False),
        ModelFacts("TNG", ContextCategory.GLOBAL_CONTEXT_AWARE, False, False, False),
        ModelFacts("CNG", ContextCategory.GLOBAL_CONTEXT_AWARE, False, True, False),
        ModelFacts("PLSA", ContextCategory.CONTEXT_AGNOSTIC, False, False, True),
        ModelFacts("LDA", ContextCategory.CONTEXT_AGNOSTIC, False, False, True),
        ModelFacts("LLDA", ContextCategory.CONTEXT_AGNOSTIC, False, False, True),
        ModelFacts("BTM", ContextCategory.CONTEXT_AGNOSTIC, False, False, True),
        ModelFacts("HDP", ContextCategory.CONTEXT_AGNOSTIC, True, False, True),
        ModelFacts("HLDA", ContextCategory.CONTEXT_AGNOSTIC, True, False, True),
    )
}


def facts_for(model_name: str) -> ModelFacts:
    """Taxonomy facts for a model name; raises ``KeyError`` if unknown."""
    return TAXONOMY[model_name]


def models_in_category(category: ContextCategory) -> tuple[str, ...]:
    """All model names in a taxonomy category, in registry order."""
    return tuple(name for name, facts in TAXONOMY.items() if facts.category is category)
