"""Similarity measures for sparse bag-model vectors.

The paper's three measures (Section 3.2):

* **CS**  -- cosine similarity;
* **JS**  -- Jaccard similarity over the supports (presence/absence);
* **GJS** -- generalized Jaccard: ``sum(min) / sum(max)`` over weights.

All three operate on sparse ``dict[str, float]`` vectors and return a
value in ``[0, 1]`` for non-negative weights. Two empty vectors are
defined to have similarity 0, matching the "no shared evidence" reading
used throughout the evaluation.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Callable, Mapping

from repro.errors import ValidationError

__all__ = [
    "VectorSimilarity",
    "cosine_similarity",
    "jaccard_similarity",
    "generalized_jaccard_similarity",
    "vector_similarity_function",
]

SparseVector = Mapping[str, float]


class VectorSimilarity(str, enum.Enum):
    """Bag-model similarity measures."""

    COSINE = "CS"
    JACCARD = "JS"
    GENERALIZED_JACCARD = "GJS"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def cosine_similarity(u: SparseVector, v: SparseVector) -> float:
    """Cosine of the angle between two sparse vectors."""
    if not u or not v:
        return 0.0
    if len(v) < len(u):
        u, v = v, u
    dot = sum(w * v[g] for g, w in u.items() if g in v)
    if dot == 0.0:
        return 0.0
    norm_u = math.sqrt(sum(w * w for w in u.values()))
    norm_v = math.sqrt(sum(w * w for w in v.values()))
    if norm_u == 0.0 or norm_v == 0.0:
        return 0.0
    return dot / (norm_u * norm_v)


def jaccard_similarity(u: SparseVector, v: SparseVector) -> float:
    """Set Jaccard over the non-zero supports of the two vectors."""
    support_u = {g for g, w in u.items() if w != 0.0}
    support_v = {g for g, w in v.items() if w != 0.0}
    if not support_u and not support_v:
        return 0.0
    union = len(support_u | support_v)
    return len(support_u & support_v) / union


def generalized_jaccard_similarity(u: SparseVector, v: SparseVector) -> float:
    """Weighted Jaccard: ``sum_k min(u_k, v_k) / sum_k max(u_k, v_k)``.

    Defined for non-negative weights; raises ``ValueError`` on negative
    inputs, for which min/max lose their overlap semantics (the paper
    never combines GJS with signed Rocchio vectors).
    """
    num = 0.0
    den = 0.0
    for g in u.keys() | v.keys():
        wu = u.get(g, 0.0)
        wv = v.get(g, 0.0)
        if wu < 0.0 or wv < 0.0:
            raise ValidationError("generalized Jaccard requires non-negative weights")
        num += min(wu, wv)
        den += max(wu, wv)
    if den == 0.0:
        return 0.0
    return num / den


_FUNCTIONS: dict[VectorSimilarity, Callable[[SparseVector, SparseVector], float]] = {
    VectorSimilarity.COSINE: cosine_similarity,
    VectorSimilarity.JACCARD: jaccard_similarity,
    VectorSimilarity.GENERALIZED_JACCARD: generalized_jaccard_similarity,
}


def vector_similarity_function(
    measure: VectorSimilarity,
) -> Callable[[SparseVector, SparseVector], float]:
    """Look up the implementation of a similarity measure."""
    return _FUNCTIONS[measure]
