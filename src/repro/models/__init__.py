"""Representation models: bag, graph and topic families.

The nine models evaluated by the paper (plus PLSA):

========  =============================  ==========================
name      class                          taxonomy category
========  =============================  ==========================
TN        TokenNGramModel                local context-aware
CN        CharacterNGramModel            local context-aware
TNG       TokenNGramGraphModel           global context-aware
CNG       CharacterNGramGraphModel       global context-aware
LDA       LdaModel                       context-agnostic
LLDA      LabeledLdaModel                context-agnostic
BTM       BitermTopicModel               context-agnostic
HDP       HdpModel                       context-agnostic (nonparam.)
HLDA      HldaModel                      context-agnostic (nonparam.)
PLSA      PlsaModel                      context-agnostic
========  =============================  ==========================
"""

from repro.models.aggregation import (
    AggregationFunction,
    aggregate,
    centroid_aggregate,
    normalised,
    rocchio_aggregate,
    sum_aggregate,
)
from repro.models.bag import BagModel, BagProfileState, CharacterNGramModel, TokenNGramModel
from repro.models.base import Doc, ProfileState, RepresentationModel, TextDoc
from repro.models.graph import (
    CharacterNGramGraphModel,
    GraphProfileState,
    GraphSimilarity,
    NGramGraph,
    TokenNGramGraphModel,
    containment_similarity,
    normalized_value_similarity,
    value_similarity,
)
from repro.models.similarity import (
    VectorSimilarity,
    cosine_similarity,
    generalized_jaccard_similarity,
    jaccard_similarity,
)
from repro.models.taxonomy import TAXONOMY, ContextCategory, ModelFacts, facts_for
from repro.models.topic import (
    BitermTopicModel,
    HdpModel,
    HldaModel,
    LabelExtractor,
    LabeledLdaModel,
    LdaModel,
    PlsaModel,
    TopicModel,
    TopicProfileState,
)
from repro.models.weighting import IdfTable, WeightingScheme

__all__ = [
    "AggregationFunction",
    "BagModel",
    "BagProfileState",
    "BitermTopicModel",
    "CharacterNGramGraphModel",
    "CharacterNGramModel",
    "ContextCategory",
    "Doc",
    "GraphProfileState",
    "GraphSimilarity",
    "HdpModel",
    "HldaModel",
    "IdfTable",
    "LabelExtractor",
    "LabeledLdaModel",
    "LdaModel",
    "ModelFacts",
    "NGramGraph",
    "PlsaModel",
    "ProfileState",
    "RepresentationModel",
    "TAXONOMY",
    "TextDoc",
    "TokenNGramGraphModel",
    "TokenNGramModel",
    "TopicModel",
    "TopicProfileState",
    "VectorSimilarity",
    "WeightingScheme",
    "aggregate",
    "centroid_aggregate",
    "containment_similarity",
    "cosine_similarity",
    "facts_for",
    "generalized_jaccard_similarity",
    "jaccard_similarity",
    "normalised",
    "normalized_value_similarity",
    "rocchio_aggregate",
    "sum_aggregate",
    "value_similarity",
]
