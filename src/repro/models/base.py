"""Common interface for all representation models.

Every model in the paper fits the same mould (Definition 2.1):

1. optionally learn corpus-level statistics from training documents
   (:meth:`RepresentationModel.fit` -- e.g. IDF tables, topic
   distributions);
2. map a single document to a structured representation
   (:meth:`RepresentationModel.represent`);
3. assemble the representations of a user's training documents into a
   single *user model* (:meth:`RepresentationModel.build_user_model`);
4. score a candidate document against a user model
   (:meth:`RepresentationModel.score`) -- higher means more relevant.

Models consume :class:`Doc` objects, a minimal structural type carrying
the normalised text and its tokens, so the same pipeline feeds
token-based, character-based and topic models.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

__all__ = ["Doc", "TextDoc", "RepresentationModel"]


@runtime_checkable
class Doc(Protocol):
    """Anything with normalised ``text`` and a ``tokens`` sequence."""

    @property
    def text(self) -> str: ...

    @property
    def tokens(self) -> Sequence[str]: ...


@dataclass(frozen=True)
class TextDoc:
    """The plain-data implementation of :class:`Doc`.

    ``text`` is the normalised (lowercased, squeezed) string used by
    character-based models; ``tokens`` is the token list used by
    token-based and topic models.
    """

    text: str
    tokens: tuple[str, ...]

    @classmethod
    def from_tokens(cls, tokens: Sequence[str]) -> "TextDoc":
        return cls(" ".join(tokens), tuple(tokens))


class RepresentationModel(abc.ABC):
    """Abstract base for the nine representation models of the paper."""

    #: Short model name as used in the paper's figures (e.g. ``"TN"``).
    name: str = "?"

    @abc.abstractmethod
    def fit(self, corpus: Sequence[Doc], user_ids: Sequence[str] | None = None) -> "RepresentationModel":
        """Learn corpus-level statistics from training documents.

        ``user_ids`` gives the author of each document; pooling-aware
        topic models need it, the others ignore it. Returns ``self``.
        """

    @abc.abstractmethod
    def represent(self, doc: Doc) -> Any:
        """Map one document to this model's representation space."""

    @abc.abstractmethod
    def build_user_model(
        self,
        docs: Sequence[Doc],
        labels: Sequence[int] | None = None,
    ) -> Any:
        """Assemble a user model from the user's training documents.

        ``labels`` marks each document as positive (1) or negative (0);
        only aggregation strategies that exploit negatives (Rocchio) read
        it. Models that do not support supervision ignore it.
        """

    @abc.abstractmethod
    def score(self, user_model: Any, doc_model: Any) -> float:
        """Similarity between a user model and a document model."""

    def describe(self) -> dict[str, Any]:
        """Human-readable configuration summary (used in reports)."""
        return {"model": self.name}

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.describe().items() if k != "model")
        return f"{type(self).__name__}({params})"
