"""Common interface for all representation models.

Every model in the paper fits the same mould (Definition 2.1):

1. optionally learn corpus-level statistics from training documents
   (:meth:`RepresentationModel.fit` -- e.g. IDF tables, topic
   distributions);
2. map a single document to a structured representation
   (:meth:`RepresentationModel.represent`);
3. assemble the representations of a user's training documents into a
   single *user model* (:meth:`RepresentationModel.build_user_model`);
4. score a candidate document against a user model
   (:meth:`RepresentationModel.score`) -- higher means more relevant.

Models consume :class:`Doc` objects, a minimal structural type carrying
the normalised text and its tokens, so the same pipeline feeds
token-based, character-based and topic models.

Profiles follow a uniform **build / update / decay** protocol: each
family implements a :class:`ProfileState` that folds documents in
incrementally (:meth:`ProfileState.update`), materialises the batch
profile on demand (:meth:`ProfileState.value`) and re-weights retained
entries without refolding the model (:meth:`ProfileState.decayed`).
``build_user_model`` is defined *through* the state, so a batch build
and a streamed sequence of updates are the same code path -- parity is
by construction, not by test alone.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

from repro.errors import ValidationError

__all__ = ["Doc", "TextDoc", "ProfileState", "RepresentationModel"]


@runtime_checkable
class Doc(Protocol):
    """Anything with normalised ``text`` and a ``tokens`` sequence."""

    @property
    def text(self) -> str: ...

    @property
    def tokens(self) -> Sequence[str]: ...


@dataclass(frozen=True)
class TextDoc:
    """The plain-data implementation of :class:`Doc`.

    ``text`` is the normalised (lowercased, squeezed) string used by
    character-based models; ``tokens`` is the token list used by
    token-based and topic models.
    """

    text: str
    tokens: tuple[str, ...]

    @classmethod
    def from_tokens(cls, tokens: Sequence[str]) -> "TextDoc":
        return cls(" ".join(tokens), tuple(tokens))


class ProfileState(abc.ABC):
    """Incremental user-profile accumulator shared by all model families.

    A state folds documents in **non-decreasing key order** -- keys are
    ``(timestamp, tweet_id)`` tuples wherever real tweets are available
    (graph merges are order-sensitive, so the fold order must be
    canonical). Each fold retains the per-document representation, which
    is what lets :meth:`decayed` re-weight history without calling
    :meth:`RepresentationModel.represent` again.

    Contract:

    * :meth:`update` may be called any number of times with any
      chunking; the final :meth:`value` is identical to a single batch
      call over the concatenated documents.
    * :meth:`value` is non-destructive and repeatable -- it returns the
      profile the family's ``build_user_model`` would have produced.
    * :meth:`decayed` returns a profile where each retained entry is
      scaled by ``weight_fn(key)``; the state itself is unchanged, and
      a weight function that returns 1.0 everywhere reproduces
      :meth:`value` exactly.
    """

    def __init__(self) -> None:
        self._last_key: Any = None
        self._seen = 0

    @property
    def count(self) -> int:
        """Number of documents folded into the profile so far."""
        return self._seen

    def update(
        self,
        docs: Sequence[Doc],
        labels: Sequence[int] | None = None,
        keys: Sequence[Any] | None = None,
    ) -> "ProfileState":
        """Fold a chunk of documents into the profile. Returns ``self``.

        ``keys`` pins the fold order: the chunk is sorted by key, and a
        key below the largest key already folded raises
        :class:`ValidationError` -- out-of-order streaming would
        silently change order-sensitive profiles (graph merges). When
        ``keys`` is omitted the positional order is used, with the
        running document index as the key.
        """
        docs = list(docs)
        if labels is not None and len(labels) != len(docs):
            raise ValidationError(
                f"labels length {len(labels)} does not match docs length {len(docs)}"
            )
        if keys is None:
            order: Sequence[int] = range(len(docs))
        else:
            keys = list(keys)
            if len(keys) != len(docs):
                raise ValidationError(
                    f"keys length {len(keys)} does not match docs length {len(docs)}"
                )
            order = sorted(range(len(docs)), key=lambda i: keys[i])
        for position, index in enumerate(order):
            key = keys[index] if keys is not None else self._seen + position
            if self._last_key is not None and key < self._last_key:
                raise ValidationError(
                    "profile updates must fold in non-decreasing "
                    f"(timestamp, tweet_id) order: key {key!r} arrived after "
                    f"{self._last_key!r}"
                )
            self._last_key = key
            label = labels[index] if labels is not None else None
            self._fold(key, docs[index], label)
        self._seen += len(docs)
        return self

    @abc.abstractmethod
    def _fold(self, key: Any, doc: Doc, label: int | None) -> None:
        """Fold one document (already order-checked) into the state."""

    @abc.abstractmethod
    def value(self) -> Any:
        """Materialise the profile exactly as a batch build would."""

    @abc.abstractmethod
    def decayed(self, weight_fn: Callable[[Any], float]) -> Any:
        """Profile with each retained entry scaled by ``weight_fn(key)``."""


class RepresentationModel(abc.ABC):
    """Abstract base for the nine representation models of the paper."""

    #: Short model name as used in the paper's figures (e.g. ``"TN"``).
    name: str = "?"

    #: Temporal weighting applied when the pipeline builds profiles
    #: (duck-typed :class:`repro.core.temporal.TemporalWeighting`;
    #: ``None`` keeps the paper's undecayed behaviour).
    temporal: Any = None

    @abc.abstractmethod
    def fit(self, corpus: Sequence[Doc], user_ids: Sequence[str] | None = None) -> "RepresentationModel":
        """Learn corpus-level statistics from training documents.

        ``user_ids`` gives the author of each document; pooling-aware
        topic models need it, the others ignore it. Returns ``self``.
        """

    @abc.abstractmethod
    def represent(self, doc: Doc) -> Any:
        """Map one document to this model's representation space."""

    @abc.abstractmethod
    def build_user_model(
        self,
        docs: Sequence[Doc],
        labels: Sequence[int] | None = None,
    ) -> Any:
        """Assemble a user model from the user's training documents.

        ``labels`` marks each document as positive (1) or negative (0);
        only aggregation strategies that exploit negatives (Rocchio) read
        it. Models that do not support supervision ignore it.
        """

    @abc.abstractmethod
    def score(self, user_model: Any, doc_model: Any) -> float:
        """Similarity between a user model and a document model."""

    def init_profile(self) -> ProfileState:
        """Fresh incremental profile state for this model.

        Each family base class provides its state; models outside the
        protocol (extensions, baselines) need not implement it.
        """
        raise NotImplementedError(f"{type(self).__name__} has no incremental profile state")

    def with_temporal(self, temporal: Any) -> "RepresentationModel":
        """Attach a temporal weighting for profile builds. Returns ``self``."""
        self.temporal = temporal
        return self

    def profile_params(self) -> dict[str, Any]:
        """Every parameter that changes a built profile's *values*.

        Feeds the ``UserProfiles`` artifact-cache key, so anything that
        alters aggregation, supervision weights or temporal decay must
        appear here -- a stale hit would silently serve profiles built
        under different parameters. Family bases extend this with their
        aggregation-affecting knobs.
        """
        params: dict[str, Any] = dict(self.describe())
        if self.temporal is not None:
            params["temporal"] = dict(self.temporal.describe())
        return params

    def describe(self) -> dict[str, Any]:
        """Human-readable configuration summary (used in reports)."""
        return {"model": self.name}

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.describe().items() if k != "model")
        return f"{type(self).__name__}({params})"
