"""Bag (vector space) representation models: TN and CN.

The token n-grams model (**TN**) and character n-grams model (**CN**)
represent every document as a sparse weighted vector over the n-grams it
contains, aggregate document vectors into a user vector, and rank by a
vector similarity (paper Section 3.2, "Bag Models").

Configuration validity rules (paper Section 4, "Parameter Tuning"):

* Jaccard similarity (JS) is applied only with BF weights;
* generalized Jaccard (GJS) only with TF and TF-IDF;
* character n-grams (CN) are never combined with TF-IDF;
* BF weights are exclusively coupled with the *sum* aggregation;
* Rocchio is used only with cosine similarity and TF/TF-IDF weights.

Violations raise :class:`~repro.errors.ConfigurationError` at
construction time.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import ConfigurationError, NotFittedError
from repro.models.aggregation import AggregationFunction, aggregate, normalised
from repro.models.base import Doc, ProfileState, RepresentationModel
from repro.models.similarity import VectorSimilarity, vector_similarity_function
from repro.models.weighting import (
    IdfTable,
    WeightingScheme,
    bf_vector,
    tf_idf_vector,
    tf_vector,
)
from repro.text.ngrams import char_ngrams, token_ngrams

__all__ = ["BagModel", "BagProfileState", "TokenNGramModel", "CharacterNGramModel"]

SparseVector = dict[str, float]


class BagProfileState(ProfileState):
    """Incremental sparse-vector profile for the bag family.

    Sum and centroid keep running accumulators, so :meth:`value` is
    O(profile) rather than O(history); both fold document vectors in the
    same order with the same float operations as the batch
    :func:`~repro.models.aggregation.aggregate`, so the result is
    bit-identical. Rocchio scales each class by ``1/len(class)``, which
    changes with every fold -- its :meth:`value` replays the batch
    :func:`~repro.models.aggregation.rocchio_aggregate` over the
    retained vectors instead, which is exact by construction.
    """

    def __init__(self, model: "BagModel") -> None:
        super().__init__()
        self._model = model
        self._entries: list[tuple[Any, SparseVector, int | None]] = []
        self._running: SparseVector = {}

    def _fold(self, key: Any, doc: Doc, label: int | None) -> None:
        vector = self._model.represent(doc)
        self._entries.append((key, vector, label))
        aggregation = self._model.aggregation
        if aggregation is AggregationFunction.SUM:
            for g, w in vector.items():
                self._running[g] = self._running.get(g, 0.0) + w
        elif aggregation is AggregationFunction.CENTROID:
            for g, w in normalised(vector).items():
                self._running[g] = self._running.get(g, 0.0) + w

    def _labels(self) -> list[int]:
        if any(label is None for _, _, label in self._entries):
            raise ConfigurationError("Rocchio aggregation requires positive/negative labels")
        return [label for _, _, label in self._entries]  # type: ignore[misc]

    def value(self) -> SparseVector:
        aggregation = self._model.aggregation
        if aggregation is AggregationFunction.SUM:
            return dict(self._running)
        if aggregation is AggregationFunction.CENTROID:
            if not self._entries:
                return {}
            count = len(self._entries)
            return {g: w / count for g, w in self._running.items()}
        return aggregate(
            aggregation,
            [vector for _, vector, _ in self._entries],
            labels=self._labels(),
            rocchio_alpha=self._model.rocchio_alpha,
            rocchio_beta=self._model.rocchio_beta,
        )

    def decayed(self, weight_fn: Callable[[Any], float]) -> SparseVector:
        weights = [weight_fn(key) for key, _, _ in self._entries]
        aggregation = self._model.aggregation
        labels = self._labels() if aggregation is AggregationFunction.ROCCHIO else None
        return aggregate(
            aggregation,
            [vector for _, vector, _ in self._entries],
            labels=labels,
            rocchio_alpha=self._model.rocchio_alpha,
            rocchio_beta=self._model.rocchio_beta,
            weights=weights,
        )


def validate_bag_configuration(
    character_based: bool,
    weighting: WeightingScheme,
    aggregation: AggregationFunction,
    similarity: VectorSimilarity,
) -> None:
    """Enforce the paper's valid-combination matrix for bag models."""
    if similarity is VectorSimilarity.JACCARD and weighting is not WeightingScheme.BF:
        raise ConfigurationError("Jaccard similarity (JS) is applied only with BF weights")
    if similarity is VectorSimilarity.GENERALIZED_JACCARD and weighting is WeightingScheme.BF:
        raise ConfigurationError("generalized Jaccard (GJS) is used only with TF and TF-IDF")
    if character_based and weighting is WeightingScheme.TF_IDF:
        raise ConfigurationError("character n-grams (CN) are not combined with TF-IDF")
    if weighting is WeightingScheme.BF and aggregation is not AggregationFunction.SUM:
        raise ConfigurationError("BF weights are exclusively coupled with sum aggregation")
    if aggregation is AggregationFunction.ROCCHIO:
        if similarity is not VectorSimilarity.COSINE:
            raise ConfigurationError("Rocchio is used only with cosine similarity")
        if weighting is WeightingScheme.BF:
            raise ConfigurationError("Rocchio is used only with TF and TF-IDF weights")


class BagModel(RepresentationModel):
    """Shared machinery for TN and CN.

    Parameters
    ----------
    n:
        N-gram size.
    weighting:
        BF, TF, or TF-IDF.
    aggregation:
        sum, centroid, or Rocchio.
    similarity:
        CS, JS, or GJS.
    rocchio_alpha, rocchio_beta:
        Rocchio mixing weights (paper: 0.8 / 0.2).
    """

    character_based: bool = False

    def __init__(
        self,
        n: int,
        weighting: WeightingScheme = WeightingScheme.TF,
        aggregation: AggregationFunction = AggregationFunction.CENTROID,
        similarity: VectorSimilarity = VectorSimilarity.COSINE,
        rocchio_alpha: float = 0.8,
        rocchio_beta: float = 0.2,
    ):
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        weighting = WeightingScheme(weighting)
        aggregation = AggregationFunction(aggregation)
        similarity = VectorSimilarity(similarity)
        validate_bag_configuration(self.character_based, weighting, aggregation, similarity)
        self.n = n
        self.weighting = weighting
        self.aggregation = aggregation
        self.similarity = similarity
        self.rocchio_alpha = rocchio_alpha
        self.rocchio_beta = rocchio_beta
        self._idf: IdfTable | None = None
        self._similarity_fn = vector_similarity_function(similarity)

    # -- n-gram extraction -------------------------------------------------

    def extract(self, doc: Doc) -> list[str]:
        """The n-grams of ``doc`` under this model's granularity."""
        raise NotImplementedError

    # -- RepresentationModel API -------------------------------------------

    def fit(self, corpus: Sequence[Doc], user_ids: Sequence[str] | None = None) -> "BagModel":
        """Learn the IDF table when the weighting scheme needs one."""
        if self.weighting is WeightingScheme.TF_IDF:
            self._idf = IdfTable().fit(self.extract(doc) for doc in corpus)
        return self

    def represent(self, doc: Doc) -> SparseVector:
        grams = self.extract(doc)
        if self.weighting is WeightingScheme.BF:
            return bf_vector(grams)
        if self.weighting is WeightingScheme.TF:
            return tf_vector(grams)
        if self._idf is None:
            raise NotFittedError("TF-IDF weighting requires fit() before represent()")
        return tf_idf_vector(grams, self._idf)

    def build_user_model(
        self,
        docs: Sequence[Doc],
        labels: Sequence[int] | None = None,
    ) -> SparseVector:
        if self.aggregation is AggregationFunction.ROCCHIO and labels is None:
            raise ConfigurationError("Rocchio aggregation requires positive/negative labels")
        return self.init_profile().update(docs, labels=labels).value()

    def init_profile(self) -> BagProfileState:
        return BagProfileState(self)

    def score(self, user_model: SparseVector, doc_model: SparseVector) -> float:
        return self._similarity_fn(user_model, doc_model)

    def describe(self) -> dict[str, object]:
        return {
            "model": self.name,
            "n": self.n,
            "weighting": self.weighting.value,
            "aggregation": self.aggregation.value,
            "similarity": self.similarity.value,
        }

    def profile_params(self) -> dict[str, object]:
        params = super().profile_params()
        if self.aggregation is AggregationFunction.ROCCHIO:
            params["rocchio_alpha"] = self.rocchio_alpha
            params["rocchio_beta"] = self.rocchio_beta
        return params


class TokenNGramModel(BagModel):
    """**TN** -- the token n-grams vector space model."""

    name = "TN"
    character_based = False

    def extract(self, doc: Doc) -> list[str]:
        return token_ngrams(list(doc.tokens), self.n)


class CharacterNGramModel(BagModel):
    """**CN** -- the character n-grams vector space model."""

    name = "CN"
    character_based = True

    def extract(self, doc: Doc) -> list[str]:
        return char_ngrams(doc.text, self.n)
