"""N-gram graph representation models: TNG and CNG.

An n-gram graph (Giannakopoulos et al., TSLP 2008) represents a document
as an undirected weighted graph: one vertex per distinct n-gram, an edge
between every pair of n-grams that co-occur within a window of ``n``
consecutive n-grams, edge weight = co-occurrence frequency. The weighted
edges capture *global* context, beyond the local context encoded inside
each n-gram.

User models are built with the *update operator* (Giannakopoulos &
Palpanas, 2010): graphs are merged one by one, and each common edge's
weight moves towards the incoming weight with a learning factor
``1 / i`` for the ``i``-th merged graph -- i.e. the user graph holds the
running average of the document edge weights, and the union of their
edge sets.

Similarity measures (paper Section 3.2): containment (CoS), value (VS)
and normalized value (NS) similarity.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterator, Sequence
from typing import Any

from repro.errors import ConfigurationError, ValidationError
from repro.models.base import Doc, ProfileState, RepresentationModel
from repro.text.ngrams import char_ngrams, token_ngrams

__all__ = [
    "NGramGraph",
    "GraphProfileState",
    "GraphSimilarity",
    "containment_similarity",
    "value_similarity",
    "normalized_value_similarity",
    "TokenNGramGraphModel",
    "CharacterNGramGraphModel",
]

Edge = tuple[str, str]


def _edge(a: str, b: str) -> Edge:
    """Canonical (sorted) key for an undirected edge."""
    return (a, b) if a <= b else (b, a)


class NGramGraph:
    """An undirected weighted graph over n-grams.

    Stored as a ``dict[Edge, float]``; vertices are implicit (the n-grams
    appearing in at least one edge). ``|G|`` -- the graph *size* used by
    every similarity measure -- is the number of edges, as in the source
    papers.
    """

    __slots__ = ("_edges",)

    def __init__(self, edges: dict[Edge, float] | None = None):
        self._edges: dict[Edge, float] = dict(edges) if edges else {}

    @classmethod
    def from_ngrams(cls, grams: Sequence[str], window: int) -> "NGramGraph":
        """Build a document graph from an n-gram sequence.

        Each n-gram is connected to the n-grams at distance 1..window in
        the sequence; every co-occurrence increments the edge weight by 1.
        Self-loops (an n-gram co-occurring with an identical n-gram) are
        kept -- they carry repetition information.
        """
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        edges: dict[Edge, float] = {}
        for i, gram in enumerate(grams):
            for j in range(i + 1, min(i + window + 1, len(grams))):
                key = _edge(gram, grams[j])
                edges[key] = edges.get(key, 0.0) + 1.0
        return cls(edges)

    # -- mapping-ish surface -------------------------------------------------

    def weight(self, a: str, b: str) -> float:
        return self._edges.get(_edge(a, b), 0.0)

    def edges(self) -> Iterator[tuple[Edge, float]]:
        return iter(self._edges.items())

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: Edge) -> bool:
        return _edge(*edge) in self._edges

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NGramGraph):
            return NotImplemented
        return self._edges == other._edges

    def __repr__(self) -> str:
        return f"NGramGraph({len(self)} edges)"

    # -- update operator -------------------------------------------------

    def updated(self, other: "NGramGraph", learning_factor: float) -> "NGramGraph":
        """Return this graph merged with ``other`` by the update operator.

        Common edges move towards the incoming weight:
        ``w = w_self + (w_other - w_self) * learning_factor``; edges only
        in ``other`` are adopted scaled by the learning factor applied to
        a zero prior, i.e. ``w = w_other * learning_factor``; edges only
        in ``self`` are kept unchanged.
        """
        if not 0.0 < learning_factor <= 1.0:
            raise ValidationError(f"learning factor must be in (0, 1], got {learning_factor}")
        merged = dict(self._edges)
        for key, w_other in other._edges.items():
            w_self = merged.get(key, 0.0)
            merged[key] = w_self + (w_other - w_self) * learning_factor
        return NGramGraph(merged)

    @classmethod
    def merge_all(cls, graphs: Sequence["NGramGraph"]) -> "NGramGraph":
        """Merge document graphs into a user graph via the update operator.

        The ``i``-th graph (1-based) is merged with learning factor
        ``1 / i``, so the result holds running-average edge weights.
        """
        model = cls()
        for i, graph in enumerate(graphs, start=1):
            model = model.updated(graph, 1.0 / i)
        return model


# -- similarity measures ------------------------------------------------------


class GraphSimilarity(str, enum.Enum):
    """Graph-model similarity measures."""

    CONTAINMENT = "CoS"
    VALUE = "VS"
    NORMALIZED_VALUE = "NS"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def containment_similarity(g1: NGramGraph, g2: NGramGraph) -> float:
    """CoS: fraction of shared edges, normalised by the smaller graph."""
    if len(g1) == 0 or len(g2) == 0:
        return 0.0
    small, large = (g1, g2) if len(g1) <= len(g2) else (g2, g1)
    shared = sum(1 for edge, _ in small.edges() if edge in large)
    return shared / len(small)


def value_similarity(g1: NGramGraph, g2: NGramGraph) -> float:
    """VS: weight-aware overlap, normalised by the larger graph."""
    if len(g1) == 0 or len(g2) == 0:
        return 0.0
    small, large = (g1, g2) if len(g1) <= len(g2) else (g2, g1)
    total = 0.0
    for (a, b), w_small in small.edges():
        w_large = large.weight(a, b)
        if w_large > 0.0 and w_small > 0.0:
            total += min(w_small, w_large) / max(w_small, w_large)
    return total / max(len(g1), len(g2))


def normalized_value_similarity(g1: NGramGraph, g2: NGramGraph) -> float:
    """NS: like VS but normalised by the *smaller* graph.

    Mitigates the imbalance between a large user graph and a small tweet
    graph, which drives VS towards 0.
    """
    if len(g1) == 0 or len(g2) == 0:
        return 0.0
    small, large = (g1, g2) if len(g1) <= len(g2) else (g2, g1)
    total = 0.0
    for (a, b), w_small in small.edges():
        w_large = large.weight(a, b)
        if w_large > 0.0 and w_small > 0.0:
            total += min(w_small, w_large) / max(w_small, w_large)
    return total / min(len(g1), len(g2))


_GRAPH_SIMILARITIES = {
    GraphSimilarity.CONTAINMENT: containment_similarity,
    GraphSimilarity.VALUE: value_similarity,
    GraphSimilarity.NORMALIZED_VALUE: normalized_value_similarity,
}


# -- the models ----------------------------------------------------------------


class GraphProfileState(ProfileState):
    """Incremental n-gram-graph profile for the graph family.

    The running user graph folds each positive document graph with
    learning factor ``1 / i`` for the ``i``-th contribution -- the exact
    sequence of :meth:`NGramGraph.updated` calls that
    :meth:`NGramGraph.merge_all` performs, so the incremental profile is
    bit-identical to the batch one. The update operator is **not**
    commutative, which is why :class:`~repro.models.base.ProfileState`
    pins the fold order to ``(timestamp, tweet_id)``.

    :meth:`decayed` refolds the retained document graphs with learning
    factor ``w_i / (w_1 + ... + w_i)`` -- the weighted running average;
    all-ones weights reduce to ``1 / i``, i.e. the undecayed profile.
    """

    def __init__(self, model: "GraphModel") -> None:
        super().__init__()
        self._model = model
        self._entries: list[tuple[Any, NGramGraph]] = []
        self._graph = NGramGraph()

    def _fold(self, key: Any, doc: Doc, label: int | None) -> None:
        if label is not None and label != 1:
            return
        graph = self._model.represent(doc)
        self._entries.append((key, graph))
        self._graph = self._graph.updated(graph, 1.0 / len(self._entries))

    def value(self) -> NGramGraph:
        return NGramGraph(dict(self._graph.edges()))

    def decayed(self, weight_fn: Callable[[Any], float]) -> NGramGraph:
        merged = NGramGraph()
        mass = 0.0
        for key, graph in self._entries:
            weight = weight_fn(key)
            if weight <= 0.0:
                continue
            mass += weight
            merged = merged.updated(graph, weight / mass)
        return merged


class GraphModel(RepresentationModel):
    """Shared machinery for TNG and CNG.

    Parameters
    ----------
    n:
        N-gram size; also the co-occurrence window size, as in the paper
        ("their window size is also n").
    similarity:
        CoS, VS, or NS.
    """

    def __init__(self, n: int, similarity: GraphSimilarity = GraphSimilarity.VALUE):
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.n = n
        self.similarity = GraphSimilarity(similarity)
        self._similarity_fn = _GRAPH_SIMILARITIES[self.similarity]

    def extract(self, doc: Doc) -> list[str]:
        raise NotImplementedError

    def fit(self, corpus: Sequence[Doc], user_ids: Sequence[str] | None = None) -> "GraphModel":
        """Graph models need no corpus-level statistics."""
        return self

    def represent(self, doc: Doc) -> NGramGraph:
        return NGramGraph.from_ngrams(self.extract(doc), window=self.n)

    def build_user_model(
        self,
        docs: Sequence[Doc],
        labels: Sequence[int] | None = None,
    ) -> NGramGraph:
        """Merge the (positive) document graphs with the update operator.

        Graph models have no negative-example mechanism; when labels are
        provided, only the positive documents contribute, otherwise all
        documents do.
        """
        return self.init_profile().update(docs, labels=labels).value()

    def init_profile(self) -> GraphProfileState:
        return GraphProfileState(self)

    def score(self, user_model: NGramGraph, doc_model: NGramGraph) -> float:
        return self._similarity_fn(user_model, doc_model)

    def describe(self) -> dict[str, object]:
        return {"model": self.name, "n": self.n, "similarity": self.similarity.value}


class TokenNGramGraphModel(GraphModel):
    """**TNG** -- token n-gram graphs."""

    name = "TNG"

    def extract(self, doc: Doc) -> list[str]:
        return token_ngrams(list(doc.tokens), self.n)


class CharacterNGramGraphModel(GraphModel):
    """**CNG** -- character n-gram graphs."""

    name = "CNG"

    def extract(self, doc: Doc) -> list[str]:
        return char_ngrams(doc.text, self.n)
