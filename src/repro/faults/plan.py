"""Deterministic fault plans: what to break, where, and on which attempt.

A :class:`FaultPlan` is a declarative, JSON-serialisable description of
the faults to inject into a sweep: *which* cells (matched by model /
source / canonical params), *where* in the evaluation (one of the four
pipeline stages, or the whole cell), *what* goes wrong (raise, hang,
crash, RSS inflation) and *when* (the first N attempts, or a seeded
pseudo-random subset). Everything is deterministic: the same plan, seed
and cell always produce the same faults, in the parent process, in any
worker, and on any retry -- so chaos tests can assert exact quarantine
sets instead of flaky approximations.

Plans travel two ways: explicitly (``repro sweep --inject-faults
plan.json`` hands the parsed plan to the executors, which ship it to
workers inside the task payload) or ambiently via the
:data:`FAULT_PLAN_ENV` environment variable, whose value is either a
path to a plan file or the inline JSON itself -- the hook CI and tests
use to break a run without touching its command line.
"""

from __future__ import annotations

import json
import os
import random
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.errors import PersistenceError, ValidationError

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FAULT_STAGES",
    "FaultPlan",
    "FaultSpec",
]

#: Environment variable activating a fault plan (path or inline JSON).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Format marker for plan files.
PLAN_FORMAT_VERSION = 1

#: What a fault can do to the stage it fires in.
FAULT_KINDS = ("raise", "hang", "crash", "inflate_rss")

#: Where a fault can fire: the four pipeline stages, or ``cell`` --
#: fired once when the evaluation of a matching cell begins, before any
#: stage runs.
FAULT_STAGES = ("cell", "prepare", "fit", "profiles", "rank")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a match predicate plus the mischief to perform.

    ``model`` / ``source`` / ``params`` restrict which cells the fault
    applies to (``None`` matches anything; ``params`` compares against
    the cell's canonical parameter JSON). ``times`` bounds the faulted
    attempts: ``times=2`` faults attempts 1 and 2 and lets attempt 3
    through -- the recipe for a flaky cell that recovers under retry --
    while the default ``None`` faults every attempt, the recipe for a
    cell that must end up quarantined. ``probability`` (with the plan
    seed) faults a deterministic pseudo-random subset of matching
    (cell, stage, attempt) sites instead of all of them.
    """

    kind: str
    stage: str = "cell"
    model: str | None = None
    source: str | None = None
    params: str | None = None
    times: int | None = None
    probability: float | None = None
    #: Hang duration; pick it well above the supervisor's cell timeout.
    seconds: float = 30.0
    #: RSS inflation size, mebibytes.
    mib: int = 64
    #: Exit code for ``crash`` faults (``os._exit``), distinctive enough
    #: to recognise in a supervisor log.
    exit_code: int = 87

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; pick from {', '.join(FAULT_KINDS)}"
            )
        if self.stage not in FAULT_STAGES:
            raise ValidationError(
                f"unknown fault stage {self.stage!r}; pick from {', '.join(FAULT_STAGES)}"
            )
        if self.times is not None and self.times < 1:
            raise ValidationError(f"times must be >= 1 or None, got {self.times}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValidationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.seconds < 0:
            raise ValidationError(f"seconds must be >= 0, got {self.seconds}")
        if self.mib < 1:
            raise ValidationError(f"mib must be >= 1, got {self.mib}")

    def matches(
        self, stage: str, model: str, source: str, params_key: str, attempt: int
    ) -> bool:
        """Whether this spec applies to one (cell, stage, attempt) site."""
        if self.stage != stage:
            return False
        if self.model is not None and self.model != model:
            return False
        if self.source is not None and self.source != source:
            return False
        if self.params is not None and self.params != params_key:
            return False
        if self.times is not None and attempt > self.times:
            return False
        return True

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "stage": self.stage}
        for key in ("model", "source", "params", "times", "probability"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        for key, default in (("seconds", 30.0), ("mib", 64), ("exit_code", 87)):
            value = getattr(self, key)
            if value != default:
                payload[key] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultSpec":
        known = {
            "kind", "stage", "model", "source", "params", "times",
            "probability", "seconds", "mib", "exit_code",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationError(f"unknown fault spec field(s): {', '.join(unknown)}")
        if "kind" not in payload:
            raise ValidationError("fault spec needs a 'kind'")
        return cls(**dict(payload))


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs it drives.

    The seed only matters for specs carrying a ``probability``: the
    decision for each (cell, stage, attempt) site is a pure function of
    (seed, site), so every process -- parent, worker, resumed run --
    agrees on exactly which sites fault.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def should_fire(
        self,
        spec: FaultSpec,
        stage: str,
        model: str,
        source: str,
        params_key: str,
        attempt: int,
    ) -> bool:
        """Whether ``spec`` fires at this site (match + seeded sampling)."""
        if not spec.matches(stage, model, source, params_key, attempt):
            return False
        if spec.probability is None:
            return True
        site = f"{self.seed}:{stage}:{model}:{source}:{params_key}:{attempt}"
        return random.Random(site).random() < spec.probability

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": PLAN_FORMAT_VERSION,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        version = payload.get("version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise PersistenceError(f"unsupported fault plan version: {version!r}")
        faults = payload.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise ValidationError("fault plan 'faults' must be a list")
        return cls(
            faults=tuple(FaultSpec.from_dict(spec) for spec in faults),
            seed=int(payload.get("seed", 0)),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise PersistenceError(f"fault plan is not valid JSON: {error}") from None
        if not isinstance(payload, Mapping):
            raise PersistenceError("fault plan must be a JSON object")
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        path = Path(path)
        if not path.exists():
            raise PersistenceError(f"fault plan file not found: {path}")
        return cls.loads(path.read_text(encoding="utf-8"))

    @classmethod
    def parse(cls, value: str) -> "FaultPlan":
        """Parse a CLI/env plan reference: inline JSON or a file path."""
        if value.lstrip().startswith("{"):
            return cls.loads(value)
        return cls.load(value)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "FaultPlan | None":
        """The ambient plan named by :data:`FAULT_PLAN_ENV`, if any."""
        source = os.environ if environ is None else environ
        value = source.get(FAULT_PLAN_ENV)
        if not value:
            return None
        return cls.parse(value)
