"""Arming fault plans around one cell evaluation.

A :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into live mischief: entering
:meth:`FaultInjector.armed` installs a stage gate (see
:func:`repro.core.stages.stage_gate`) scoped to one cell attempt, so
every stage boundary the pipeline crosses inside the scope consults the
plan and -- when a spec fires -- raises, stalls, hard-exits the process
or inflates RSS. Outside an armed scope the pipeline pays a single
truthiness check per stage, and nothing else.

The injector is deliberately process-agnostic: the serial executor arms
it around in-process evaluations, while sweep workers arm it inside
``evaluate_cell`` from the plan shipped with their task (or the ambient
``REPRO_FAULT_PLAN``), so the same plan file breaks a ``--jobs 8`` run
and a serial run identically.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.core.stages import stage_gate
from repro.errors import InjectedFaultError
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = ["FaultInjector", "maybe_armed"]

#: Touch stride for RSS inflation: one write per page keeps the kernel
#: from lazily sharing the allocation, so the sampler sees real growth.
_PAGE = 4096


class FaultInjector:
    """Fires a plan's faults at the stage boundaries of one evaluation."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    @contextmanager
    def armed(
        self, model: str, source: str, params_key: str = "", attempt: int = 1
    ) -> Iterator["_ArmedGate"]:
        """Arm the plan for one (cell, attempt); fires ``cell`` faults
        immediately, stage faults as the pipeline reaches them."""
        gate = _ArmedGate(self.plan, model, source, params_key, attempt)
        with stage_gate(gate.fire):
            gate.fire("cell")
            yield gate


class _ArmedGate:
    """The per-attempt closure installed as a stage gate."""

    __slots__ = ("plan", "model", "source", "params_key", "attempt", "fired")

    def __init__(
        self, plan: FaultPlan, model: str, source: str, params_key: str, attempt: int
    ):
        self.plan = plan
        self.model = model
        self.source = source
        self.params_key = params_key
        self.attempt = attempt
        #: (stage, kind) pairs that fired, for tests and telemetry.
        self.fired: list[tuple[str, str]] = []

    def fire(self, stage: str) -> None:
        for spec in self.plan.faults:
            if self.plan.should_fire(
                spec, stage, self.model, self.source, self.params_key, self.attempt
            ):
                self.fired.append((stage, spec.kind))
                self._trigger(spec, stage)

    def _trigger(self, spec: FaultSpec, stage: str) -> None:
        if spec.kind == "raise":
            raise InjectedFaultError(
                f"injected fault at stage {stage!r} "
                f"(cell {self.model}|{self.source}, attempt {self.attempt})"
            )
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            return
        if spec.kind == "crash":
            # A hard, unannounced death -- the closest stand-in for an
            # OOM kill or segfault. Bypasses every handler on purpose;
            # under the serial executor this takes the whole run down,
            # exactly as a real crash would.
            os._exit(spec.exit_code)
        if spec.kind == "inflate_rss":
            ballast = bytearray(spec.mib << 20)
            for offset in range(0, len(ballast), _PAGE):
                ballast[offset] = 1
            del ballast


@contextmanager
def maybe_armed(
    plan: FaultPlan | None,
    model: str,
    source: str,
    params_key: str = "",
    attempt: int = 1,
) -> Iterator["_ArmedGate | None"]:
    """Arm ``plan`` when one is given; a plain no-op scope otherwise.

    The single call site executors use, so the fault-free hot path has
    no injector object, no gate and no overhead.
    """
    if plan is None or not plan:
        yield None
        return
    with FaultInjector(plan).armed(model, source, params_key, attempt) as gate:
        yield gate
