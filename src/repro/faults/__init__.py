"""``repro.faults`` -- deterministic, seed-driven fault injection.

The sweep engine's failure paths deserve the same test coverage as its
happy paths, and failure paths only get exercised if failures can be
produced on demand. This package makes any stage of the staged
evaluation engine raise, stall, crash the worker or inflate RSS,
driven by a declarative :class:`FaultPlan`:

* build a plan in code, or load one from JSON
  (``{"version": 1, "seed": 0, "faults": [{"kind": "crash",
  "stage": "fit", "model": "TN", "source": "R"}]}``);
* activate it with ``repro sweep --inject-faults plan.json`` or the
  :data:`FAULT_PLAN_ENV` (``REPRO_FAULT_PLAN``) environment variable
  (path or inline JSON);
* the executors arm a :class:`FaultInjector` around every cell attempt
  (parent-side for serial runs, worker-side for ``--jobs N``), and the
  pipeline's stage checkpoints do the rest.

Everything is deterministic: matching is declarative, flakiness is
bounded by ``times`` (fault the first N attempts, then recover), and
``probability`` sampling is a pure function of the plan seed and the
(cell, stage, attempt) site -- the same plan always breaks the same
cells, which is what lets the chaos suite assert exact quarantine sets
and bit-identical surviving rows.
"""

from repro.faults.injector import FaultInjector, maybe_armed
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FAULT_STAGES,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FAULT_STAGES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "maybe_armed",
]
