"""repro -- reproduction of "Comparative Analysis of Content-based
Personalized Microblog Recommendations" (EDBT 2019).

The library has six layers:

* :mod:`repro.text`        -- tweet-aware text processing;
* :mod:`repro.models`      -- the 9 (+PLSA) representation models;
* :mod:`repro.twitter`     -- the synthetic Twitter substrate;
* :mod:`repro.core`        -- sources, splits, ranking, baselines, pipeline;
* :mod:`repro.eval`        -- metrics, significance tests, timing;
* :mod:`repro.experiments` -- the paper's configuration grids and reports;
* :mod:`repro.obs`         -- spans, metrics, event logs and run manifests.

Quickstart::

    from repro import (
        DatasetConfig, generate_dataset, select_user_groups,
        ExperimentPipeline, RepresentationSource, TokenNGramGraphModel,
        UserType,
    )

    dataset = generate_dataset(DatasetConfig(n_users=30, seed=0))
    groups = select_user_groups(dataset, group_size=6)
    pipeline = ExperimentPipeline(dataset)
    result = pipeline.evaluate(
        TokenNGramGraphModel(n=3), RepresentationSource.R,
        groups[UserType.ALL],
    )
    print(result.map_score)
"""

from repro.core import (
    ALL_SOURCES,
    ATOMIC_SOURCES,
    COMPOSITE_SOURCES,
    DocumentFactory,
    EvaluationResult,
    ExperimentPipeline,
    RankingRecommender,
    RepresentationSource,
)
from repro.errors import (
    ConfigurationError,
    DataGenerationError,
    EmptyCorpusError,
    NotFittedError,
    ReproError,
)
from repro.models import (
    BitermTopicModel,
    CharacterNGramGraphModel,
    CharacterNGramModel,
    HdpModel,
    HldaModel,
    LabeledLdaModel,
    LdaModel,
    PlsaModel,
    RepresentationModel,
    TextDoc,
    TokenNGramGraphModel,
    TokenNGramModel,
)
from repro.obs import RunManifest, Telemetry, Tracer
from repro.twitter import (
    DatasetConfig,
    MicroblogDataset,
    UserType,
    generate_dataset,
    select_user_groups,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_SOURCES",
    "ATOMIC_SOURCES",
    "BitermTopicModel",
    "COMPOSITE_SOURCES",
    "CharacterNGramGraphModel",
    "CharacterNGramModel",
    "ConfigurationError",
    "DataGenerationError",
    "DatasetConfig",
    "DocumentFactory",
    "EmptyCorpusError",
    "EvaluationResult",
    "ExperimentPipeline",
    "HdpModel",
    "HldaModel",
    "LabeledLdaModel",
    "LdaModel",
    "MicroblogDataset",
    "NotFittedError",
    "PlsaModel",
    "RankingRecommender",
    "RepresentationModel",
    "RepresentationSource",
    "ReproError",
    "RunManifest",
    "Telemetry",
    "TextDoc",
    "Tracer",
    "TokenNGramGraphModel",
    "TokenNGramModel",
    "UserType",
    "generate_dataset",
    "select_user_groups",
    "__version__",
]
