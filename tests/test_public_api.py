"""Contract tests for the library's public surface.

Downstream users import from the package roots; these tests pin the
advertised names so refactors cannot silently drop them.
"""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", [
        "DatasetConfig", "generate_dataset", "select_user_groups",
        "ExperimentPipeline", "RepresentationSource", "UserType",
        "TokenNGramModel", "CharacterNGramModel",
        "TokenNGramGraphModel", "CharacterNGramGraphModel",
        "LdaModel", "LabeledLdaModel", "BitermTopicModel",
        "HdpModel", "HldaModel", "PlsaModel",
        "RankingRecommender", "DocumentFactory", "TextDoc",
        "ReproError", "ConfigurationError", "NotFittedError",
    ])
    def test_advertised_names_importable(self, name):
        assert hasattr(repro, name)

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ advertises missing {name}"


class TestSubpackages:
    @pytest.mark.parametrize("module", [
        "repro.text", "repro.models", "repro.models.topic",
        "repro.twitter", "repro.core", "repro.eval",
        "repro.experiments", "repro.cli",
    ])
    def test_all_lists_are_accurate(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ advertises missing {name}"

    def test_model_registry_matches_classes(self):
        from repro.experiments.configs import MODEL_NAMES
        from repro.models.taxonomy import TAXONOMY
        # Every sweepable model is in the taxonomy (taxonomy adds PLSA).
        assert set(MODEL_NAMES) <= set(TAXONOMY)
