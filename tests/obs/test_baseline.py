"""Tests for benchmark baselines and noise-aware comparison.

The contract under test: a baseline round-trips through its JSON file
unchanged; comparing a run against itself never flags a regression;
a genuine slowdown flags exactly the slowed phase; and jitter inside
the pooled IQR stays classified as noise.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, PersistenceError
from repro.obs.baseline import (
    Baseline,
    SampleStats,
    baseline_path,
    compare_baselines,
    format_baseline,
    format_comparison,
    load_baseline,
)


def make_baseline(label: str = "seed", scale: float = 1.0, **overrides) -> Baseline:
    """A three-phase baseline; ``overrides`` scales named phases' wall time."""
    phases = {}
    for phase, wall in (("TN/R/fit", 0.5), ("TN/R/rank", 0.2), ("TN/R/total", 0.8)):
        factor = overrides.get(phase, scale)
        walls = [wall * factor * (1 + jitter) for jitter in (-0.01, 0.0, 0.01)]
        phases[phase] = {
            "wall_seconds": SampleStats.from_samples(walls),
            "peak_rss_bytes": SampleStats.from_samples([64e6, 65e6, 66e6]),
        }
    return Baseline(label=label, phases=phases, counters={"rows": 9.0})


class TestSampleStats:
    def test_median_and_iqr(self):
        stats = SampleStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.median == pytest.approx(2.5)
        assert stats.iqr == pytest.approx(1.5)
        assert (stats.minimum, stats.maximum) == (1.0, 4.0)

    def test_needs_at_least_one_sample(self):
        with pytest.raises(ConfigurationError):
            SampleStats.from_samples([])

    def test_malformed_payload_raises_persistence_error(self):
        with pytest.raises(PersistenceError):
            SampleStats.from_dict({"median": "not-a-number"})


class TestBaselineFiles:
    def test_round_trip(self, tmp_path):
        baseline = make_baseline()
        path = baseline.save(baseline_path(tmp_path, "seed"))
        assert path.name == "BENCH_seed.json"
        restored = load_baseline(path)
        assert restored.label == "seed"
        assert restored.phases.keys() == baseline.phases.keys()
        assert restored.phases["TN/R/fit"]["wall_seconds"] == (
            baseline.phases["TN/R/fit"]["wall_seconds"]
        )
        assert restored.counters == {"rows": 9.0}

    def test_label_validation(self, tmp_path):
        assert baseline_path(tmp_path, "fig7_efficiency").name == "BENCH_fig7_efficiency.json"
        with pytest.raises(ConfigurationError):
            baseline_path(tmp_path, "bad label")
        with pytest.raises(ConfigurationError):
            baseline_path(tmp_path, "../escape")

    def test_missing_file_raises_persistence_error(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_baseline(tmp_path / "BENCH_nope.json")

    def test_invalid_json_raises_persistence_error(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError):
            load_baseline(path)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda doc: doc.update(version=99),
            lambda doc: doc.pop("label"),
            lambda doc: doc.update(phases="not-a-mapping"),
            lambda doc: doc.update(phases={"TN/R/fit": {}}),
            lambda doc: doc.update(counters=[1, 2]),
        ],
    )
    def test_schema_violations_raise_persistence_error(self, tmp_path, mutate):
        doc = make_baseline().to_dict()
        mutate(doc)
        path = tmp_path / "BENCH_broken.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError):
            load_baseline(path)


class TestComparison:
    def test_same_run_has_zero_regressions(self):
        comparison = compare_baselines(make_baseline("old"), make_baseline("new"))
        assert comparison.regressions == []
        assert comparison.improvements == []
        assert all(d.classification == "stable" for d in comparison.deltas)

    def test_slowdown_flags_exactly_the_slowed_phase(self):
        # fit gets 3x slower; rank and total stay put (total's own span
        # is a separate phase entry here, so only fit should trip).
        slowed = make_baseline("new", **{"TN/R/fit": 3.0})
        comparison = compare_baselines(make_baseline("old"), slowed)
        assert [(d.phase, d.metric) for d in comparison.regressions] == [
            ("TN/R/fit", "wall_seconds")
        ]

    def test_jitter_inside_pooled_iqr_is_noise(self):
        # A 30% shift on a tiny absolute value (1ms) sits under the
        # absolute floor; a shift smaller than the pooled IQR is noise
        # even when it clears the relative threshold.
        old = Baseline(
            label="old",
            phases={
                "x/tiny": {"wall_seconds": SampleStats.from_samples([0.001, 0.001])},
                "x/noisy": {"wall_seconds": SampleStats.from_samples([1.0, 2.0, 3.0])},
            },
        )
        new = Baseline(
            label="new",
            phases={
                "x/tiny": {"wall_seconds": SampleStats.from_samples([0.0013, 0.0013])},
                "x/noisy": {"wall_seconds": SampleStats.from_samples([1.4, 2.4, 3.4])},
            },
        )
        comparison = compare_baselines(old, new)
        assert comparison.regressions == []

    def test_memory_blowup_is_gated_too(self):
        old = make_baseline("old")
        new = make_baseline("new")
        new.phases["TN/R/fit"]["peak_rss_bytes"] = SampleStats.from_samples(
            [640e6, 650e6, 660e6]
        )
        comparison = compare_baselines(old, new)
        assert [(d.phase, d.metric) for d in comparison.regressions] == [
            ("TN/R/fit", "peak_rss_bytes")
        ]

    def test_improvements_mirror_regressions(self):
        faster = make_baseline("new", **{"TN/R/rank": 0.2})
        comparison = compare_baselines(make_baseline("old"), faster)
        assert [d.phase for d in comparison.improvements] == ["TN/R/rank"]
        assert comparison.regressions == []

    def test_phase_coverage_deltas(self):
        old, new = make_baseline("old"), make_baseline("new")
        del new.phases["TN/R/rank"]
        new.phases["TN/T/fit"] = {"wall_seconds": SampleStats.from_samples([0.1])}
        comparison = compare_baselines(old, new)
        assert comparison.missing_phases == ["TN/R/rank"]
        assert comparison.added_phases == ["TN/T/fit"]

    def test_rel_threshold_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            compare_baselines(make_baseline(), make_baseline(), rel_threshold=0.0)


class TestRendering:
    def test_format_baseline_lists_every_phase(self):
        text = format_baseline(make_baseline())
        assert "baseline 'seed'" in text
        for phase in ("TN/R/fit", "TN/R/rank", "TN/R/total"):
            assert phase in text
        assert "MiB" in text  # byte metrics are humanised

    def test_text_and_markdown_and_json_outputs(self):
        comparison = compare_baselines(
            make_baseline("old"), make_baseline("new", **{"TN/R/fit": 3.0})
        )
        text = format_comparison(comparison, "text")
        assert "regression" in text and "1 regression(s)" in text
        markdown = format_comparison(comparison, "markdown")
        assert markdown.startswith("## bench compare")
        assert "| TN/R/fit |" in markdown
        payload = json.loads(format_comparison(comparison, "json"))
        assert payload["regressions"] == 1
        assert payload["old"] == "old" and payload["new"] == "new"

    def test_unknown_format_rejected(self):
        comparison = compare_baselines(make_baseline(), make_baseline())
        with pytest.raises(ConfigurationError):
            format_comparison(comparison, "yaml")
