"""Tests for structured event logging and run manifests."""

from __future__ import annotations

import json

from repro.obs.events import EventLog, JsonLinesSink, MemorySink
from repro.obs.manifest import RunManifest


class TestEventLog:
    def test_records_reach_every_sink(self):
        log = EventLog()
        first, second = MemorySink(), MemorySink()
        log.add_sink(first)
        log.add_sink(second)
        log.emit("config_result", map=0.5)
        assert len(first.records) == len(second.records) == 1
        assert first.records[0]["event"] == "config_result"
        assert first.records[0]["map"] == 0.5
        assert "ts" in first.records[0]

    def test_remove_sink_stops_delivery(self):
        log = EventLog()
        sink = MemorySink()
        log.add_sink(sink)
        log.remove_sink(sink)
        log.emit("ignored")
        assert sink.records == []

    def test_memory_sink_filters_by_event(self):
        log = EventLog()
        sink = log.add_sink(MemorySink())
        log.emit("a", n=1)
        log.emit("b")
        log.emit("a", n=2)
        assert [r["n"] for r in sink.of("a")] == [1, 2]

    def test_jsonl_sink_writes_one_valid_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        sink = JsonLinesSink(path)
        log.add_sink(sink)
        log.emit("sweep_start", configurations=9)
        log.emit("config_result", label="TN(n=3)", map=0.61)
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["event"] == "sweep_start"
        assert records[1]["label"] == "TN(n=3)"

    def test_jsonl_sink_creates_parent_directories(self, tmp_path):
        sink = JsonLinesSink(tmp_path / "deep" / "dir" / "e.jsonl")
        sink({"event": "x"})
        sink.close()
        assert (tmp_path / "deep" / "dir" / "e.jsonl").exists()


class TestSequenceNumbers:
    """Records are totally ordered by ``seq``, even across merged
    worker streams whose wall clocks tie or step backwards."""

    def test_emit_stamps_strictly_increasing_seq(self):
        log = EventLog()
        sink = log.add_sink(MemorySink())
        for n in range(5):
            log.emit("tick", n=n)
        seqs = [r["seq"] for r in sink.records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert seqs[0] == 1

    def test_forward_restamps_seq_from_the_parent_counter(self):
        parent = EventLog()
        sink = parent.add_sink(MemorySink())
        parent.emit("sweep_start")
        # A worker's record arrives carrying the *worker's* seq (1) and
        # a timestamp that ties with the parent's own records.
        worker_record = {"event": "cell_done", "ts": 0.0, "seq": 1}
        forwarded = parent.forward(worker_record)
        parent.emit("sweep_done")
        seqs = [r["seq"] for r in sink.records]
        assert seqs == [1, 2, 3]  # total order survives the merge
        assert forwarded["worker_seq"] == 1  # the ordinal is preserved

    def test_forward_without_seq_still_orders(self):
        parent = EventLog()
        sink = parent.add_sink(MemorySink())
        parent.forward({"event": "legacy", "ts": 0.0})
        assert sink.records[0]["seq"] == 1
        assert "worker_seq" not in sink.records[0]


class TestRunManifest:
    def test_create_stamps_environment(self):
        manifest = RunManifest.create(
            seed=7, dataset={"n_users": 40}, models=["TN", "LDA"], command="sweep"
        )
        assert manifest.seed == 7
        assert manifest.package_version
        assert manifest.python_version
        assert manifest.platform
        assert manifest.started_at
        assert manifest.wall_seconds is None

    def test_finish_records_wall_clock(self):
        manifest = RunManifest.create(seed=0)
        manifest.finish()
        assert manifest.wall_seconds is not None
        assert manifest.wall_seconds >= 0.0

    def test_round_trip_through_dict(self):
        manifest = RunManifest.create(
            seed=3, dataset={"n_users": 16}, models=["TN"], command="evaluate",
            note="smoke",
        ).finish()
        payload = manifest.to_dict()
        json.dumps(payload)  # must be JSON-serialisable
        restored = RunManifest.from_dict(payload)
        assert restored.seed == 3
        assert restored.dataset == {"n_users": 16}
        assert restored.models == ["TN"]
        assert restored.extra == {"note": "smoke"}
        assert restored.wall_seconds == manifest.wall_seconds
