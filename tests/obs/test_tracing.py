"""Tests for hierarchical spans and the Stopwatch-compatible adapter."""

from __future__ import annotations

import time

import pytest

from repro.eval.timing import Stopwatch
from repro.obs.tracing import Span, SpanStopwatch, Tracer, current_span_path


class TestSpanNesting:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("sweep"):
            with tracer.span("config", label="TN"):
                with tracer.span("fit"):
                    pass
                with tracer.span("rank"):
                    pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "sweep"
        (config,) = root.children
        assert config.attributes == {"label": "TN"}
        assert [c.name for c in config.children] == ["fit", "rank"]

    def test_sibling_spans_stay_siblings(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a", "b"]
        assert tracer.current is None

    def test_durations_cover_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert inner.duration >= 0.01
        assert outer.duration >= inner.duration

    def test_duration_recorded_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("boom")
        assert tracer.roots[0].duration is not None
        assert tracer.current is None

    def test_total_aggregates_across_the_tree(self):
        tracer = Tracer()
        with tracer.span("run"):
            for _ in range(3):
                with tracer.span("step"):
                    pass
        total = tracer.total("step")
        assert total == pytest.approx(
            sum(c.duration for c in tracer.roots[0].children)
        )

    def test_round_trip_through_dict(self):
        tracer = Tracer()
        with tracer.span("outer", model="TN"):
            with tracer.span("inner"):
                pass
        restored = Span.from_dict(tracer.roots[0].to_dict())
        assert restored.name == "outer"
        assert restored.attributes == {"model": "TN"}
        assert restored.children[0].name == "inner"
        assert restored.duration == tracer.roots[0].duration


class TestAttachOrdering:
    def test_attach_nests_under_the_open_span_not_the_root(self):
        # Worker span trees joined mid-sweep must land under the span
        # that is open at join time (the sweep span), exactly where an
        # in-process cell's spans would have gone -- not at the roots.
        tracer = Tracer()
        worker_tree = Span(name="config", duration=0.5)
        with tracer.span("sweep"):
            tracer.attach(worker_tree)
        (sweep,) = tracer.roots
        assert [c.name for c in sweep.children] == ["config"]

    def test_attach_with_no_open_span_lands_at_the_roots(self):
        tracer = Tracer()
        tracer.attach(Span(name="config"))
        assert [s.name for s in tracer.roots] == ["config"]

    def test_attach_under_nested_span_uses_the_innermost(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.attach(Span(name="grafted"))
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert [c.name for c in inner.children] == ["grafted"]


class TestCurrentSpanPath:
    def test_tracks_the_open_span_stack(self):
        tracer = Tracer()
        assert current_span_path() == ()
        with tracer.span("sweep"):
            with tracer.span("fit"):
                assert current_span_path() == ("sweep", "fit")
            assert current_span_path() == ("sweep",)
        assert current_span_path() == ()

    def test_spans_from_different_tracers_share_one_path(self):
        # The registry is keyed by thread, not tracer: the bench suite
        # builds one Telemetry per trial, and the profiler must see the
        # innermost span whichever tracer opened it.
        outer, inner = Tracer(), Tracer()
        with outer.span("trial"):
            with inner.span("fit"):
                assert current_span_path() == ("trial", "fit")

    def test_unknown_thread_id_is_empty(self):
        assert current_span_path(thread_id=-1) == ()


class TestSpanStopwatch:
    def test_is_a_stopwatch(self):
        watch = Tracer().stopwatch("fit")
        assert isinstance(watch, Stopwatch)
        assert isinstance(watch, SpanStopwatch)

    def test_elapsed_equals_span_total_exactly(self):
        tracer = Tracer()
        watch = tracer.stopwatch("fit")
        for _ in range(5):
            with watch.measure():
                time.sleep(0.002)
        assert watch.elapsed == tracer.total("fit")

    def test_measures_even_on_exception(self):
        tracer = Tracer()
        watch = tracer.stopwatch("fit")
        with pytest.raises(RuntimeError):
            with watch.measure():
                time.sleep(0.005)
                raise RuntimeError("boom")
        assert watch.elapsed >= 0.005
        assert watch.elapsed == tracer.total("fit")

    def test_segments_nest_under_the_active_span(self):
        tracer = Tracer()
        watch = tracer.stopwatch("fit")
        with tracer.span("evaluate"):
            with watch.measure():
                pass
        assert [c.name for c in tracer.roots[0].children] == ["fit"]

    def test_reset_keeps_recorded_spans(self):
        tracer = Tracer()
        watch = tracer.stopwatch("fit")
        with watch.measure():
            pass
        watch.reset()
        assert watch.elapsed == 0.0
        assert len(tracer.roots) == 1  # the span record is history, not state
