"""Tests for the chrome-trace, Prometheus and flamegraph exporters.

The chrome-trace contract: the output is a JSON array Perfetto can
load — metadata events naming the lanes, then one complete-duration
("ph": "X") event per span, worker-attributed spans on their own tid
lane, nesting reconstructed so children sit inside their parent's
interval.
"""

from __future__ import annotations

import json

from repro.obs.export import (
    chrome_trace_events,
    collapsed_stacks,
    format_chrome_trace,
    prometheus_exposition,
    speedscope_document,
)
from repro.obs.metrics import MetricsRegistry


def span(name, duration, children=(), resources=None, **attributes):
    payload = {"name": name, "duration": duration}
    if attributes:
        payload["attributes"] = dict(attributes)
    if children:
        payload["children"] = list(children)
    if resources:
        payload["resources"] = dict(resources)
    return payload


def trace(*spans, manifest=None):
    return {"version": 1, "manifest": manifest, "spans": list(spans)}


def complete_events(events):
    return [e for e in events if e["ph"] == "X"]


class TestChromeTrace:
    def test_round_trips_as_a_json_array(self):
        doc = trace(span("sweep", 2.0, [span("config", 1.0, model="TN")]))
        text = format_chrome_trace(doc)
        events = json.loads(text)
        assert isinstance(events, list)
        assert all(
            set(e) >= {"name", "ph", "pid", "tid"} for e in events
        )

    def test_span_tree_becomes_nested_x_events(self):
        doc = trace(
            span("evaluate", 4.0, [span("fit", 3.0), span("rank", 0.5)])
        )
        xs = complete_events(chrome_trace_events(doc))
        by_name = {e["name"]: e for e in xs}
        evaluate, fit, rank = by_name["evaluate"], by_name["fit"], by_name["rank"]
        assert evaluate["dur"] == 4.0e6 and fit["dur"] == 3.0e6
        # Children nest inside the parent interval, laid back-to-back.
        assert fit["ts"] == evaluate["ts"]
        assert rank["ts"] == fit["ts"] + fit["dur"]
        assert rank["ts"] + rank["dur"] <= evaluate["ts"] + evaluate["dur"]

    def test_worker_attribution_maps_to_tid_lanes(self):
        doc = trace(
            span(
                "sweep",
                10.0,
                [
                    span("config", 4.0, worker=0, model="TN", source="R"),
                    span("config", 5.0, worker=1, model="TNG", source="R"),
                ],
                jobs=2,
            )
        )
        events = chrome_trace_events(doc)
        xs = complete_events(events)
        tids = {e["name"]: e["tid"] for e in xs if e["name"] == "sweep"}
        assert tids["sweep"] == 0  # main lane
        worker_lanes = sorted(
            e["tid"] for e in xs if e["name"] == "config"
        )
        assert worker_lanes == [1, 2]  # one lane per worker, main excluded
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[0] == "main"
        assert names[1] == "worker-0" and names[2] == "worker-1"

    def test_unattributed_children_inherit_the_worker_lane(self):
        doc = trace(
            span(
                "sweep",
                4.0,
                [span("config", 3.0, [span("fit", 2.0)], worker=1)],
            )
        )
        xs = complete_events(chrome_trace_events(doc))
        fit = next(e for e in xs if e["name"] == "fit")
        assert fit["tid"] == 2  # rides its parent's worker lane

    def test_same_lane_roots_lay_out_sequentially(self):
        doc = trace(span("a", 1.0), span("b", 2.0))
        xs = complete_events(chrome_trace_events(doc))
        a, b = (next(e for e in xs if e["name"] == n) for n in "ab")
        assert a["ts"] == 0.0
        assert b["ts"] == a["ts"] + a["dur"]

    def test_resources_and_attributes_land_in_args(self):
        doc = trace(
            span(
                "fit", 1.0, model="TN",
                resources={"peak_rss_bytes": 1024.0, "cpu_seconds": 0.9},
            )
        )
        (fit,) = complete_events(chrome_trace_events(doc))
        assert fit["args"]["model"] == "TN"
        assert fit["args"]["peak_rss_bytes"] == 1024.0
        assert fit["args"]["cpu_seconds"] == 0.9

    def test_empty_trace_yields_process_metadata_only(self):
        events = chrome_trace_events(trace())
        assert all(e["ph"] == "M" for e in events)


class TestPrometheusExposition:
    def _metrics(self):
        registry = MetricsRegistry()
        registry.counter("sweep.cells.done").inc(7)
        registry.gauge("sweep.jobs").set(4)
        for value in (1.0, 3.0):
            registry.histogram("cell.seconds").observe(value)
        return registry.snapshot()

    def test_counter_gauge_histogram_families(self):
        text = prometheus_exposition(self._metrics())
        assert "# TYPE repro_sweep_cells_done counter" in text
        assert "repro_sweep_cells_done 7" in text
        assert "repro_sweep_jobs 4" in text
        assert "# TYPE repro_cell_seconds summary" in text
        assert "repro_cell_seconds_count 2" in text
        assert "repro_cell_seconds_sum 4" in text
        assert "repro_cell_seconds_min 1" in text
        assert "repro_cell_seconds_max 3" in text
        assert text.endswith("\n")

    def test_names_are_sanitized_and_families_sorted(self):
        text = prometheus_exposition(self._metrics(), prefix="x")
        samples = [
            line.split()[0] for line in text.splitlines()
            if not line.startswith("#")
        ]
        assert all(c.isalnum() or c in "_:" for name in samples for c in name)
        # Families render in sorted metric-name order (the derived
        # _count/_sum/_min/_max samples stay grouped with their family).
        families = ["x_cell_seconds", "x_sweep_cells_done", "x_sweep_jobs"]
        assert [text.index(f) for f in families] == sorted(
            text.index(f) for f in families
        )

    def test_unwritten_gauge_is_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        assert prometheus_exposition(registry.snapshot()) == ""

    def test_never_observed_histogram_is_omitted(self):
        # A histogram that was created but never observed used to emit
        # `_count 0` / `_sum 0` samples, polluting dashboards with dead
        # families.  It must vanish like an unwritten gauge.
        registry = MetricsRegistry()
        registry.histogram("never.observed")
        assert prometheus_exposition(registry.snapshot()) == ""

    def test_observed_histogram_still_renders_next_to_empty_one(self):
        registry = MetricsRegistry()
        registry.histogram("never.observed")
        registry.histogram("cell.seconds").observe(2.0)
        text = prometheus_exposition(registry.snapshot())
        assert "repro_cell_seconds_count 1" in text
        assert "never_observed" not in text


def profile(stacks, *, hz=97.0, samples=None, dropped=0, truncated=0,
            sample_seconds=0.01, wall_seconds=1.0):
    total = sum(s["count"] for s in stacks)
    return {
        "version": 1,
        "kind": "repro-profile",
        "hz": hz,
        "samples": total if samples is None else samples,
        "dropped": dropped,
        "truncated": truncated,
        "sample_seconds": sample_seconds,
        "wall_seconds": wall_seconds,
        "overhead_ratio": sample_seconds / wall_seconds,
        "stacks": stacks,
    }


def stack(phase, frames, count):
    return {"phase": list(phase), "frames": [list(f) for f in frames], "count": count}


class TestCollapsedStacks:
    def test_lines_join_phase_and_frames_with_counts(self):
        doc = profile([
            stack(("sweep", "fit"),
                  [("gibbs.py", "fit", 10), ("gibbs.py", "_sweep", 42)], 7),
        ])
        (line,) = collapsed_stacks(doc).splitlines()
        assert line == (
            "sweep;fit;fit (gibbs.py:10);_sweep (gibbs.py:42) 7"
        )

    def test_lines_are_sorted_for_determinism(self):
        doc = profile([
            stack(("b",), [("f.py", "g", 1)], 2),
            stack(("a",), [("f.py", "g", 1)], 3),
        ])
        lines = collapsed_stacks(doc).splitlines()
        assert lines == sorted(lines)
        assert lines[0].startswith("a;")

    def test_empty_profile_renders_empty(self):
        assert collapsed_stacks(profile([])) == ""


class TestSpeedscope:
    def _doc(self):
        return profile([
            stack(("sweep", "fit"), [("gibbs.py", "fit", 10)], 5),
            stack(("sweep", "fit"),
                  [("gibbs.py", "fit", 10), ("gibbs.py", "_sweep", 42)], 3),
            stack(("sweep", "rank"), [("rank.py", "rank", 7)], 2),
            stack((), [("sampler.py", "join", 1)], 1),
        ])

    def test_schema_and_top_level_shape(self):
        doc = speedscope_document(self._doc())
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        assert doc["activeProfileIndex"] == 0
        assert {"frames"} <= set(doc["shared"])

    def test_one_sampled_profile_per_phase(self):
        doc = speedscope_document(self._doc())
        names = [p["name"] for p in doc["profiles"]]
        assert names == ["(no span)", "sweep/fit", "sweep/rank"]
        assert all(p["type"] == "sampled" for p in doc["profiles"])

    def test_frames_are_shared_and_deduped(self):
        doc = speedscope_document(self._doc())
        frames = doc["shared"]["frames"]
        keys = [(f["name"], f["file"], f["line"]) for f in frames]
        assert len(keys) == len(set(keys))
        # The fit frame appears in two stacks but only once in the table.
        assert sum(1 for f in frames if f["name"] == "fit") == 1

    def test_weights_are_sample_counts(self):
        doc = speedscope_document(self._doc())
        fit = next(p for p in doc["profiles"] if p["name"] == "sweep/fit")
        assert sorted(fit["weights"]) == [3, 5]
        assert fit["endValue"] == 8
        assert len(fit["samples"]) == len(fit["weights"])
        frames = doc["shared"]["frames"]
        # Samples index into the shared frame table.
        for sample in fit["samples"]:
            assert all(0 <= i < len(frames) for i in sample)
