"""Tests for the chrome-trace and Prometheus exporters.

The chrome-trace contract: the output is a JSON array Perfetto can
load — metadata events naming the lanes, then one complete-duration
("ph": "X") event per span, worker-attributed spans on their own tid
lane, nesting reconstructed so children sit inside their parent's
interval.
"""

from __future__ import annotations

import json

from repro.obs.export import (
    chrome_trace_events,
    format_chrome_trace,
    prometheus_exposition,
)
from repro.obs.metrics import MetricsRegistry


def span(name, duration, children=(), resources=None, **attributes):
    payload = {"name": name, "duration": duration}
    if attributes:
        payload["attributes"] = dict(attributes)
    if children:
        payload["children"] = list(children)
    if resources:
        payload["resources"] = dict(resources)
    return payload


def trace(*spans, manifest=None):
    return {"version": 1, "manifest": manifest, "spans": list(spans)}


def complete_events(events):
    return [e for e in events if e["ph"] == "X"]


class TestChromeTrace:
    def test_round_trips_as_a_json_array(self):
        doc = trace(span("sweep", 2.0, [span("config", 1.0, model="TN")]))
        text = format_chrome_trace(doc)
        events = json.loads(text)
        assert isinstance(events, list)
        assert all(
            set(e) >= {"name", "ph", "pid", "tid"} for e in events
        )

    def test_span_tree_becomes_nested_x_events(self):
        doc = trace(
            span("evaluate", 4.0, [span("fit", 3.0), span("rank", 0.5)])
        )
        xs = complete_events(chrome_trace_events(doc))
        by_name = {e["name"]: e for e in xs}
        evaluate, fit, rank = by_name["evaluate"], by_name["fit"], by_name["rank"]
        assert evaluate["dur"] == 4.0e6 and fit["dur"] == 3.0e6
        # Children nest inside the parent interval, laid back-to-back.
        assert fit["ts"] == evaluate["ts"]
        assert rank["ts"] == fit["ts"] + fit["dur"]
        assert rank["ts"] + rank["dur"] <= evaluate["ts"] + evaluate["dur"]

    def test_worker_attribution_maps_to_tid_lanes(self):
        doc = trace(
            span(
                "sweep",
                10.0,
                [
                    span("config", 4.0, worker=0, model="TN", source="R"),
                    span("config", 5.0, worker=1, model="TNG", source="R"),
                ],
                jobs=2,
            )
        )
        events = chrome_trace_events(doc)
        xs = complete_events(events)
        tids = {e["name"]: e["tid"] for e in xs if e["name"] == "sweep"}
        assert tids["sweep"] == 0  # main lane
        worker_lanes = sorted(
            e["tid"] for e in xs if e["name"] == "config"
        )
        assert worker_lanes == [1, 2]  # one lane per worker, main excluded
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[0] == "main"
        assert names[1] == "worker-0" and names[2] == "worker-1"

    def test_unattributed_children_inherit_the_worker_lane(self):
        doc = trace(
            span(
                "sweep",
                4.0,
                [span("config", 3.0, [span("fit", 2.0)], worker=1)],
            )
        )
        xs = complete_events(chrome_trace_events(doc))
        fit = next(e for e in xs if e["name"] == "fit")
        assert fit["tid"] == 2  # rides its parent's worker lane

    def test_same_lane_roots_lay_out_sequentially(self):
        doc = trace(span("a", 1.0), span("b", 2.0))
        xs = complete_events(chrome_trace_events(doc))
        a, b = (next(e for e in xs if e["name"] == n) for n in "ab")
        assert a["ts"] == 0.0
        assert b["ts"] == a["ts"] + a["dur"]

    def test_resources_and_attributes_land_in_args(self):
        doc = trace(
            span(
                "fit", 1.0, model="TN",
                resources={"peak_rss_bytes": 1024.0, "cpu_seconds": 0.9},
            )
        )
        (fit,) = complete_events(chrome_trace_events(doc))
        assert fit["args"]["model"] == "TN"
        assert fit["args"]["peak_rss_bytes"] == 1024.0
        assert fit["args"]["cpu_seconds"] == 0.9

    def test_empty_trace_yields_process_metadata_only(self):
        events = chrome_trace_events(trace())
        assert all(e["ph"] == "M" for e in events)


class TestPrometheusExposition:
    def _metrics(self):
        registry = MetricsRegistry()
        registry.counter("sweep.cells.done").inc(7)
        registry.gauge("sweep.jobs").set(4)
        for value in (1.0, 3.0):
            registry.histogram("cell.seconds").observe(value)
        return registry.snapshot()

    def test_counter_gauge_histogram_families(self):
        text = prometheus_exposition(self._metrics())
        assert "# TYPE repro_sweep_cells_done counter" in text
        assert "repro_sweep_cells_done 7" in text
        assert "repro_sweep_jobs 4" in text
        assert "# TYPE repro_cell_seconds summary" in text
        assert "repro_cell_seconds_count 2" in text
        assert "repro_cell_seconds_sum 4" in text
        assert "repro_cell_seconds_min 1" in text
        assert "repro_cell_seconds_max 3" in text
        assert text.endswith("\n")

    def test_names_are_sanitized_and_families_sorted(self):
        text = prometheus_exposition(self._metrics(), prefix="x")
        samples = [
            line.split()[0] for line in text.splitlines()
            if not line.startswith("#")
        ]
        assert all(c.isalnum() or c in "_:" for name in samples for c in name)
        # Families render in sorted metric-name order (the derived
        # _count/_sum/_min/_max samples stay grouped with their family).
        families = ["x_cell_seconds", "x_sweep_cells_done", "x_sweep_jobs"]
        assert [text.index(f) for f in families] == sorted(
            text.index(f) for f in families
        )

    def test_unwritten_gauge_is_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        assert prometheus_exposition(registry.snapshot()) == ""
