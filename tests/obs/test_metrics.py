"""Tests for the metrics registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("hits").inc(-1)


class TestGauge:
    def test_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("ll").set(-120.5)
        registry.gauge("ll").set(-80.25)
        assert registry.gauge("ll").value == -80.25

    def test_never_written_gauge_serialises_stably(self):
        # Regression: a gauge that was registered but never set used to
        # emit {"value": None} with nothing marking it unwritten, which
        # downstream schema checks read as a written null.
        registry = MetricsRegistry()
        payload = registry.gauge("ll").to_dict()
        assert payload == {"type": "gauge", "value": None, "written": False}
        registry.gauge("ll").set(-80.25)
        assert registry.gauge("ll").to_dict() == {
            "type": "gauge",
            "value": -80.25,
            "written": True,
        }

    def test_unwritten_gauge_merges_as_a_no_op(self):
        registry = MetricsRegistry()
        registry.gauge("ll").set(-1.0)
        registry.merge({"ll": {"type": "gauge", "value": None, "written": False}})
        assert registry.gauge("ll").value == -1.0


class TestHistogram:
    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_empty_mean_is_none(self):
        assert MetricsRegistry().histogram("latency").mean is None


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.5)
        registry.histogram("c").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b", "c"]
        assert snapshot["b"] == {"type": "counter", "value": 2}
        assert snapshot["a"]["type"] == "gauge"
        assert snapshot["c"]["count"] == 1
