"""Tests for the live sweep progress tracker and monitor loaders.

All timing in the tracker derives from the ``ts`` stamps the event
records carry, so these tests drive it with synthetic records at chosen
timestamps and assert the derived state — no sleeping, no wall clock.
"""

from __future__ import annotations

import io
import json

from repro.obs.events import EventLog
from repro.obs.progress import (
    ProgressLineSink,
    SweepProgressTracker,
    format_snapshot,
    load_progress,
)


def feed(tracker, *records):
    for record in records:
        tracker.consume(record)


def ev(event, ts, **fields):
    return {"event": event, "ts": ts, **fields}


class TestSweepProgressTracker:
    def test_counts_done_total_restored(self):
        tracker = SweepProgressTracker()
        feed(
            tracker,
            ev("sweep_start", 0.0, jobs=2),
            ev("cell_restored", 0.1),
            ev("cell_dispatched", 0.2),
            ev("cell_dispatched", 0.3),
            ev("cell_joined", 5.0),
        )
        assert tracker.total == 3
        assert tracker.done == 2  # one restored + one joined
        assert tracker.restored == 1
        assert tracker.remaining == 1

    def test_worker_occupancy_follows_started_finished(self):
        tracker = SweepProgressTracker()
        feed(
            tracker,
            ev("sweep_start", 0.0, jobs=2),
            ev("cell_started", 1.0, cell="TN|R|{}", worker=0, attempt=1),
            ev("cell_started", 1.5, cell="LDA|R|{}", worker=1, attempt=2),
        )
        assert tracker.workers_busy() == 2
        snapshot = tracker.snapshot()
        assert snapshot["workers"]["0"]["cell"] == "TN|R|{}"
        assert snapshot["workers"]["1"]["attempt"] == 2
        # busy_seconds measured against the latest ts seen (1.5).
        assert snapshot["workers"]["0"]["busy_seconds"] == 0.5
        feed(tracker, ev("cell_finished", 4.0, cell="TN|R|{}", worker=0,
                        attempt=1, status="ok", seconds=3.0))
        assert tracker.workers_busy() == 1
        assert tracker.snapshot()["workers"]["0"] is None

    def test_ewma_and_eta_from_join_intervals(self):
        tracker = SweepProgressTracker(ewma_alpha=0.5)
        feed(
            tracker,
            ev("sweep_start", 0.0),
            *[ev("cell_dispatched", 0.0) for _ in range(4)],
            ev("cell_joined", 10.0),  # first interval: 10s from start
        )
        assert tracker.ewma_cell_seconds() == 10.0
        assert tracker.eta_seconds() == 30.0  # 3 remaining x 10s
        feed(tracker, ev("cell_joined", 30.0))  # 20s interval
        assert tracker.ewma_cell_seconds() == 15.0  # 0.5*20 + 0.5*10
        assert tracker.eta_seconds() == 30.0  # 2 remaining x 15s

    def test_eta_unknown_before_first_join_and_zero_when_done(self):
        tracker = SweepProgressTracker()
        feed(tracker, ev("sweep_start", 0.0), ev("cell_dispatched", 0.1))
        assert tracker.eta_seconds() is None
        feed(tracker, ev("cell_joined", 1.0), ev("sweep_done", 1.1))
        assert tracker.finished
        assert tracker.eta_seconds() == 0.0

    def test_health_counters(self):
        tracker = SweepProgressTracker()
        feed(
            tracker,
            ev("cell_retry", 1.0),
            ev("cell_quarantined", 2.0),
            ev("config_skipped", 3.0),
        )
        assert (tracker.retries, tracker.quarantined, tracker.skipped) == (1, 1, 1)

    def test_works_as_an_event_log_sink(self):
        log = EventLog()
        tracker = log.add_sink(SweepProgressTracker())
        log.emit("cell_dispatched")
        log.emit("cell_joined")
        assert tracker.done == 1 and tracker.total == 1

    def test_snapshot_is_json_ready(self):
        tracker = SweepProgressTracker()
        feed(
            tracker,
            ev("sweep_start", 0.0, jobs=1),
            ev("cell_dispatched", 0.0),
            ev("cell_started", 0.1, cell="TN|R|{}", worker=0, attempt=1),
        )
        json.dumps(tracker.snapshot())


class TestFormatSnapshot:
    def test_renders_counts_eta_and_workers(self):
        tracker = SweepProgressTracker()
        feed(
            tracker,
            ev("sweep_start", 0.0, jobs=2),
            *[ev("cell_dispatched", 0.0) for _ in range(4)],
            ev("cell_started", 0.1, cell="TN|R|{}", worker=0, attempt=1),
            ev("cell_joined", 2.0),
            ev("cell_quarantined", 2.5),
        )
        text = format_snapshot(tracker.snapshot())
        assert "sweep running: 1/4 cells (25%)" in text
        assert "1 quarantined" in text
        assert "eta" in text
        assert "w0  TN|R|{} attempt 1" in text
        assert "w1  idle" in text

    def test_finished_snapshot_says_done(self):
        tracker = SweepProgressTracker()
        feed(
            tracker,
            ev("cell_dispatched", 0.0),
            ev("cell_joined", 1.0),
            ev("sweep_done", 1.0),
        )
        assert "sweep done: 1/1 cells" in format_snapshot(tracker.snapshot())


class TestProgressLineSink:
    def test_writes_self_overwriting_line(self):
        stream = io.StringIO()
        sink = ProgressLineSink(stream=stream)
        log = EventLog()
        log.add_sink(sink)
        log.emit("sweep_start", jobs=1)
        log.emit("cell_dispatched")
        log.emit("cell_dispatched")
        log.emit("cell_joined")
        log.emit("sweep_done")
        output = stream.getvalue()
        assert "\rcells 1/2" in output
        assert output.endswith("\n")  # finalised at sweep_done

    def test_quarantines_surface_on_the_line(self):
        stream = io.StringIO()
        sink = ProgressLineSink(stream=stream)
        sink(ev("cell_dispatched", 0.0))
        sink(ev("cell_quarantined", 1.0))
        assert "1 quarantined" in stream.getvalue()


class TestLoadProgress:
    def test_replays_an_events_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        records = [
            ev("sweep_start", 0.0, jobs=1, seq=1),
            ev("cell_dispatched", 0.0, seq=2),
            ev("cell_dispatched", 0.0, seq=3),
            ev("cell_joined", 2.0, seq=4),
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        snapshot = load_progress(path)
        assert snapshot["done"] == 1 and snapshot["total"] == 2
        assert snapshot["eta_seconds"] == 2.0

    def test_orders_replay_by_seq_not_file_position(self, tmp_path):
        path = tmp_path / "events.jsonl"
        # A merged log flushed out of order: sweep_done written first.
        records = [
            ev("sweep_done", 3.0, seq=4),
            ev("sweep_start", 0.0, seq=1),
            ev("cell_dispatched", 0.0, seq=2),
            ev("cell_joined", 2.0, seq=3),
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        snapshot = load_progress(path)
        assert snapshot["finished"] is True
        assert snapshot["done"] == 1

    def test_tolerates_a_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps(ev("cell_dispatched", 0.0, seq=1))
            + "\n"
            + '{"event": "cell_joi'
        )
        assert load_progress(path)["total"] == 1

    def test_reads_journal_heartbeats(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        heartbeat = {
            "record": "heartbeat", "done": 3, "total": 9,
            "eta_seconds": 12.0, "finished": False,
        }
        lines = [
            {"format": "repro-sweep-journal", "version": 1},
            {"record": "heartbeat", "done": 1, "total": 9,
             "eta_seconds": 40.0, "finished": False},
            heartbeat,
        ]
        path.write_text("\n".join(json.dumps(e) for e in lines) + "\n")
        snapshot = load_progress(path)
        assert snapshot["done"] == 3 and snapshot["total"] == 9
        assert snapshot["eta_seconds"] == 12.0  # last heartbeat wins
        assert "record" not in snapshot

    def test_legacy_journal_without_heartbeats_counts_cells(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        cell = {
            "cell": "TN|R|{}", "model": "TN", "params": {}, "source": "R",
            "per_user_ap": {"1": 0.5}, "training_seconds": 1.0,
            "testing_seconds": 0.1, "failure": None,
        }
        quarantined = dict(cell, cell="LDA|R|{}", failure={"kind": "crash"})
        lines = [{"format": "repro-sweep-journal", "version": 1}, cell, quarantined]
        path.write_text("\n".join(json.dumps(e) for e in lines) + "\n")
        snapshot = load_progress(path)
        assert snapshot["done"] == 2
        assert snapshot["quarantined"] == 1
        assert snapshot["total"] is None  # unknowable without heartbeats
