"""Tests for the trace-report renderers.

Covers the tree shapes the pipeline actually produces: deeply nested
span chains, same-named sibling runs that merge into one ``xN`` line,
and parallel (``--jobs``) traces where worker span forests were
absorbed into the parent -- plus the resource-breakdown columns.
"""

from __future__ import annotations

from repro.obs.report import (
    critical_path,
    diff_profiles,
    format_critical_path,
    format_hotspots,
    format_profile_diff,
    format_resource_breakdown,
    format_timing_breakdown,
)
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import Span


def span(name, duration, children=(), resources=None, **attributes):
    payload = {"name": name, "duration": duration}
    if attributes:
        payload["attributes"] = dict(attributes)
    if children:
        payload["children"] = list(children)
    if resources:
        payload["resources"] = dict(resources)
    return payload


def trace(*spans, manifest=None):
    return {"version": 1, "manifest": manifest, "spans": list(spans)}


class TestTimingBreakdown:
    def test_deeply_nested_chain_indents_per_level(self):
        doc = trace(
            span(
                "evaluate",
                4.0,
                [span("fit", 3.0, [span("gibbs", 2.5, [span("sweep", 2.0)])])],
            )
        )
        text = format_timing_breakdown(doc)
        lines = text.splitlines()
        evaluate = next(line for line in lines if line.startswith("evaluate"))
        sweep = next(line for line in lines if "sweep" in line)
        assert evaluate.index("evaluate") == 0
        assert sweep.index("sweep") == 6  # three levels down, two spaces each

    def test_same_named_siblings_merge_with_count_and_sum(self):
        doc = trace(
            span(
                "evaluate",
                4.0,
                [
                    span("profiles", 1.0, [span("user", 0.5)]),
                    span("profiles", 2.0, [span("user", 1.5)]),
                ],
            )
        )
        text = format_timing_breakdown(doc)
        assert "profiles x2" in text
        merged = next(line for line in text.splitlines() if "profiles" in line)
        assert "3.000s" in merged
        # Children of all merged members roll up under the one line.
        user = next(line for line in text.splitlines() if "user" in line)
        assert "x2" in user and "2.000s" in user

    def test_parallel_trace_rolls_up_all_workers(self):
        # Two workers evaluated one cell each; the parent absorbed both
        # forests. TTime/ETime must sum across the workers' trees.
        parent = Telemetry()
        for model, fit, rank in (("TN", 1.0, 0.25), ("LDA", 2.0, 0.5)):
            worker = trace(
                span(
                    "evaluate",
                    fit + rank,
                    [span("fit", fit), span("profiles", 0.0), span("rank", rank)],
                    model=model,
                    source="R",
                )
            )
            parent.absorb({"spans": worker["spans"]})
        text = format_timing_breakdown(parent.trace_payload())
        assert "evaluate x2" in text
        assert "TTime (fit + profiles) = 3.000s" in text
        assert "ETime (rank)           = 0.750s" in text

    def test_empty_trace_reports_no_spans(self):
        assert "(no spans recorded)" in format_timing_breakdown(trace())

    def test_manifest_line_renders_provenance(self):
        doc = trace(
            span("evaluate", 1.0),
            manifest={"command": "evaluate", "seed": 7, "package_version": "1.0.0"},
        )
        text = format_timing_breakdown(doc)
        assert "run: evaluate, seed=7, repro 1.0.0" in text


class TestResourceBreakdown:
    def test_columns_render_cpu_and_rss(self):
        doc = trace(
            span(
                "evaluate",
                1.0,
                [span("fit", 0.8, resources={"cpu_seconds": 0.7, "peak_rss_bytes": 96e6})],
                resources={"cpu_seconds": 0.9, "peak_rss_bytes": 100e6},
            )
        )
        text = format_resource_breakdown(doc)
        assert "wall" in text and "cpu" in text and "rss" in text
        fit = next(line for line in text.splitlines() if "fit" in line)
        assert "0.700s" in fit and "91.6M" in fit
        assert "peak RSS = 95.4 MiB" in text

    def test_merged_siblings_sum_cpu_and_max_rss(self):
        doc = trace(
            span("rank", 1.0, resources={"cpu_seconds": 0.4, "peak_rss_bytes": 50e6}),
            span("rank", 2.0, resources={"cpu_seconds": 0.6, "peak_rss_bytes": 80e6}),
        )
        text = format_resource_breakdown(doc)
        merged = next(line for line in text.splitlines() if "rank x2" in line)
        assert "3.000s" in merged  # wall adds up
        assert "1.000s" in merged  # cpu adds up
        assert "76.3M" in merged  # rss takes the max (80e6 bytes)

    def test_parent_without_samples_inherits_deep_peak(self):
        # Absorbed parallel traces often have bare wrapper spans above
        # resource-carrying worker spans: the deep max must surface.
        doc = trace(
            span(
                "config",
                3.0,
                [span("evaluate", 2.9, resources={"peak_rss_bytes": 70e6})],
            )
        )
        text = format_resource_breakdown(doc)
        config = next(line for line in text.splitlines() if line.startswith("config"))
        assert "66.8M" in config  # deep peak, not a dash
        assert "-" in config  # but no cpu samples of its own

    def test_unsampled_trace_suggests_the_flag(self):
        doc = trace(span("evaluate", 1.0))
        text = format_resource_breakdown(doc)
        assert "--profile-resources" in text


def sweep_trace():
    """A --jobs 2 sweep: one straggler cell, three quick ones."""
    def cell(model, duration, worker, fit, rank):
        return span(
            "config", duration,
            [span("evaluate", fit + rank, [span("fit", fit), span("rank", rank)])],
            model=model, label=model, source="R", worker=worker, attempt=1,
        )

    return trace(
        span(
            "sweep", 10.0,
            [
                cell("LDA", 9.0, 0, fit=8.0, rank=0.8),  # the straggler
                cell("TN", 2.0, 1, fit=1.5, rank=0.4),
                cell("TNG", 3.0, 1, fit=2.0, rank=0.9),
                cell("BTM", 4.0, 0, fit=3.0, rank=0.9),
            ],
            jobs=2,
        )
    )


class TestCriticalPath:
    def test_chain_descends_the_longest_child(self):
        spans = [Span.from_dict(p) for p in sweep_trace()["spans"]]
        chain = critical_path(spans)
        assert [s.name for s in chain] == ["sweep", "config", "evaluate", "fit"]
        assert chain[1].attributes["model"] == "LDA"
        assert chain[-1].duration == 8.0

    def test_report_renders_chain_with_self_times(self):
        text = format_critical_path(sweep_trace())
        lines = text.splitlines()
        assert lines[0] == "critical path (serial chain through the sweep)"
        sweep_line = next(line for line in lines if line.startswith("sweep"))
        # 4 cells x 18s child time overlap the 10s makespan: self time
        # clamps at zero instead of going negative.
        assert "self 0.000s" in sweep_line
        fit = next(line for line in lines if line.strip().startswith("fit"))
        assert "8.000s" in fit

    def test_phase_rollup_separates_self_and_child_time(self):
        text = format_critical_path(sweep_trace())
        lines = text.splitlines()
        header = next(i for i, l in enumerate(lines) if l.startswith("phase"))
        table = lines[header + 1:header + 6]
        # Sorted by total, descending: the 4 cells' summed 18s beats the
        # sweep's own 10s makespan.
        assert table[0].startswith("config")
        fit_row = next(line for line in table if line.startswith("fit"))
        assert "14.500s" in fit_row  # 8 + 1.5 + 2 + 3, all self time
        config_row = next(line for line in table if line.startswith("config"))
        # config total 18s; evaluate children cover 17.5s -> self 0.5s
        assert "18.000s" in config_row and "17.500s" in config_row

    def test_stragglers_ranked_with_identity_and_attribution(self):
        text = format_critical_path(sweep_trace(), top=2)
        assert "top 2 straggler cells" in text
        lines = text.splitlines()
        first = next(line for line in lines if line.lstrip().startswith("1."))
        assert "LDA on R" in first
        assert "[worker 0, attempt 1]" in first
        assert "9.000s" in first
        second = next(line for line in lines if line.lstrip().startswith("2."))
        assert "BTM on R" in second

    def test_parallel_efficiency_uses_the_jobs_attribute(self):
        text = format_critical_path(sweep_trace())
        # busy 18s / (2 workers x 10s makespan) = 90%
        assert (
            "parallel efficiency: busy 18.000s / "
            "(2 worker(s) x 10.000s makespan) = 90.0%"
        ) in text

    def test_serial_trace_defaults_to_one_worker(self):
        doc = trace(
            span("sweep", 4.0, [span("config", 3.0, model="TN", label="TN", source="R")])
        )
        text = format_critical_path(doc)
        assert "(1 worker(s) x 4.000s makespan) = 75.0%" in text

    def test_empty_trace_reports_no_spans(self):
        assert "(no spans recorded)" in format_critical_path(trace())


def profile_doc(stacks, hz=97.0, overhead=0.01):
    return {
        "version": 1, "kind": "repro-profile", "hz": hz,
        "samples": sum(s["count"] for s in stacks),
        "dropped": 0, "truncated": 0,
        "sample_seconds": overhead, "wall_seconds": 1.0,
        "overhead_ratio": overhead,
        "stacks": stacks,
    }


def stack(phase, frames, count):
    return {"phase": list(phase), "frames": [list(f) for f in frames], "count": count}


GIBBS = ("repro/models/topic/gibbs.py", "_sweep")
FIT = ("repro/models/topic/base.py", "fit")
RANK = ("repro/core/pipeline.py", "rank")


def fit_heavy_profile(gibbs=80, fit_only=10, rank=10):
    """fit phase dominated by the Gibbs sweep, plus a small rank phase."""
    return profile_doc([
        stack(("evaluate", "fit"), [FIT + (1,), GIBBS + (2,)], gibbs),
        stack(("evaluate", "fit"), [FIT + (1,)], fit_only),
        stack(("evaluate", "rank"), [RANK + (3,)], rank),
    ])


class TestHotspots:
    def test_phases_order_by_samples_and_rank_by_self_time(self):
        text = format_hotspots(fit_heavy_profile())
        lines = text.splitlines()
        assert lines[0] == "hotspots (stack samples per function)"
        assert "100 samples @ 97 Hz, sampler overhead 1.00%" in lines[1]
        fit_header = next(i for i, l in enumerate(lines) if l.startswith("phase "))
        assert lines[fit_header] == "phase evaluate/fit  (90 samples)"
        # The busier phase renders before the quieter one.
        assert text.index("evaluate/fit") < text.index("evaluate/rank")
        # Within the fit phase, the innermost Gibbs frame ranks first.
        first_row = lines[fit_header + 2]
        assert first_row.startswith("_sweep (repro/models/topic/gibbs.py)")

    def test_self_vs_cumulative_attribution(self):
        text = format_hotspots(fit_heavy_profile())
        gibbs_row = next(
            l for l in text.splitlines() if l.startswith("_sweep")
        )
        # Gibbs is innermost for 80 of 90 fit samples: self == cum == 80.
        assert "80" in gibbs_row and "88.9%" in gibbs_row
        fit_row = next(l for l in text.splitlines() if l.startswith("fit "))
        # fit() is innermost only when Gibbs isn't running (10 samples)
        # but on-stack for all 90.
        columns = fit_row.split()
        assert columns[-4:] == ["10", "11.1%", "90", "100.0%"]

    def test_top_limits_rows_per_phase(self):
        text = format_hotspots(fit_heavy_profile(), top=1)
        fit_section = text.split("phase evaluate/rank")[0]
        assert "_sweep" in fit_section
        assert "\nfit (" not in fit_section

    def test_line_numbers_aggregate_away(self):
        # One hot loop yields many distinct sampled lines; the report
        # keys functions by (file, func) so they fold into one row.
        doc = profile_doc([
            stack(("fit",), [GIBBS + (10,)], 3),
            stack(("fit",), [GIBBS + (11,)], 4),
        ])
        text = format_hotspots(doc)
        rows = [l for l in text.splitlines() if l.startswith("_sweep")]
        assert len(rows) == 1
        assert " 7" in rows[0]

    def test_empty_profile_reports_no_samples(self):
        text = format_hotspots(profile_doc([]))
        assert "(no samples recorded)" in text


class TestProfileDiff:
    def test_records_sorted_by_absolute_movement(self):
        before = fit_heavy_profile(gibbs=80, fit_only=10, rank=10)
        after = fit_heavy_profile(gibbs=30, fit_only=10, rank=60)
        records = diff_profiles(before, after)
        assert [abs(r["delta"]) for r in records] == sorted(
            (abs(r["delta"]) for r in records), reverse=True
        )
        gibbs = next(r for r in records if r["func"] == "_sweep")
        assert gibbs["before_share"] == 0.8
        assert gibbs["after_share"] == 0.3
        assert gibbs["delta"] == -0.5

    def test_functions_absent_on_one_side_default_to_zero(self):
        before = profile_doc([stack(("fit",), [GIBBS + (2,)], 10)])
        after = profile_doc([stack(("fit",), [RANK + (3,)], 10)])
        by_func = {r["func"]: r for r in diff_profiles(before, after)}
        assert by_func["_sweep"]["after_share"] == 0.0
        assert by_func["rank"]["before_share"] == 0.0

    def test_render_shows_movement_in_percentage_points(self):
        before = fit_heavy_profile(gibbs=80, fit_only=10, rank=10)
        after = fit_heavy_profile(gibbs=30, fit_only=10, rank=60)
        text = format_profile_diff(before, after)
        assert "profile diff (self-time share, percentage points)" in text
        assert "before: 100 samples, after: 100 samples" in text
        gibbs = next(l for l in text.splitlines() if l.startswith("_sweep"))
        assert "80.0%" in gibbs and "30.0%" in gibbs and "-50.0pp" in gibbs

    def test_identical_profiles_report_no_movement(self):
        doc = fit_heavy_profile()
        assert "(no hotspot movement)" in format_profile_diff(doc, doc)
