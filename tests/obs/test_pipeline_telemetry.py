"""End-to-end telemetry tests over the evaluation pipeline.

The contract under test: enabling telemetry changes no result (MAP
parity with the legacy Stopwatch path), and the recorded span tree's
per-phase rollups equal the TTime/ETime fields exactly, so Figure 7
numbers can be read off a saved trace.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.experiments.configs import ConfigGrid
from repro.experiments.persistence import load_sweep, save_sweep
from repro.experiments.runner import SweepRunner
from repro.models.bag import TokenNGramModel
from repro.models.topic.lda import LdaModel
from repro.obs import (
    MemorySink,
    RunManifest,
    Telemetry,
    format_timing_breakdown,
    load_trace,
)
from repro.twitter.entities import UserType


@pytest.fixture()
def telemetry() -> Telemetry:
    return Telemetry(manifest=RunManifest.create(seed=11, command="test"))


@pytest.fixture()
def users(small_dataset, small_groups):
    pipeline = ExperimentPipeline(small_dataset, seed=1, max_train_docs_per_user=40)
    return pipeline.eligible_users(small_groups[UserType.ALL])


class TestTimingParity:
    def test_span_rollups_equal_legacy_ttime_etime(
        self, small_dataset, users, telemetry
    ):
        pipeline = ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=telemetry
        )
        result = pipeline.evaluate(
            TokenNGramModel(n=1, weighting="TF"), RepresentationSource.R, users
        )
        tracer = telemetry.tracer
        assert result.training_seconds == tracer.total("fit") + tracer.total("profiles")
        assert result.testing_seconds == tracer.total("rank")
        assert result.phase_seconds["fit"] == tracer.total("fit")
        assert result.phase_seconds["rank"] == tracer.total("rank")

    def test_telemetry_changes_no_map_values(self, small_dataset, users, telemetry):
        def evaluate(tel):
            pipeline = ExperimentPipeline(
                small_dataset, seed=1, max_train_docs_per_user=40, telemetry=tel
            )
            return pipeline.evaluate(
                TokenNGramModel(n=2, weighting="TF-IDF"),
                RepresentationSource.R,
                users,
            )

        plain = evaluate(None)
        traced = evaluate(telemetry)
        assert traced.per_user_ap == plain.per_user_ap
        assert traced.map_score == plain.map_score

    def test_evaluate_span_nests_the_phases(self, small_dataset, users, telemetry):
        pipeline = ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=telemetry
        )
        pipeline.evaluate(
            TokenNGramModel(n=1, weighting="TF"), RepresentationSource.R, users
        )
        (root,) = telemetry.tracer.roots
        assert root.name == "evaluate"
        child_names = {child.name for child in root.children}
        assert {"prepare", "fit", "profiles", "rank"} <= child_names


class TestMetrics:
    def test_doc_cache_hit_and_miss_counters(self, small_dataset, users, telemetry):
        pipeline = ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=telemetry
        )
        model = TokenNGramModel(n=1, weighting="TF")
        pipeline.evaluate(model, RepresentationSource.R, users)
        miss_after_first = telemetry.metrics.counter("doc_cache.miss").value
        assert miss_after_first > 0
        assert telemetry.metrics.counter("docs.tokenized").value == miss_after_first

        # Same source again: every document comes from the cache.
        pipeline.evaluate(model, RepresentationSource.R, users)
        assert telemetry.metrics.counter("doc_cache.miss").value == miss_after_first
        assert telemetry.metrics.counter("doc_cache.hit").value > 0

    def test_gibbs_iteration_stream(self, small_dataset, users, telemetry):
        sink = telemetry.events.add_sink(MemorySink())
        pipeline = ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=telemetry
        )
        model = LdaModel(n_topics=3, iterations=4, infer_iterations=2, seed=0)
        pipeline.evaluate(model, RepresentationSource.R, users)
        assert telemetry.metrics.counter("gibbs.iterations").value == 4
        events = sink.of("gibbs_iteration")
        assert [e["iteration"] for e in events] == [1, 2, 3, 4]
        assert all(e["model"] == "LDA" for e in events)
        assert all(isinstance(e["log_likelihood"], float) for e in events)
        # The hook is uninstalled after fit.
        assert model.iteration_hook is None

    def test_no_log_likelihood_cost_without_hook(self):
        model = LdaModel(n_topics=2, iterations=1, seed=0)
        assert model.iteration_hook is None  # default: nothing to notify


class TestTraceRoundTrip:
    def test_save_load_and_render_breakdown(
        self, small_dataset, users, telemetry, tmp_path
    ):
        pipeline = ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=telemetry
        )
        result = pipeline.evaluate(
            TokenNGramModel(n=1, weighting="TF"), RepresentationSource.R, users
        )
        telemetry.manifest.finish()
        path = telemetry.save_trace(tmp_path / "trace.json")

        trace = load_trace(path)
        assert trace["manifest"]["seed"] == 11
        text = format_timing_breakdown(trace)
        assert "evaluate" in text and "fit" in text and "rank" in text
        assert f"ETime (rank)           = {result.testing_seconds:.3f}s" in text

    def test_cli_report_renders_a_saved_trace(
        self, small_dataset, users, telemetry, tmp_path, capsys
    ):
        pipeline = ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=telemetry
        )
        pipeline.evaluate(
            TokenNGramModel(n=1, weighting="TF"), RepresentationSource.R, users
        )
        path = telemetry.save_trace(tmp_path / "trace.json")
        assert main(["report", "--artifact", "timing-breakdown", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "timing breakdown" in out
        assert "TTime (fit + profiles)" in out

    def test_breakdown_requires_trace(self):
        with pytest.raises(SystemExit):
            main(["report", "--artifact", "timing-breakdown"])

    def test_sweep_artifacts_still_require_sweep(self):
        with pytest.raises(SystemExit):
            main(["report", "--artifact", "figure"])


class TestSweepTelemetry:
    def test_rows_carry_phase_rollups_and_manifest_persists(
        self, small_dataset, small_groups, telemetry, tmp_path
    ):
        pipeline = ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=telemetry
        )
        runner = SweepRunner(pipeline, small_groups)
        configs = ConfigGrid().all_configurations()["TN"][:2]
        result = runner.run(
            configs, [RepresentationSource.R], groups=[UserType.ALL]
        )
        assert result.manifest is not None
        for row in result.rows:
            assert row.phase_seconds["fit"] + row.phase_seconds["profiles"] == (
                pytest.approx(row.training_seconds)
            )
            assert row.phase_seconds["rank"] == pytest.approx(row.testing_seconds)

        path = save_sweep(result, tmp_path / "sweep.json")
        restored = load_sweep(path)
        assert restored.manifest["seed"] == 11
        assert restored.rows[0].phase_seconds == result.rows[0].phase_seconds

    def test_progress_event_stream(self, small_dataset, small_groups, telemetry):
        sink = telemetry.events.add_sink(MemorySink())
        pipeline = ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=telemetry
        )
        runner = SweepRunner(pipeline, small_groups)
        configs = ConfigGrid().all_configurations()["TN"][:2]
        runner.run(configs, [RepresentationSource.R], groups=[UserType.ALL])
        assert len(sink.of("sweep_start")) == 1
        results = sink.of("config_result")
        assert len(results) == 2
        assert all(0.0 <= r["map"] <= 1.0 for r in results)
        assert sink.of("sweep_done")[0]["rows"] == 2

    def test_rocchio_skips_are_counted_and_reported(
        self, small_dataset, small_groups, telemetry
    ):
        sink = telemetry.events.add_sink(MemorySink())
        pipeline = ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=telemetry
        )
        runner = SweepRunner(pipeline, small_groups)
        rocchio = [c for c in ConfigGrid().tn_configurations() if c.uses_rocchio][:1]
        runner.run(rocchio, [RepresentationSource.R], groups=[UserType.ALL])
        assert telemetry.metrics.counter("sweep.configs.skipped_rocchio").value == 1
        assert len(sink.of("config_skipped")) == 1
