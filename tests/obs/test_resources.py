"""Tests for the resource sampler and its tracer integration.

The contract under test: every span recorded under a sampler carries a
``resources`` mapping with CPU seconds and a peak-RSS reading; the
mapping round-trips through trace serialisation (so worker snapshots
survive ``Telemetry.absorb``); and the sampler's lifecycle is strictly
context-managed.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.resources import ResourceSampler, read_rss_bytes
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import Span, Tracer


class TestReadRss:
    def test_returns_a_plausible_resident_size(self):
        rss = read_rss_bytes()
        assert rss is not None
        # A running CPython interpreter occupies at least a few MiB.
        assert rss > 1024 * 1024


class TestLifecycle:
    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ResourceSampler(interval=0.0)  # repro: allow[RPR007] -- asserts the constructor rejects it

    def test_double_enter_rejected(self):
        with ResourceSampler() as sampler:
            with pytest.raises(ConfigurationError):
                sampler.__enter__()

    def test_thread_runs_only_inside_the_with_block(self):
        with ResourceSampler() as sampler:
            assert sampler.sampling
        assert not sampler.sampling

    def test_reentry_after_exit_is_allowed(self):
        with ResourceSampler() as sampler:
            pass
        with sampler:
            assert sampler.sampling


class TestWatches:
    def test_watch_records_cpu_and_rss(self):
        with ResourceSampler() as sampler:
            watch = sampler.watch()
            sum(i * i for i in range(20_000))
            resources = watch.stop()
        assert resources["cpu_seconds"] >= 0.0
        assert resources["peak_rss_bytes"] > 1024 * 1024

    def test_short_watch_still_gets_boundary_samples(self):
        # Far shorter than the sampling interval: only the boundary
        # samples taken at watch start/stop can supply the value.
        with ResourceSampler(interval=60.0) as sampler:
            resources = sampler.watch().stop()
        assert "peak_rss_bytes" in resources

    def test_concurrent_watches_each_get_peaks(self):
        with ResourceSampler() as sampler:
            outer = sampler.watch()
            inner = sampler.watch()
            inner_resources = inner.stop()
            outer_resources = outer.stop()
        assert inner_resources["peak_rss_bytes"] > 0
        assert outer_resources["peak_rss_bytes"] >= inner_resources["peak_rss_bytes"] * 0.5

    def test_alloc_peaks_are_opt_in(self):
        with ResourceSampler() as sampler:
            plain = sampler.watch().stop()
        assert "alloc_peak_bytes" not in plain

        with ResourceSampler(trace_allocations=True) as sampler:
            watch = sampler.watch()
            ballast = [bytes(1024) for _ in range(2_000)]  # ~2 MiB of allocations
            resources = watch.stop()
        assert len(ballast) == 2_000
        assert resources["alloc_peak_bytes"] > 1024 * 1024


class TestTracerIntegration:
    def test_spans_carry_resources_under_a_sampler(self):
        with ResourceSampler() as sampler:
            tracer = Tracer(resources=sampler)
            with tracer.span("fit"):
                pass
        (span,) = tracer.roots
        assert span.resources["peak_rss_bytes"] > 0
        assert "cpu_seconds" in span.resources

    def test_spans_stay_bare_without_a_sampler(self):
        tracer = Tracer()
        with tracer.span("fit"):
            pass
        (span,) = tracer.roots
        assert span.resources == {}
        assert "resources" not in span.to_dict()

    def test_resources_round_trip_serialisation(self):
        span = Span(name="fit", duration=0.5, resources={"peak_rss_bytes": 123.0})
        restored = Span.from_dict(span.to_dict())
        assert restored.resources == {"peak_rss_bytes": 123.0}

    def test_worker_resources_survive_absorb(self):
        # A worker records spans under its own sampler; the parent
        # absorbs the serialised telemetry. The resource snapshots must
        # ride along unchanged.
        with ResourceSampler() as sampler:
            worker = Telemetry(resources=sampler)
            with worker.span("evaluate", model="TN", source="R"):
                pass
        parent = Telemetry()
        parent.absorb({"spans": worker.tracer.to_payload()})
        (span,) = parent.tracer.roots
        assert span.resources["peak_rss_bytes"] > 0

    def test_telemetry_exposes_its_sampler(self):
        with ResourceSampler() as sampler:
            telemetry = Telemetry(resources=sampler)
            assert telemetry.resources is sampler
        assert Telemetry().resources is None
