"""Tests for the statistical stack-sampling profiler.

Two properties carry the subsystem: merged parallel profiles equal the
union of the per-worker ones (prefixed under the parent's open span, so
a ``--jobs N`` profile reads like a serial one), and span attribution
puts samples under the phase that was open when they were taken.  The
acceptance tests at the bottom pin both against the real sweep and the
real Gibbs sampler.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.sources import RepresentationSource
from repro.errors import ConfigurationError, PersistenceError
from repro.experiments.executors import ProcessCellExecutor
from repro.models.topic.lda import LdaModel
from repro.obs.profiler import (
    DEFAULT_HZ,
    MAX_STACK_DEPTH,
    Profile,
    StackSampler,
    _normalize_filename,
    active_sampler,
    load_profile,
)
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import Tracer
from repro.twitter.entities import UserType

from tests.experiments.test_executors import SPEC, _configs, _runner

FIT_FRAMES = (("repro/models/topic/gibbs.py", "_sweep", 42),)
RANK_FRAMES = (("repro/core/pipeline.py", "rank", 7),)


def _worker_profile(counts):
    """A worker-shaped profile: ``{phase_path: n}`` -> Profile."""
    profile = Profile(hz=DEFAULT_HZ)
    for phase, n in counts.items():
        for _ in range(n):
            profile.record(tuple(phase.split("/")), FIT_FRAMES)
    return profile


class TestProfileTable:
    def test_record_accumulates_counts_and_totals(self):
        profile = Profile()
        profile.record(("sweep", "fit"), FIT_FRAMES)
        profile.record(("sweep", "fit"), FIT_FRAMES)
        profile.record(("sweep", "rank"), RANK_FRAMES, truncated=True)
        assert profile.samples == 3
        assert profile.truncated == 1
        assert profile.counts[(("sweep", "fit"), FIT_FRAMES)] == 2
        assert profile.phase_totals() == {"sweep/fit": 2, "sweep/rank": 1}

    def test_merge_is_the_union_of_both_tables(self):
        left = _worker_profile({"fit": 3})
        right = _worker_profile({"fit": 2, "rank": 1})
        right.sample_seconds, right.wall_seconds = 0.01, 1.0
        left.merge(right)
        assert left.phase_totals() == {"fit": 5, "rank": 1}
        assert left.samples == 6
        assert left.sample_seconds == pytest.approx(0.01)
        assert left.wall_seconds == pytest.approx(1.0)

    def test_merge_prefix_reparents_phase_paths(self):
        # Absorb passes the joining thread's open spans so worker
        # stacks nest exactly where Tracer.attach grafts worker spans.
        parent = Profile()
        parent.merge(_worker_profile({"config/evaluate/fit": 4}),
                     prefix=("sweep",))
        assert parent.phase_totals() == {"sweep/config/evaluate/fit": 4}

    def test_merge_accepts_a_document(self):
        parent = Profile()
        parent.merge(_worker_profile({"fit": 2}).to_dict())
        assert parent.phase_totals() == {"fit": 2}

    def test_round_trips_through_dict(self):
        profile = _worker_profile({"sweep/fit": 3, "sweep/rank": 1})
        profile.sample_seconds, profile.wall_seconds = 0.02, 2.0
        restored = Profile.from_dict(profile.to_dict())
        assert restored.counts == profile.counts
        assert restored.samples == profile.samples
        assert restored.overhead_ratio == pytest.approx(0.01)

    def test_document_stacks_are_sorted(self):
        profile = Profile()
        profile.record(("b",), RANK_FRAMES)
        profile.record(("a",), FIT_FRAMES)
        stacks = profile.to_dict()["stacks"]
        assert [s["phase"] for s in stacks] == [["a"], ["b"]]

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ConfigurationError):
            Profile(hz=0.0)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        profile = _worker_profile({"sweep/fit": 2})
        path = profile.save(tmp_path / "profile.json")
        doc = load_profile(path)
        assert doc["kind"] == "repro-profile"
        assert Profile.from_dict(doc).phase_totals() == {"sweep/fit": 2}

    def test_accepts_a_trace_with_an_embedded_profile(self, tmp_path):
        trace = {"version": 1, "spans": [],
                 "profile": _worker_profile({"fit": 1}).to_dict()}
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        assert load_profile(path)["samples"] == 1

    def test_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"version": 1, "spans": []}))
        with pytest.raises(PersistenceError, match="not a repro profile"):
            load_profile(path)

    def test_rejects_unknown_versions(self, tmp_path):
        doc = _worker_profile({"fit": 1}).to_dict()
        doc["version"] = 99
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError, match="version"):
            load_profile(path)


class TestFilenameNormalization:
    def test_strips_checkout_prefixes(self):
        assert _normalize_filename(
            "/root/repo/src/repro/models/topic/gibbs.py"
        ) == "repro/models/topic/gibbs.py"
        assert _normalize_filename(
            "/usr/lib/python3.11/json/decoder.py"
        ) == "3.11/json/decoder.py"
        assert _normalize_filename(
            "/venv/lib/python3.11/site-packages/numpy/core/x.py"
        ) == "numpy/core/x.py"

    def test_synthetic_filenames_pass_through(self):
        assert _normalize_filename("<string>") == "<string>"


class TestSamplerLifecycle:
    def test_context_manager_starts_and_joins_the_thread(self):
        sampler = StackSampler(hz=200.0)  # repro: allow[RPR014] -- entered via `with` below; the test inspects pre-enter state
        assert not sampler.sampling and active_sampler() is None
        with sampler as entered:
            assert entered is sampler
            assert sampler.sampling
            assert active_sampler() is sampler
            assert any(
                t.name == "repro-stack-sampler" for t in threading.enumerate()
            )
        assert not sampler.sampling
        assert active_sampler() is None
        assert all(
            t.name != "repro-stack-sampler" for t in threading.enumerate()
        )

    def test_one_sampler_per_process(self):
        with StackSampler(hz=0.001):
            with pytest.raises(ConfigurationError, match="already active"):
                StackSampler(hz=0.001).__enter__()  # repro: allow[RPR014] -- raises before sampling starts; nothing to join
        # The slot frees on exit; the next sampler can enter.
        with StackSampler(hz=0.001):
            pass

    def test_reentering_a_running_sampler_raises(self):
        with StackSampler(hz=0.001) as sampler:
            with pytest.raises(ConfigurationError, match="already sampling"):
                sampler.__enter__()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            StackSampler(hz=-1.0)  # repro: allow[RPR014] -- constructor rejects it; never entered
        with pytest.raises(ConfigurationError):
            StackSampler(max_depth=0)  # repro: allow[RPR014] -- constructor rejects it; never entered

    def test_exit_banks_wall_time_and_overhead(self):
        with StackSampler(hz=500.0) as sampler:
            deadline = time.perf_counter() + 0.05
            while time.perf_counter() < deadline:
                sum(i * i for i in range(100))
            live = sampler.overhead_ratio()
            snap = sampler.snapshot()
        doc = sampler.profile.to_dict()
        assert doc["samples"] > 0
        assert doc["wall_seconds"] >= snap["wall_seconds"] > 0.0
        assert live >= 0.0
        # Sampling must stay cheap relative to the window it measures.
        assert doc["overhead_ratio"] < 0.5


class TestAttribution:
    # hz=0.001 keeps the background thread asleep; sample_once() taken
    # from the target thread itself makes the captured stack and span
    # path deterministic.

    def test_samples_carry_the_open_span_path(self):
        tracer = Tracer()
        with StackSampler(hz=0.001) as sampler:
            with tracer.span("evaluate"):
                with tracer.span("fit"):
                    sampler.sample_once()
        ((phase, frames),) = list(sampler.profile.counts)
        assert phase == ("evaluate", "fit")
        # Innermost frame is the sampling call itself, taken on the
        # target thread; outermost frames are the test runner's.
        assert frames[-1][0] == "repro/obs/profiler.py"
        assert frames[-1][1] == "sample_once"

    def test_samples_outside_spans_have_an_empty_phase(self):
        with StackSampler(hz=0.001) as sampler:
            sampler.sample_once()
        ((phase, _frames),) = list(sampler.profile.counts)
        assert phase == ()

    def test_deep_stacks_truncate_the_outermost_frames(self):
        def recurse(depth):
            if depth == 0:
                sampler.sample_once()
            else:
                recurse(depth - 1)

        with StackSampler(hz=0.001, max_depth=4) as sampler:
            recurse(MAX_STACK_DEPTH)
        assert sampler.profile.truncated == 1
        ((_phase, frames),) = list(sampler.profile.counts)
        assert len(frames) == 4
        # The innermost (hot) frames survive truncation.
        assert frames[-1][1] == "sample_once"
        assert frames[-2][1] == "recurse"


class TestAbsorb:
    def test_worker_profile_merges_into_the_active_sampler(self):
        telemetry = Telemetry()
        worker = _worker_profile({"config/evaluate/fit": 5})
        with StackSampler(hz=0.001) as sampler:
            with telemetry.span("sweep"):
                telemetry.absorb({"profile": worker.to_dict()})
        assert sampler.profile.phase_totals() == {
            "sweep/config/evaluate/fit": 5
        }

    def test_without_a_sampler_the_profile_rides_the_trace(self):
        telemetry = Telemetry()
        with telemetry.span("sweep"):
            telemetry.absorb(
                {"profile": _worker_profile({"config/fit": 2}).to_dict()}
            )
        payload = telemetry.trace_payload()
        embedded = Profile.from_dict(payload["profile"])
        assert embedded.phase_totals() == {"sweep/config/fit": 2}

    def test_merged_profile_is_the_union_of_the_workers(self):
        # The acceptance property behind `--jobs N`: one merged profile
        # whose per-phase totals equal the union of the per-worker
        # profiles, all reparented under the parent's open sweep span.
        workers = [
            _worker_profile({"config/evaluate/fit": 7, "config/evaluate/rank": 2}),
            _worker_profile({"config/evaluate/fit": 3}),
        ]
        telemetry = Telemetry()
        with StackSampler(hz=0.001) as sampler:
            with telemetry.span("sweep"):
                for worker in workers:
                    telemetry.absorb({"profile": worker.to_dict()})
        union: dict[str, int] = {}
        for worker in workers:
            for phase, count in worker.phase_totals().items():
                key = "sweep/" + phase
                union[key] = union.get(key, 0) + count
        assert sampler.profile.phase_totals() == union
        assert sampler.profile.samples == sum(w.samples for w in workers)


class TestSweepAcceptance:
    """End-to-end: real sweeps, serial and ``--jobs 2``, under a sampler."""

    @pytest.fixture(scope="class")
    def profiles(self):
        # Telemetry is what opens the evaluate/fit spans the samples
        # attribute to -- exactly what `repro profile` forces on.
        configs = _configs()[:2]
        with StackSampler(hz=200.0) as serial_sampler:
            _runner(telemetry=Telemetry()).run(
                configs, [RepresentationSource.R], groups=[UserType.ALL]
            )
        with StackSampler(hz=200.0) as parallel_sampler:
            _runner(telemetry=Telemetry()).run(
                configs, [RepresentationSource.R], groups=[UserType.ALL],
                executor=ProcessCellExecutor(SPEC, jobs=2),
            )
        return serial_sampler.profile.to_dict(), parallel_sampler.profile.to_dict()

    def test_parallel_document_schema_matches_serial(self, profiles):
        serial, parallel = profiles
        assert set(serial) == set(parallel)
        assert serial["kind"] == parallel["kind"] == "repro-profile"
        assert {"phase", "frames", "count"} == set(serial["stacks"][0])
        assert {"phase", "frames", "count"} == set(parallel["stacks"][0])

    def test_worker_samples_reparent_under_the_sweep_span(self, profiles):
        _serial, parallel = profiles
        totals = Profile.from_dict(parallel).phase_totals()
        # Workers sample themselves inside config/evaluate; absorb
        # prefixes the parent's open sweep span, so the merged phase
        # paths read exactly like a serial run's.
        assert any(key.startswith("sweep/config/evaluate") for key in totals)
        # Nothing is left under a bare worker-local path.
        assert not any(key.startswith("config/") for key in totals)

    def test_serial_and_parallel_agree_on_the_phase_tree(self, profiles):
        # Individual leaf phases are stochastic (a TN fit can finish
        # between two samples), but every deep path in either profile
        # must descend through the same sweep/config/evaluate spine.
        serial, parallel = profiles

        def deep_prefixes(doc):
            totals = Profile.from_dict(doc).phase_totals()
            return {
                "/".join(key.split("/")[:3])
                for key in totals
                if key.count("/") >= 2
            }

        assert deep_prefixes(serial) == deep_prefixes(parallel) != set()


class TestGibbsHotspot:
    def test_most_fit_samples_land_in_gibbs(self, tiny_corpus):
        # The profiler's reason to exist: ROADMAP's vectorization work
        # needs stack evidence that LDA fit time is the Gibbs sweep.
        corpus = list(tiny_corpus) * 40
        user_ids = [f"u{i % 6}" for i in range(len(corpus))]
        tracer = Tracer()
        with StackSampler(hz=400.0) as sampler:
            with tracer.span("fit"):
                deadline = time.perf_counter() + 8.0
                while time.perf_counter() < deadline:
                    LdaModel(n_topics=4, iterations=40, seed=0).fit(
                        corpus, user_ids=user_ids
                    )
                    fit_samples = sum(
                        count
                        for (phase, _f), count in sampler.profile.counts.items()
                        if phase == ("fit",)
                    )
                    if fit_samples >= 40:
                        break
        in_gibbs = total = 0
        for (phase, frames), count in sampler.profile.counts.items():
            if phase != ("fit",):
                continue
            total += count
            if any(frame[0].endswith("models/topic/gibbs.py") for frame in frames):
                in_gibbs += count
        assert total >= 40
        assert in_gibbs / total >= 0.5
